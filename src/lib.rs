//! # wedge — a Rust reproduction of *Wedge: Splitting Applications into
//! Reduced-Privilege Compartments* (Bittau, Marchenko, Handley, Karp; NSDI
//! 2008)
//!
//! This facade crate re-exports the workspace's pieces so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`core`] — sthreads, tagged memory, callgates, default-deny policies
//!   and the simulated kernel (the paper's contribution).
//! * [`sched`] — the concurrent compartment scheduler: recycled-sthread
//!   pools with zeroize-on-checkin, bounded work-stealing run queues and
//!   admission control (the production-scale extension).
//! * [`crowbar`] — the cb-log/cb-analyze partitioning-assistance tools.
//! * [`alloc`] — the tag-segment allocator substrate.
//! * [`crypto`] / [`tls`] / [`net`] — the substrates behind the case
//!   studies (toy crypto, the SSL-like protocol, the simulated network with
//!   its man-in-the-middle attacker).
//! * [`cachenet`] — the distributed session-cache protocol: cache nodes
//!   behind listeners and the consistent-hash client ring that lets a TLS
//!   session resume on a different *machine*.
//! * [`apache`] / [`ssh`] / [`pop3`] — the partitioned applications of §2,
//!   §5.1 and §5.2, each with its monolithic baseline.
//! * [`telemetry`] — the unified observability plane: the metrics
//!   registry (counters, gauges, log-bucketed latency histograms), the
//!   lifecycle/audit event sinks, and the exportable snapshot every layer
//!   above reports into.
//! * [`chaos`] — seeded, replayable fault schedules (shard kills,
//!   cache-node epoch restarts, restart storms, rate-limit floods,
//!   cachenet brownouts) injected against the serving stack while the
//!   wedge-bench open-loop load harness keeps traffic arriving, every
//!   fault audited through [`telemetry`].
//!
//! See `README.md` for a walkthrough, `DESIGN.md` for the system inventory
//! and substitutions, and `EXPERIMENTS.md` for the paper-vs-measured record
//! of every figure and table.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use crowbar;
pub use wedge_alloc as alloc;
pub use wedge_apache as apache;
pub use wedge_cachenet as cachenet;
pub use wedge_chaos as chaos;
pub use wedge_core as core;
pub use wedge_crypto as crypto;
pub use wedge_net as net;
pub use wedge_pop3 as pop3;
pub use wedge_sched as sched;
pub use wedge_ssh as ssh;
pub use wedge_telemetry as telemetry;
pub use wedge_tls as tls;

/// The version of the reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_usable() {
        let wedge = crate::core::Wedge::init();
        let root = wedge.root();
        let tag = root.tag_new().unwrap();
        let buf = root.smalloc_init(tag, b"facade").unwrap();
        assert_eq!(root.read_all(&buf).unwrap(), b"facade");
        assert!(!crate::VERSION.is_empty());
    }
}
