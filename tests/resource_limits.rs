//! Integration tests for the resource-quota extension (`wedge_core::resource`).
//!
//! §7 of the paper concedes that "an exploited sthread may maliciously
//! consume CPU and memory"; these tests exercise the reproduction's
//! quota-based mitigation across compartments: a compromised, quota-bounded
//! worker cannot starve the rest of the application, and the quotas do not
//! interfere with the isolation semantics the rest of the suite checks.

use wedge::core::{
    Exploit, LimitedCtx, MemProt, ResourceKind, ResourceLimits, SecurityPolicy, Wedge, WedgeError,
};

fn is_exhausted(err: &WedgeError) -> bool {
    matches!(err, WedgeError::ResourceExhausted { .. })
}

#[test]
fn exploited_worker_memory_hog_is_bounded_and_siblings_keep_working() {
    let wedge = Wedge::init();
    let root = wedge.root();

    // Shared application state the legitimate sibling needs.
    let state_tag = root.tag_new().unwrap();
    let state = root.smalloc_init(state_tag, b"application state").unwrap();

    // The network-facing worker gets a 64 KiB memory budget.
    let worker_limits = ResourceLimits::unlimited()
        .with_tagged_bytes(64 * 1024)
        .with_tags(8);
    let worker = root
        .sthread_create(
            "exploited-worker",
            &SecurityPolicy::deny_all(),
            move |ctx| {
                let limited = LimitedCtx::new(ctx.clone(), worker_limits);
                // The exploit tries to allocate without bound.
                let mut allocated = 0u64;
                let mut refused = false;
                for _ in 0..1_000 {
                    let tag = match limited.tag_new() {
                        Ok(tag) => tag,
                        Err(e) => {
                            refused = is_exhausted(&e);
                            break;
                        }
                    };
                    match limited.smalloc(16 * 1024, tag) {
                        Ok(_) => allocated += 16 * 1024,
                        Err(e) => {
                            refused = is_exhausted(&e);
                            break;
                        }
                    }
                }
                (allocated, refused, limited.usage())
            },
        )
        .unwrap();
    let (allocated, refused, usage) = worker.join().unwrap();

    assert!(refused, "the hog must eventually hit the quota");
    assert!(
        allocated <= 64 * 1024,
        "live allocations stayed within the budget (got {allocated})"
    );
    assert!(usage.tagged_bytes <= 64 * 1024);

    // The rest of the application is unaffected: the root still reads its
    // state and can spawn further compartments.
    assert_eq!(root.read_all(&state).unwrap(), b"application state");
    let sibling = root
        .sthread_create("sibling", &SecurityPolicy::deny_all(), |ctx| {
            let tag = ctx.tag_new()?;
            let buf = ctx.smalloc_init(tag, b"sibling works")?;
            ctx.read_all(&buf)
        })
        .unwrap();
    assert_eq!(sibling.join().unwrap().unwrap(), b"sibling works");
}

#[test]
fn spawn_storm_is_bounded_across_the_subtree() {
    let wedge = Wedge::init();
    let root = wedge.root();
    let limits = ResourceLimits::unlimited().with_sthreads(8);
    let limited = LimitedCtx::new(root.clone(), limits);

    // Each spawned child immediately tries to spawn two more.
    fn storm(ctx: &LimitedCtx, depth: u32) -> u64 {
        if depth == 0 {
            return 0;
        }
        let mut descendants = 0;
        for i in 0..2 {
            match ctx.sthread_create(
                &format!("storm-{depth}-{i}"),
                &SecurityPolicy::deny_all(),
                move |child| storm(child, depth - 1),
            ) {
                Ok(handle) => descendants += 1 + handle.join().unwrap_or(0),
                Err(err) => {
                    assert!(
                        matches!(err, WedgeError::ResourceExhausted { .. }),
                        "unexpected error: {err}"
                    );
                    break;
                }
            }
        }
        descendants
    }

    let spawned = storm(&limited, 6);
    assert!(
        spawned <= 8,
        "subtree spawn count bounded by quota, got {spawned}"
    );
    assert_eq!(limited.usage().sthreads, spawned);
    assert_eq!(limited.remaining(ResourceKind::Sthreads), 8 - spawned);
}

#[test]
fn quotas_do_not_weaken_default_deny() {
    // A quota-wrapped compartment still cannot touch memory outside its
    // policy: the wrapper is accounting, not a bypass.
    let wedge = Wedge::init();
    let root = wedge.root();
    let secret_tag = root.tag_new().unwrap();
    let secret = root.smalloc_init(secret_tag, b"host private key").unwrap();

    let worker = root
        .sthread_create("metered-worker", &SecurityPolicy::deny_all(), move |ctx| {
            let limited = LimitedCtx::new(ctx.clone(), ResourceLimits::unlimited());
            let direct = limited.read(&secret, 0, 5);
            let mut exploit = Exploit::seize(limited.ctx());
            let via_exploit = exploit.try_read(&secret);
            (direct, via_exploit)
        })
        .unwrap();
    let (direct, via_exploit) = worker.join().unwrap();
    assert!(direct.unwrap_err().is_access_denial());
    assert!(via_exploit.unwrap_err().is_access_denial());
}

#[test]
fn granted_memory_remains_usable_under_a_quota() {
    // The quota meters volume, not privilege: a worker that *is* granted a
    // tag can keep using it until the budget runs out, and freeing returns
    // headroom.
    let wedge = Wedge::init();
    let root = wedge.root();
    let shared_tag = root.tag_new().unwrap();

    let mut policy = SecurityPolicy::deny_all();
    policy.sc_mem_add(shared_tag, MemProt::ReadWrite);
    let worker = root
        .sthread_create("bounded-writer", &policy, move |ctx| {
            let limited = LimitedCtx::new(
                ctx.clone(),
                ResourceLimits::unlimited().with_tagged_bytes(4096),
            );
            let a = limited.smalloc(3000, shared_tag)?;
            limited.write(&a, 0, b"hello")?;
            // A second large allocation exceeds the budget...
            let refused = limited.smalloc(3000, shared_tag).unwrap_err();
            assert!(matches!(refused, WedgeError::ResourceExhausted { .. }));
            // ...but freeing the first makes room again.
            limited.sfree(&a)?;
            let b = limited.smalloc(3000, shared_tag)?;
            limited.write(&b, 0, b"again")?;
            limited.read(&b, 0, 5)
        })
        .unwrap();
    assert_eq!(worker.join().unwrap().unwrap(), b"again");
}

#[test]
fn cpu_budget_stops_a_runaway_loop() {
    let wedge = Wedge::init();
    let root = wedge.root();
    let worker = root
        .sthread_create("spinner", &SecurityPolicy::deny_all(), |ctx| {
            let limited = LimitedCtx::new(
                ctx.clone(),
                ResourceLimits::unlimited().with_cpu_ticks(10_000),
            );
            // A cooperative compute loop that accounts its work; the budget
            // cuts it off long before the nominal 1M iterations.
            let mut iterations = 0u64;
            loop {
                if limited.charge_ticks(100).is_err() {
                    break;
                }
                iterations += 1;
                if iterations >= 1_000_000 {
                    break;
                }
            }
            iterations
        })
        .unwrap();
    let iterations = worker.join().unwrap();
    assert_eq!(
        iterations, 100,
        "10_000 tick budget / 100 ticks per iteration"
    );
}
