//! The recycled-callgate trade-off of §3.3, end to end.
//!
//! The paper: *"Because they are reused, recycled callgates do trade some
//! isolation for performance, and must be used carefully; should a recycled
//! callgate be exploited, and called by sthreads acting on behalf of
//! different principals, sensitive arguments from one caller may become
//! visible to another."*
//!
//! These tests drive the same (deliberately exploitable) callgate entry in
//! both modes and check that the residue of one principal's call is visible
//! to the next principal **only** in the recycled mode: a standard callgate
//! activation is a fresh compartment, so the previous activation's private
//! scratch memory is gone by the time the second caller arrives.

use std::sync::{Arc, Mutex};

use wedge::core::callgate::typed_entry;
use wedge::core::{SBuf, SecurityPolicy, Wedge, WedgeError};

/// Register a callgate that stashes each caller's argument in its own
/// *private* (untagged) memory and — modelling an exploited callgate — dumps
/// the previous caller's stash when asked to.
///
/// The `stash` holds only the `SBuf` *handle*; whether the bytes behind it
/// are still reachable is decided entirely by the kernel (the compartment
/// that allocated them must still exist and must be the one reading).
fn register_leaky_gate(wedge: &Wedge) -> (wedge::core::CgEntryId, Arc<Mutex<Option<SBuf>>>) {
    let stash: Arc<Mutex<Option<SBuf>>> = Arc::new(Mutex::new(None));
    let stash_for_gate = stash.clone();
    let entry = wedge.kernel().cgate_register(
        "leaky_processor",
        typed_entry(move |ctx, _trusted, input: Vec<u8>| {
            let mut stash = stash_for_gate.lock().expect("stash lock");
            if input == b"__exploit_dump__" {
                // The "exploited" path: try to disclose whatever the previous
                // invocation left behind.
                let leaked = match stash.as_ref() {
                    Some(previous) => ctx.read_all(previous).unwrap_or_default(),
                    None => Vec::new(),
                };
                return Ok(leaked);
            }
            // The benign path: process the argument, leaving a copy in the
            // activation's private scratch memory (the PAM-style sloppiness
            // the paper warns about).
            let scratch = ctx.malloc(input.len().max(1))?;
            ctx.write(&scratch, 0, &input)?;
            *stash = Some(scratch);
            Ok(Vec::<u8>::new())
        }),
    );
    (entry, stash)
}

fn caller_policy(entry: wedge::core::CgEntryId) -> SecurityPolicy {
    let mut policy = SecurityPolicy::deny_all();
    policy.sc_cgate_add(entry, SecurityPolicy::deny_all(), None);
    policy
}

/// Run principal A (submits a secret) then principal B (runs the exploit
/// dump) against the gate, in either standard or recycled mode, and return
/// what principal B managed to read.
fn run_two_principals(recycled: bool) -> Vec<u8> {
    let wedge = Wedge::init();
    let root = wedge.root();
    let (entry, _stash) = register_leaky_gate(&wedge);
    let policy = caller_policy(entry);

    let secret = b"principal-A credit card 4111-1111".to_vec();
    let submit = {
        let secret = secret.clone();
        root.sthread_create("principal-a", &policy, move |ctx| {
            if recycled {
                ctx.cgate_recycled_expect::<Vec<u8>>(
                    entry,
                    &SecurityPolicy::deny_all(),
                    Box::new(secret),
                )
            } else {
                ctx.cgate_expect::<Vec<u8>>(entry, &SecurityPolicy::deny_all(), Box::new(secret))
            }
        })
        .expect("principal A sthread")
    };
    submit.join().expect("join A").expect("gate call A");

    let probe = root
        .sthread_create("principal-b", &policy, move |ctx| {
            let payload = b"__exploit_dump__".to_vec();
            if recycled {
                ctx.cgate_recycled_expect::<Vec<u8>>(
                    entry,
                    &SecurityPolicy::deny_all(),
                    Box::new(payload),
                )
            } else {
                ctx.cgate_expect::<Vec<u8>>(entry, &SecurityPolicy::deny_all(), Box::new(payload))
            }
        })
        .expect("principal B sthread");
    probe.join().expect("join B").expect("gate call B")
}

#[test]
fn recycled_callgate_exposes_previous_callers_arguments_when_exploited() {
    let leaked = run_two_principals(true);
    assert_eq!(
        leaked, b"principal-A credit card 4111-1111",
        "a recycled callgate reuses one activation, so an exploit in it can see residue"
    );
}

#[test]
fn standard_callgate_leaves_no_residue_between_principals() {
    let leaked = run_two_principals(false);
    assert!(
        leaked.is_empty(),
        "each standard callgate activation is a fresh compartment; the previous \
         activation's private scratch is unreachable, got {leaked:?}"
    );
}

#[test]
fn recycled_and_standard_callgates_compute_the_same_results() {
    // The trade-off is isolation vs. cost, not functionality: both modes give
    // callers the same answers for benign workloads.
    let wedge = Wedge::init();
    let root = wedge.root();
    let entry = wedge.kernel().cgate_register(
        "sum",
        typed_entry(|_ctx, _trusted, input: Vec<u8>| {
            Ok(input.iter().map(|b| *b as u64).sum::<u64>())
        }),
    );
    let policy = caller_policy(entry);

    let handle = root
        .sthread_create("caller", &policy, move |ctx| {
            let data = vec![1u8, 2, 3, 4, 5];
            let fresh = ctx.cgate_expect::<u64>(
                entry,
                &SecurityPolicy::deny_all(),
                Box::new(data.clone()),
            )?;
            let recycled = ctx.cgate_recycled_expect::<u64>(
                entry,
                &SecurityPolicy::deny_all(),
                Box::new(data),
            )?;
            Ok::<_, WedgeError>((fresh, recycled))
        })
        .expect("caller");
    let (fresh, recycled) = handle.join().expect("join").expect("calls");
    assert_eq!(fresh, 15);
    assert_eq!(recycled, 15);
}

/// Concurrent pool safety: many OS threads hammer a small pool of
/// zeroize-on-checkin workers with per-principal secrets and exploit dumps.
/// Because every checkin scrubs the worker's private scratch, no thread may
/// ever observe another principal's bytes — or even its own from a previous
/// checkout.
#[test]
fn pooled_workers_leak_nothing_across_principals_under_concurrency() {
    use wedge::sched::{PoolConfig, WorkerPool};

    let wedge = Wedge::init();
    let root = wedge.root();
    let (entry, _stash) = register_leaky_gate(&wedge);

    let pool = Arc::new(
        WorkerPool::prewarm(
            &root,
            entry,
            &SecurityPolicy::deny_all(),
            None,
            PoolConfig {
                size: 4,
                max_waiters: 64,
                scrub_on_checkin: true,
            },
        )
        .expect("prewarm pool"),
    );

    const THREADS: usize = 8;
    const ROUNDS: usize = 12;
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let pool = pool.clone();
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let secret = format!("principal-{t} round-{round} card 4111-{t:04}");
                    {
                        let worker = pool.checkout().expect("checkout for submit");
                        worker
                            .invoke_expect::<Vec<u8>>(Box::new(secret.into_bytes()))
                            .expect("benign call");
                        // Checkin (drop) zeroizes the worker's scratch.
                    }
                    let worker = pool.checkout().expect("checkout for probe");
                    let leaked = worker
                        .invoke_expect::<Vec<u8>>(Box::new(b"__exploit_dump__".to_vec()))
                        .expect("exploit dump");
                    assert!(
                        leaked.is_empty(),
                        "thread {t} round {round} observed residue: {:?}",
                        String::from_utf8_lossy(&leaked)
                    );
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("stress thread");
    }

    let stats = pool.stats();
    assert_eq!(stats.checkouts, (THREADS * ROUNDS * 2) as u64);
    assert_eq!(stats.checkins, stats.checkouts);
    assert_eq!(stats.scrubs, stats.checkouts);
    assert_eq!(stats.rejected, 0);
    // Every checkin zeroized in the kernel.
    assert_eq!(
        wedge.kernel().stats().private_scrubs,
        (THREADS * ROUNDS * 2) as u64
    );
}

/// The control experiment: the same pool with zeroization disabled
/// reproduces the §3.3 recycled-callgate residue leak, proving the scrub —
/// not compartment boundaries alone — is what protects pooled principals.
#[test]
fn pool_without_scrub_reproduces_the_recycled_residue_leak() {
    use wedge::sched::{PoolConfig, WorkerPool};

    let wedge = Wedge::init();
    let root = wedge.root();
    let (entry, _stash) = register_leaky_gate(&wedge);
    let pool = WorkerPool::prewarm(
        &root,
        entry,
        &SecurityPolicy::deny_all(),
        None,
        PoolConfig {
            size: 1,
            max_waiters: 4,
            scrub_on_checkin: false,
        },
    )
    .expect("prewarm pool");

    {
        let worker = pool.checkout().expect("checkout A");
        worker
            .invoke_expect::<Vec<u8>>(Box::new(b"principal-A credit card 4111-1111".to_vec()))
            .expect("benign call");
    }
    let worker = pool.checkout().expect("checkout B");
    let leaked = worker
        .invoke_expect::<Vec<u8>>(Box::new(b"__exploit_dump__".to_vec()))
        .expect("exploit dump");
    assert_eq!(
        leaked, b"principal-A credit card 4111-1111",
        "without zeroization the single pooled worker leaks across checkouts"
    );
}

#[test]
fn recycled_callgate_is_cheaper_than_standard_over_many_invocations() {
    // The reason recycled callgates exist at all (§3.3, Figure 7): amortise
    // activation creation over many invocations. We only assert the ordering,
    // not a ratio — absolute costs belong to the Criterion benches.
    use std::time::Instant;

    let wedge = Wedge::init();
    let root = wedge.root();
    let entry = wedge
        .kernel()
        .cgate_register("noop", typed_entry(|_ctx, _t, n: u64| Ok(n)));
    let policy = caller_policy(entry);

    let handle = root
        .sthread_create("timing-caller", &policy, move |ctx| {
            const N: u32 = 40;
            let start = Instant::now();
            for _ in 0..N {
                ctx.cgate_expect::<u64>(entry, &SecurityPolicy::deny_all(), Box::new(1u64))
                    .expect("standard call");
            }
            let standard = start.elapsed();

            let start = Instant::now();
            for _ in 0..N {
                ctx.cgate_recycled_expect::<u64>(
                    entry,
                    &SecurityPolicy::deny_all(),
                    Box::new(1u64),
                )
                .expect("recycled call");
            }
            let recycled = start.elapsed();
            (standard, recycled)
        })
        .expect("caller");
    let (standard, recycled) = handle.join().expect("join");
    assert!(
        recycled < standard,
        "recycled ({recycled:?}) should be cheaper than standard ({standard:?}) over many calls"
    );
}

/// Cache-invalidation under concurrency (the sharded kernel's epoch
/// protocol): N pooled workers hammer reads on a shared tag through warm
/// per-sthread permission caches while the root revokes their grants. Any
/// read that *starts* after `revoke_mem` returns must fault — a stale
/// cached grant serving one more access would be a real TOCTOU hole.
#[test]
fn revoked_grant_is_immediately_invisible_to_concurrent_pooled_readers() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use wedge::core::MemProt;

    let wedge = Wedge::init();
    let root = wedge.root();
    let tag = root.tag_new().expect("tag");
    let buf = root.smalloc_init(tag, b"hot shared page").expect("buf");
    let entry = wedge.kernel().cgate_register(
        "read_probe",
        typed_entry(move |ctx, _t, _i: ()| Ok(ctx.read(&buf, 0, 15).is_ok())),
    );

    const WORKERS: usize = 4;
    let mut policy = SecurityPolicy::deny_all();
    policy.sc_mem_add(tag, MemProt::Read);
    let workers: Vec<_> = (0..WORKERS)
        .map(|_| {
            root.recycled_worker_spawn(entry, &policy, None)
                .expect("prewarm worker")
        })
        .collect();
    let activations: Vec<_> = workers.iter().map(|w| w.activation()).collect();

    let revoked = Arc::new(AtomicBool::new(false));
    let successes = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = workers
        .into_iter()
        .map(|worker| {
            let revoked = revoked.clone();
            let successes = successes.clone();
            std::thread::spawn(move || loop {
                // Sample the flag *before* the read starts: if the revoke
                // had already returned by then, the read must fault.
                let revoke_returned = revoked.load(Ordering::SeqCst);
                let ok = worker
                    .invoke_expect::<bool>(Box::new(()))
                    .expect("invoke probe");
                if ok {
                    successes.fetch_add(1, Ordering::SeqCst);
                    assert!(
                        !revoke_returned,
                        "stale cached grant served a read that started after revoke returned"
                    );
                } else if revoke_returned {
                    break;
                }
            })
        })
        .collect();

    // Let every worker serve from a warm cache first.
    while successes.load(Ordering::SeqCst) < (WORKERS * 5) as u64 {
        std::thread::yield_now();
    }
    for activation in &activations {
        root.revoke_mem(*activation, tag).expect("revoke");
    }
    revoked.store(true, Ordering::SeqCst);
    for thread in threads {
        thread.join().expect("reader thread");
    }
    assert!(successes.load(Ordering::SeqCst) >= (WORKERS * 5) as u64);
}

/// Revoke linearization on the op-log tier: `Wedge::init()` builds a
/// kernel whose sthread caches are bound round-robin to ≥2 lazily-replayed
/// replicas, so the four pooled readers below are guaranteed to span every
/// replica. While they hammer warm reads, a background mutator floods the
/// log with grants/revokes aimed at an unrelated compartment — building up
/// genuine replica lag — and then the root revokes the readers' grants.
/// Once `revoke_mem` returns, a read that *starts* afterwards must fault
/// no matter which replica its cache is bound to and no matter how far
/// behind that replica's replay is: version cells are bumped only after
/// the log tail is published, so a lagging replica can never re-serve the
/// revoked grant.
#[test]
fn revoke_is_linearized_across_lagging_replicas() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use wedge::core::MemProt;

    let wedge = Wedge::init();
    let root = wedge.root();
    assert!(
        wedge.kernel().replica_count() >= 2,
        "op-log tier must hold at least two kernel replicas for this test \
         to exercise cross-replica invalidation, got {}",
        wedge.kernel().replica_count()
    );
    let tag = root.tag_new().expect("tag");
    let buf = root.smalloc_init(tag, b"replicated page").expect("buf");
    let entry = wedge.kernel().cgate_register(
        "replica_probe",
        typed_entry(move |ctx, _t, _i: ()| Ok(ctx.read(&buf, 0, 15).is_ok())),
    );

    // An unrelated compartment the mutator floods with policy churn, so the
    // shared log grows and idle replicas fall behind.
    let distractor_tag = root.tag_new().expect("distractor tag");
    let bystander = root
        .sthread_create("bystander", &SecurityPolicy::deny_all(), |_| {})
        .expect("bystander");
    let bystander_id = bystander.id();
    bystander.join().expect("bystander exit");

    const WORKERS: usize = 4;
    let mut policy = SecurityPolicy::deny_all();
    policy.sc_mem_add(tag, MemProt::Read);
    let workers: Vec<_> = (0..WORKERS)
        .map(|_| {
            root.recycled_worker_spawn(entry, &policy, None)
                .expect("prewarm worker")
        })
        .collect();
    let activations: Vec<_> = workers.iter().map(|w| w.activation()).collect();

    let revoked = Arc::new(AtomicBool::new(false));
    let stop_churn = Arc::new(AtomicBool::new(false));
    let successes = Arc::new(AtomicU64::new(0));
    let churner = {
        let root = root.clone();
        let stop = stop_churn.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                root.grant_mem(bystander_id, distractor_tag, MemProt::Read)
                    .expect("churn grant");
                root.revoke_mem(bystander_id, distractor_tag)
                    .expect("churn revoke");
            }
        })
    };
    let threads: Vec<_> = workers
        .into_iter()
        .map(|worker| {
            let revoked = revoked.clone();
            let successes = successes.clone();
            std::thread::spawn(move || loop {
                // Sample the flag *before* the read starts: if the revoke
                // had already returned by then, the read must fault.
                let revoke_returned = revoked.load(Ordering::SeqCst);
                let ok = worker
                    .invoke_expect::<bool>(Box::new(()))
                    .expect("invoke probe");
                if ok {
                    successes.fetch_add(1, Ordering::SeqCst);
                    assert!(
                        !revoke_returned,
                        "a lagging replica served a read that started after \
                         revoke returned"
                    );
                } else if revoke_returned {
                    break;
                }
            })
        })
        .collect();

    // Let every worker serve from a warm cache while the log churns.
    while successes.load(Ordering::SeqCst) < (WORKERS * 5) as u64 {
        std::thread::yield_now();
    }
    for activation in &activations {
        root.revoke_mem(*activation, tag).expect("revoke");
    }
    revoked.store(true, Ordering::SeqCst);
    for thread in threads {
        thread.join().expect("reader thread");
    }
    stop_churn.store(true, Ordering::SeqCst);
    churner.join().expect("churn thread");
    assert!(successes.load(Ordering::SeqCst) >= (WORKERS * 5) as u64);
}

/// Scrub resets the policy epoch: a runtime grant cached by a pooled
/// worker's permission cache must not survive `scrub()` (pool checkin).
/// The segment itself stays live — the root owns it — so only the epoch
/// bump can make the post-scrub read fault.
#[test]
fn scrub_resets_policy_epoch_and_drops_cached_grants() {
    use wedge::core::MemProt;

    let wedge = Wedge::init();
    let root = wedge.root();
    let tag = root.tag_new().expect("tag");
    let buf = root.smalloc_init(tag, b"grant-cached").expect("buf");
    let entry = wedge.kernel().cgate_register(
        "epoch_probe",
        typed_entry(move |ctx, _t, _i: ()| Ok(ctx.read(&buf, 0, 12).is_ok())),
    );
    let worker = root
        .recycled_worker_spawn(entry, &SecurityPolicy::deny_all(), None)
        .expect("prewarm worker");

    // Spawn baseline: no grant.
    assert!(!worker.invoke_expect::<bool>(Box::new(())).unwrap());
    // Runtime grant (policy_add) becomes visible, then serves from cache.
    root.grant_mem(worker.activation(), tag, MemProt::Read)
        .expect("grant");
    assert!(worker.invoke_expect::<bool>(Box::new(())).unwrap());
    assert!(worker.invoke_expect::<bool>(Box::new(())).unwrap());
    // Scrub resets the policy to the spawn baseline and bumps the epoch;
    // the cached grant must die with it.
    worker.scrub().expect("scrub");
    assert!(
        !worker.invoke_expect::<bool>(Box::new(())).unwrap(),
        "cached grant survived the scrub's epoch reset"
    );
    let policy_after = wedge.kernel().policy_of(worker.activation()).unwrap();
    assert!(policy_after.mem_grants().is_empty());
}
