//! The Crowbar partitioning workflow end to end (§3.4): run the legacy code
//! under cb-log (with the sthread emulation library), derive the grants a
//! compartment needs with cb-analyze, apply them, and verify the partitioned
//! code runs without protection violations while everything not in the
//! derived policy stays denied.

use wedge::core::{SecurityPolicy, Wedge, WedgeError};
use wedge::crowbar::{CbLog, ItemKey};

#[test]
fn trace_derive_apply_roundtrip() {
    let wedge = Wedge::init();
    let log = CbLog::new();
    log.install(wedge.kernel());
    let root = wedge.root();

    // The "legacy application": a session handler that touches three memory
    // regions, one of which (the key) it should never have needed.
    let config_tag = root.tag_new().unwrap();
    let session_tag = root.tag_new().unwrap();
    let key_tag = root.tag_new().unwrap();
    let config = root.smalloc_init(config_tag, b"timeout=30").unwrap();
    let session = root.smalloc(32, session_tag).unwrap();
    let key = root.smalloc_init(key_tag, b"PRIVATE").unwrap();

    {
        let _f = root.trace_fn("handle_session");
        root.read_all(&config).unwrap();
        root.write(&session, 0, b"state").unwrap();
    }

    // Query 1 drives the grant decision for the handle_session sthread.
    let trace = log.snapshot();
    let suggestion = trace.suggest_policy("handle_session");
    assert!(suggestion.tags.contains_key(&config_tag));
    assert!(suggestion.tags.contains_key(&session_tag));
    assert!(
        !suggestion.tags.contains_key(&key_tag),
        "the key was never needed"
    );

    // Apply the derived policy: the partitioned sthread works, and the key
    // stays out of reach.
    let policy = suggestion.to_security_policy();
    let result = root
        .sthread_create("handle-session-sthread", &policy, move |ctx| {
            let _f = ctx.trace_fn("handle_session");
            let config = ctx.read_all(&config)?;
            ctx.write(&session, 0, b"fresh")?;
            let key_denied = ctx.read_all(&key).is_err();
            Ok::<_, WedgeError>((config.len(), key_denied))
        })
        .unwrap()
        .join()
        .unwrap()
        .unwrap();
    assert_eq!(result.0, b"timeout=30".len());
    assert!(result.1);

    // No (non-emulated) violations were recorded for the provisioned sthread
    // other than the deliberate key probe.
    let violations = wedge.kernel().violations();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].compartment_name, "handle-session-sthread");
}

#[test]
fn emulation_mode_enumerates_missing_grants_after_refactoring() {
    let wedge = Wedge::init();
    let log = CbLog::new();
    log.install(wedge.kernel());
    let root = wedge.root();

    let old_tag = root.tag_new().unwrap();
    let new_tag = root.tag_new().unwrap();
    let old_buf = root.smalloc_init(old_tag, b"old state").unwrap();
    let new_buf = root
        .smalloc_init(new_tag, b"state added by refactoring")
        .unwrap();

    // The sthread's policy was written before the refactoring and only
    // grants the old region. Under emulation the run completes anyway and
    // every missing grant is recorded.
    wedge.kernel().set_emulation(true);
    let mut stale_policy = SecurityPolicy::deny_all();
    stale_policy.sc_mem_add(old_tag, wedge::core::MemProt::Read);
    let handle = root
        .sthread_create("refactored-worker", &stale_policy, move |ctx| {
            let _f = ctx.trace_fn("refactored_code_path");
            let a = ctx.read_all(&old_buf).unwrap();
            let b = ctx.read_all(&new_buf).unwrap();
            a.len() + b.len()
        })
        .unwrap();
    assert_eq!(handle.join().unwrap(), 9 + 26);

    let trace = log.snapshot();
    let missing = trace.violation_items("refactored-worker");
    assert_eq!(missing.len(), 1);
    assert!(matches!(missing[0], ItemKey::Alloc { tag, .. } if tag == new_tag));

    // The compartment-level suggestion includes both the old and the newly
    // required grants, ready to paste into the policy.
    let suggestion = trace.suggest_policy_for_compartment("refactored-worker");
    assert!(suggestion.tags.contains_key(&old_tag));
    assert!(suggestion.tags.contains_key(&new_tag));
}

#[test]
fn traces_from_multiple_workloads_aggregate() {
    let wedge = Wedge::init();
    let log = CbLog::new();
    log.install(wedge.kernel());
    let root = wedge.root();
    let tag_a = root.tag_new().unwrap();
    let tag_b = root.tag_new().unwrap();
    let buf_a = root.smalloc_init(tag_a, b"workload A data").unwrap();
    let buf_b = root.smalloc_init(tag_b, b"workload B data").unwrap();

    // Workload 1 exercises only region A.
    {
        let _f = root.trace_fn("request_path");
        root.read_all(&buf_a).unwrap();
    }
    let trace_a = log.snapshot();
    log.clear();
    // Workload 2 exercises only region B.
    {
        let _f = root.trace_fn("request_path");
        root.read_all(&buf_b).unwrap();
    }
    let trace_b = log.snapshot();

    // Each individual trace misses one grant; the aggregation has both
    // (the paper's "diverse innocuous workloads" guidance).
    assert_eq!(trace_a.suggest_policy("request_path").tags.len(), 1);
    assert_eq!(trace_b.suggest_policy("request_path").tags.len(), 1);
    let mut merged = trace_a.clone();
    merged.merge(&trace_b);
    let combined = merged.suggest_policy("request_path");
    assert!(combined.tags.contains_key(&tag_a));
    assert!(combined.tags.contains_key(&tag_b));
}
