//! The robustness acceptance run: open-loop offered load ramping ~10×
//! over the whole serving stack (Apache + SSH + POP3 behind rate-limited
//! listeners, TLS resumption through the cachenet ring) while a seeded
//! `ChaosSchedule` injects at least one shard kill, one cache-node
//! kill→restart (epoch bump) and one rate-limit flood mid-run.
//!
//! Gates, per the ISSUE acceptance criteria:
//!
//! * `submitted == completed + rejected` on every front-end — zero
//!   silently dropped links, even across the kills;
//! * p99 `shard.serve` latency stays within a fixed bound;
//! * every injected fault is attributable: one `FaultInjected` audit
//!   event per fault in the same telemetry stream as the latency it
//!   explains;
//! * the `BENCH_load.json` artifact records per-phase p50/p99/p999 +
//!   connections/sec plus the fault timeline.
//!
//! The full 10× ramp runs in release builds (the CI acceptance step); a
//! scaled-down variant keeps plain `cargo test` honest.

use std::time::Duration;

use wedge_bench::load::{load_bench_json, run_load, LoadPhase, LoadProfile};
use wedge_chaos::{ChaosPlan, ChaosSchedule};
use wedge_telemetry::MetricValue;

/// Fixed p99 bound on one shard's serve latency under chaos. Generous —
/// a serve is a full protocol session — but *fixed*: regressions that
/// park links behind a dead shard blow through it.
const SERVE_P99_BOUND: Duration = Duration::from_millis(500);

fn ramp_profile(scale: f64) -> LoadProfile {
    // 20 → 60 → 200 offered connections/sec: the ~10× ramp of the
    // acceptance criterion (scaled down for debug builds).
    LoadProfile {
        seed: 0x10AD_CA05,
        hosts: 400,
        phases: vec![
            LoadPhase::new("warm", 20.0 * scale, Duration::from_millis(700)),
            LoadPhase::new("ramp", 60.0 * scale, Duration::from_millis(700)),
            LoadPhase::new("peak", 200.0 * scale, Duration::from_millis(700)),
        ],
        workers: 16,
        ..LoadProfile::default()
    }
}

fn ramp_under_chaos(scale: f64) {
    let profile = ramp_profile(scale);
    let horizon: Duration = profile.phases.iter().map(|p| p.duration).sum();
    let schedule = ChaosSchedule::generate(&ChaosPlan {
        seed: 0xC4A05,
        horizon,
        shards: 3 * profile.shards_per_front,
        cache_nodes: 3,
        flood_sources: 4,
        shard_kills: 1,
        cache_restarts: 1,
        floods: 1,
        flood_connections: 200,
        ..ChaosPlan::default()
    });
    assert!(schedule.count_of("kill_shard") >= 1);
    assert!(schedule.count_of("cache_kill") >= 1);
    assert!(schedule.count_of("cache_restart") >= 1);
    assert!(schedule.count_of("flood") >= 1);

    let report = run_load(&profile, &schedule);

    // Zero silently dropped links: every front-end's books balance.
    assert!(
        report.accounts_balance(),
        "submitted == completed + rejected on every front: {:?}",
        report.fronts
    );
    // The ramp actually ran: every phase dispatched its arrivals and
    // completed almost all of them (the stack under chaos may shed a
    // few, never silently).
    let arrivals: u64 = report.phases.iter().map(|p| p.arrivals).sum();
    assert_eq!(
        arrivals,
        profile
            .phases
            .iter()
            .map(|p| p.arrivals() as u64)
            .sum::<u64>()
    );
    assert!(
        report.errors() * 20 <= arrivals,
        "well-behaved traffic survives chaos (≥95%): {} errors of {arrivals}",
        report.errors()
    );
    for phase in &report.phases {
        assert!(phase.completed > 0, "phase {} served", phase.name);
        assert!(phase.latency.p999_nanos >= phase.latency.p99_nanos);
        assert!(phase.latency.p99_nanos >= phase.latency.p50_nanos);
    }

    // Every injected fault is attributable in the telemetry stream.
    assert_eq!(report.faults.len(), schedule.len(), "all faults injected");
    assert_eq!(
        report.fault_events,
        report.faults.len(),
        "one FaultInjected audit event per fault"
    );

    // The shard kill was healed by a supervisor…
    let restarts: u64 = report
        .fronts
        .iter()
        .filter_map(|front| front.restarts.as_ref())
        .map(|stats| stats.restarts)
        .sum();
    assert!(restarts >= 1, "the killed shard was revived");
    // …the cache-node restart bumped an epoch…
    match report.snapshot.get("cachenet.node.epoch") {
        Some(MetricValue::Gauge(epoch)) => {
            assert!(*epoch >= 1, "the bounced cache node restarted an epoch up")
        }
        other => panic!("cachenet.node.epoch missing from snapshot: {other:?}"),
    }
    // …the flood was refused by the rate limiter, and TLS resumption
    // kept working through all of it.
    assert!(
        report.listener.rate_limited >= 100,
        "the hostile burst is mostly refused: {:?}",
        report.listener
    );
    let resumed: u64 = report.phases.iter().map(|p| p.resumed).sum();
    assert!(resumed > 0, "hot hosts resumed through the ring");

    // p99 serve latency under chaos stays within the fixed bound.
    let serve = report
        .snapshot
        .histogram("shard.serve")
        .expect("shard.serve in snapshot");
    assert!(serve.count > 0);
    assert!(
        serve.p99_nanos < SERVE_P99_BOUND.as_nanos() as u64,
        "p99 shard.serve {}ns must stay under {SERVE_P99_BOUND:?}",
        serve.p99_nanos
    );

    // The machine-readable artifact, with every acceptance field present.
    let idle = wedge_bench::load::probe_idle_link_memory(&profile, 256);
    let json = load_bench_json(&profile, &report, idle.as_ref());
    for key in [
        "\"latency_p50_us\"",
        "\"latency_p99_us\"",
        "\"latency_p999_us\"",
        "\"achieved_cps\"",
        "\"kill_shard\"",
        "\"cache_restart\"",
        "\"flood\"",
        "\"accounts_balance\":true",
    ] {
        assert!(json.contains(key), "missing {key}");
    }
    let path = wedge_bench::report::artifact_path("load");
    std::fs::write(&path, format!("{json}\n")).expect("write bench artifact");
    println!("wrote {path}");
}

/// The ISSUE acceptance criterion, release-mode: the full 10× ramp
/// (20 → 200 connections/sec) across the seeded chaos schedule.
#[cfg(not(debug_assertions))]
#[test]
fn ten_x_ramp_survives_the_seeded_chaos_schedule() {
    ramp_under_chaos(1.0);
}

/// Debug-build variant of the same scenario, scaled down enough for
/// plain `cargo test` (same 10× shape, quarter the offered rate).
#[cfg(debug_assertions)]
#[test]
fn scaled_ramp_survives_the_seeded_chaos_schedule() {
    ramp_under_chaos(0.25);
}
