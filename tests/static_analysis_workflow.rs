//! The §7 static-vs-dynamic analysis comparison as an end-to-end workflow.
//!
//! The paper argues for run-time analysis: a trace from an innocuous
//! workload yields only the privileges needed for correct execution of that
//! workload, while static analysis yields the exhaustive superset — which
//! "could well include privileges for sensitive data that could allow an
//! exploit to leak that data". These tests run a small legacy-style
//! application under cb-log, build static program models from its traces,
//! and check both halves of that argument against the live kernel:
//!
//! 1. the static grant set always covers the dynamic one (no protection
//!    violations under the static policy), and
//! 2. the static policy hands an exploited worker the sensitive tag that the
//!    dynamic (innocuous-workload) policy withholds.

use wedge::core::{Exploit, Wedge, WedgeError};
use wedge::crowbar::static_analysis::ProgramModel;
use wedge::crowbar::{CbLog, ItemKey};

/// The "legacy application": a request handler that always touches the
/// request buffer and the session state, and only on the (rare) admin path
/// reads the private key to re-sign the configuration.
struct LegacyApp {
    wedge: Wedge,
    request_tag: wedge::core::Tag,
    session_tag: wedge::core::Tag,
    key_tag: wedge::core::Tag,
    request: wedge::core::SBuf,
    session: wedge::core::SBuf,
    key: wedge::core::SBuf,
}

impl LegacyApp {
    fn new() -> LegacyApp {
        let wedge = Wedge::init();
        let root = wedge.root();
        let request_tag = root.tag_new().unwrap();
        let session_tag = root.tag_new().unwrap();
        let key_tag = root.tag_new().unwrap();
        let request = root.smalloc_init(request_tag, b"GET /index.html").unwrap();
        let session = root.smalloc(64, session_tag).unwrap();
        let key = root
            .smalloc_init(key_tag, b"-----PRIVATE KEY-----")
            .unwrap();
        LegacyApp {
            wedge,
            request_tag,
            session_tag,
            key_tag,
            request,
            session,
            key,
        }
    }

    /// One request, as the monolithic code would run it.
    fn handle_request(&self, ctx: &wedge::core::SthreadCtx, admin: bool) -> Result<(), WedgeError> {
        let _f = ctx.trace_fn("handle_request");
        {
            let _p = ctx.trace_fn("parse_request");
            ctx.read_all(&self.request)?;
        }
        {
            let _s = ctx.trace_fn("update_session");
            ctx.write(&self.session, 0, b"session-state")?;
        }
        if admin {
            let _a = ctx.trace_fn("resign_config");
            ctx.read_all(&self.key)?;
        }
        Ok(())
    }
}

#[test]
fn static_policy_covers_every_workload_but_grants_the_sensitive_tag() {
    let app = LegacyApp::new();
    let root = app.wedge.root();
    let log = CbLog::new();
    log.install(app.wedge.kernel());

    // Trace an ordinary workload and (separately) the rare admin workload.
    app.handle_request(&root, false).unwrap();
    let innocuous_trace = log.snapshot();
    log.clear();
    app.handle_request(&root, true).unwrap();
    let admin_trace = log.snapshot();
    CbLog::uninstall(app.wedge.kernel());

    // Static model: the union of everything any workload can do — what a
    // whole-program static analysis would see in the source.
    let mut model = ProgramModel::from_trace(&innocuous_trace);
    model.merge(&ProgramModel::from_trace(&admin_trace));

    // (1) Superset property against the innocuous run.
    let cmp = model.compare_with_trace("handle_request", &innocuous_trace);
    assert!(cmp.is_superset());

    // (2) The over-approximation is exactly the sensitive item: the private
    // key the innocuous workload never touched.
    let sensitive: Vec<ItemKey> = cmp
        .static_only
        .iter()
        .filter(|item| matches!(item, ItemKey::Alloc { tag, .. } if *tag == app.key_tag))
        .cloned()
        .collect();
    assert_eq!(
        cmp.excess_sensitive(&sensitive).len(),
        1,
        "static analysis grants the key tag even though the innocuous run never needed it"
    );

    // Dynamic policy (paper's recommendation): derived from the innocuous
    // trace only. Static policy: derived from the exhaustive model.
    let dynamic_policy = innocuous_trace
        .suggest_policy("handle_request")
        .to_security_policy();
    let static_policy = model.suggest_policy("handle_request").to_security_policy();

    assert!(dynamic_policy.mem_grant(app.request_tag).is_some());
    assert!(dynamic_policy.mem_grant(app.session_tag).is_some());
    assert!(dynamic_policy.mem_grant(app.key_tag).is_none());
    assert!(static_policy.mem_grant(app.key_tag).is_some());

    // Both policies let the ordinary request path run without faults...
    for (name, policy) in [
        ("worker-dynamic", dynamic_policy.clone()),
        ("worker-static", static_policy.clone()),
    ] {
        let request = app.request;
        let session = app.session;
        let handle = root
            .sthread_create(name, &policy, move |ctx| {
                let _f = ctx.trace_fn("handle_request");
                ctx.read_all(&request)?;
                ctx.write(&session, 0, b"fresh")?;
                Ok::<_, WedgeError>(())
            })
            .unwrap();
        assert!(handle.join().unwrap().is_ok(), "{name} must run cleanly");
    }

    // ...but an exploited worker leaks the private key only under the static
    // policy. This is the paper's §7 argument in executable form.
    let key = app.key;
    for (name, policy, expect_leak) in [
        ("exploited-dynamic", dynamic_policy, false),
        ("exploited-static", static_policy, true),
    ] {
        let handle = root
            .sthread_create(name, &policy, move |ctx| {
                let mut exploit = Exploit::seize(ctx);
                exploit.try_read(&key).is_ok()
            })
            .unwrap();
        let leaked = handle.join().unwrap();
        assert_eq!(
            leaked, expect_leak,
            "{name}: key readable={leaked}, expected {expect_leak}"
        );
    }
}

#[test]
fn unresolved_library_calls_are_surfaced_to_the_programmer() {
    // When the traced code calls into something the model has no body for
    // (the analogue of a binary-only library), the analyser reports it so the
    // programmer knows the static footprint may be incomplete.
    let mut model = ProgramModel::new();
    model
        .procedure("handle_request")
        .calls("parse_request")
        .calls("libssl_EVP_DigestSign");
    model.procedure("parse_request");
    let unresolved = model.unresolved_calls("handle_request");
    assert_eq!(unresolved.len(), 1);
    assert!(unresolved.contains("libssl_EVP_DigestSign"));
}

#[test]
fn per_workload_models_merge_like_traces_do() {
    // The static analogue of "run the application on diverse innocuous
    // workloads and aggregate": models inferred from separate runs merge
    // into one whose footprint covers both runs.
    let app = LegacyApp::new();
    let root = app.wedge.root();
    let log = CbLog::new();
    log.install(app.wedge.kernel());

    app.handle_request(&root, false).unwrap();
    let run_a = log.snapshot();
    log.clear();
    app.handle_request(&root, true).unwrap();
    let run_b = log.snapshot();
    CbLog::uninstall(app.wedge.kernel());

    let model_a = ProgramModel::from_trace(&run_a);
    let model_b = ProgramModel::from_trace(&run_b);
    assert!(
        model_a
            .compare_with_trace("handle_request", &run_b)
            .dynamic_only
            .iter()
            .any(|item| matches!(item, ItemKey::Alloc { tag, .. } if *tag == app.key_tag)),
        "the innocuous-run model alone does not cover the admin run"
    );

    let mut merged = model_a;
    merged.merge(&model_b);
    assert!(merged
        .compare_with_trace("handle_request", &run_a)
        .is_superset());
    assert!(merged
        .compare_with_trace("handle_request", &run_b)
        .is_superset());
}
