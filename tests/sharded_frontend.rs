//! Integration tests for the forked-shard front-end: shard failure with
//! re-routing, and TLS session resumption that survives landing on a
//! different shard.

use std::time::{Duration, Instant};

use wedge::apache::{ConcurrentApache, ConcurrentApacheConfig, PageStore};
use wedge::crypto::{RsaKeyPair, WedgeRng};
use wedge::net::duplex_pair;
use wedge::sched::AcceptPolicy;
use wedge::tls::TlsClient;

/// An affinity key that the acceptor's hash lands on `shard` of `n`.
fn affinity_key(shard: usize, n: usize) -> u64 {
    (0u64..)
        .find(|k| wedge::sched::shard_for_key(*k, n) == shard)
        .expect("key")
}

fn sharded_server(seed: u64, config: ConcurrentApacheConfig) -> ConcurrentApache {
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(seed));
    ConcurrentApache::new(keypair, PageStore::sample(), config).expect("sharded server")
}

/// Kill one shard while it is serving one link and holding three more in
/// its queue: the queued links must re-route to the surviving shard, the
/// in-flight link must finish, no connection may be dropped, and the
/// aggregate counters must balance (submitted = completed + rejected).
#[test]
fn killing_a_shard_mid_batch_reroutes_queued_links() {
    let server = sharded_server(
        7,
        ConcurrentApacheConfig {
            shards: 2,
            queue_capacity: 8,
            max_inflight: None,
            recycled: true,
            policy: AcceptPolicy::SessionAffinity,
            supervisor: None,
        },
    );
    let to_zero = affinity_key(0, 2);
    let public_key = server.public_key();

    // The held connection: handshakes immediately, then thinks long enough
    // for us to queue work behind it and kill the shard under it.
    let (held_client_link, held_server_link) = duplex_pair("held-client", "held-server");
    let held_client = std::thread::spawn(move || {
        let mut client = TlsClient::new(public_key, WedgeRng::from_seed(100));
        let mut conn = client.connect(&held_client_link).expect("handshake");
        std::thread::sleep(Duration::from_millis(300));
        conn.send(&held_client_link, b"GET /index.html HTTP/1.0\r\n\r\n")
            .expect("send");
        let response = conn.recv(&held_client_link).expect("response");
        assert!(response.starts_with(b"HTTP/1.0 200 OK"));
    });
    let held = server
        .serve_with_key(held_server_link, to_zero)
        .expect("submit held");

    // Wait until shard 0 is actually *serving* the held link (its
    // handshake sthread exists), so the next submissions queue behind it.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.shard_stats()[0].kernel.sthreads_created == 0 {
        assert!(Instant::now() < deadline, "shard 0 never started serving");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Three more links, all pinned to the doomed shard.
    let mut queued_clients = Vec::new();
    let mut queued = Vec::new();
    for i in 0..3 {
        let (client_link, server_link) = duplex_pair("queued-client", "queued-server");
        queued_clients.push(std::thread::spawn(move || {
            let mut client = TlsClient::new(public_key, WedgeRng::from_seed(200 + i));
            let mut conn = client.connect(&client_link).expect("handshake");
            conn.send(&client_link, b"GET /index.html HTTP/1.0\r\n\r\n")
                .expect("send");
            let response = conn.recv(&client_link).expect("response");
            assert!(response.starts_with(b"HTTP/1.0 200 OK"));
        }));
        queued.push(
            server
                .serve_with_key(server_link, to_zero)
                .expect("submit queued"),
        );
    }
    assert_eq!(server.shard_stats()[0].depth, 4, "1 serving + 3 queued");

    // Kill the shard under the batch.
    let kill = server.kill_shard(0);
    assert_eq!(
        kill.rerouted, 3,
        "every queued link moves to the live shard"
    );
    assert_eq!(kill.failed, 0);
    assert!(!server.shard_stats()[0].healthy);

    // No connection is silently dropped: the re-routed links serve on
    // shard 1, the in-flight one finishes on shard 0.
    for handle in queued {
        let report = handle.join().expect("re-routed connection served");
        assert!(report.handshake_ok && report.requests == 1);
        assert_eq!(report.shard, 1, "re-routed links must serve on shard 1");
    }
    let held_report = held.join().expect("held connection served");
    assert!(held_report.handshake_ok && held_report.requests == 1);
    assert_eq!(
        held_report.shard, 0,
        "the in-flight link finishes where it started"
    );
    held_client.join().expect("held client");
    for client in queued_clients {
        client.join().expect("queued client");
    }

    // Aggregate accounting still balances.
    let stats = server.sched_stats();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.stolen, 3, "the three re-routes are visible");
    assert_eq!(
        stats.submitted,
        stats.completed + stats.rejected,
        "every offered link resolves exactly once"
    );

    // The front door still works — through the surviving shard.
    let (client_link, server_link) = duplex_pair("after-client", "after-server");
    let after_client = std::thread::spawn(move || {
        let mut client = TlsClient::new(public_key, WedgeRng::from_seed(300));
        let conn = client.connect(&client_link).expect("handshake");
        drop(conn);
    });
    let report = server
        .serve_with_key(server_link, to_zero)
        .expect("post-kill submit")
        .join()
        .expect("post-kill serve");
    assert_eq!(report.shard, 1);
    after_client.join().expect("after client");
}

/// A shard saturated by its admission quota is skipped — the acceptor
/// only surfaces `ResourceExhausted` when *every* shard rejects.
#[test]
fn saturated_shard_is_skipped_until_total_exhaustion() {
    let server = sharded_server(
        8,
        ConcurrentApacheConfig {
            shards: 2,
            queue_capacity: 1,
            max_inflight: Some(1),
            recycled: true,
            policy: AcceptPolicy::SessionAffinity,
            supervisor: None,
        },
    );
    let to_zero = affinity_key(0, 2);
    // Two silent clients saturate both shards (their handshakes time out
    // after 5s; until then each shard's single admission slot is taken).
    let (_silent_a, server_a) = duplex_pair("silent-a", "server-a");
    let first = server.serve_with_key(server_a, to_zero).expect("first");
    assert_eq!(first.placed_on(), 0);
    let (_silent_b, server_b) = duplex_pair("silent-b", "server-b");
    let second = server.serve_with_key(server_b, to_zero).expect("second");
    assert_eq!(second.placed_on(), 1, "saturated shard 0 must be skipped");
    // Now every shard rejects.
    let (_c, s) = duplex_pair("extra", "server-extra");
    let err = server.serve_with_key(s, to_zero).unwrap_err();
    assert!(matches!(
        err,
        wedge::core::WedgeError::ResourceExhausted { .. }
    ));
    let stats = server.sched_stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.stolen, 1);
}

/// The ISSUE acceptance criterion for the shared session cache: a client
/// handshakes on shard A, reconnects, lands on shard B via round-robin,
/// and still gets the abbreviated handshake (cache hit) with identical
/// derived-key fingerprints on both sides.
#[test]
fn resumption_survives_landing_on_a_different_shard() {
    let server = sharded_server(
        9,
        ConcurrentApacheConfig {
            shards: 2,
            ..ConcurrentApacheConfig::default()
        },
    );
    let public_key = server.public_key();
    let mut client = TlsClient::new(public_key, WedgeRng::from_seed(500));

    let run_connection = |client: &mut TlsClient| {
        let (client_link, server_link) = duplex_pair("roaming-client", "server");
        let handle = server.serve(server_link).expect("submit");
        let conn = client.connect(&client_link).expect("handshake");
        // Hang up so the shard's client handler finishes.
        drop(client_link);
        let report = handle.join().expect("serve");
        (conn, report)
    };

    // First connection: full handshake on shard A.
    let (first_conn, first_report) = run_connection(&mut client);
    assert!(first_report.handshake_ok);
    assert!(!first_report.resumed && !first_conn.resumed);
    assert_eq!(
        first_report.key_fingerprint,
        first_conn.keys.fingerprint(),
        "client and serving shard must derive identical keys"
    );

    // Second connection: round-robin lands the *other* shard, which never
    // saw the original handshake — the shared cache still resumes it.
    let (second_conn, second_report) = run_connection(&mut client);
    assert!(second_report.handshake_ok);
    assert_ne!(
        second_report.shard, first_report.shard,
        "round-robin must land the reconnect on a different shard"
    );
    assert!(
        second_report.resumed && second_conn.resumed,
        "the abbreviated handshake must work cross-shard"
    );
    assert_eq!(
        second_report.key_fingerprint,
        second_conn.keys.fingerprint(),
        "resumed keys must match on both sides"
    );
    // Same session, fresh randoms: same premaster, different keys.
    assert_eq!(second_conn.session_id, first_conn.session_id);
    assert_ne!(
        second_conn.keys.fingerprint(),
        first_conn.keys.fingerprint()
    );

    // The shared lookup service saw exactly one insert and one hit.
    let (hits, misses) = server.session_cache().stats();
    assert_eq!(hits, 1, "shard B must hit the session shard A cached");
    assert_eq!(misses, 0);
    assert_eq!(server.session_cache().len(), 1);

    // Both shards did real work: one full handshake each side.
    let per_shard = server.shard_stats();
    assert!(per_shard.iter().all(|s| s.kernel.sthreads_created > 0));
    assert!(per_shard.iter().all(|s| s.healthy));
    assert_eq!(server.shards(), 2);
}
