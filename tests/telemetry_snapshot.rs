//! The observability acceptance run: one `Telemetry` registry observes
//! the whole serving stack at once — a rate-limited listener, two
//! sharded HTTPS "machines" sharing a cachenet ring (with a node killed
//! mid-run), TLS full-vs-abbreviated handshakes, and a standalone
//! kernel producing a policy violation — and a single
//! `TelemetrySnapshot` must carry populated metrics from every layer,
//! including p50/p99/p999 serve and lookup latency.
//!
//! The snapshot is also written as JSON to `TELEMETRY_snapshot.json`
//! (override with `WEDGE_TELEMETRY_JSON`), the artifact CI uploads next
//! to the `BENCH_*.json` files.

use std::sync::Arc;
use std::time::Duration;

use wedge::apache::{ConcurrentApache, ConcurrentApacheConfig, PageStore};
use wedge::cachenet::{CacheNode, CacheNodeConfig, CacheRing, CacheRingConfig};
use wedge::crypto::{RsaKeyPair, WedgeRng};
use wedge::net::{duplex_pair, Listener, RateLimitConfig, SourceAddr};
use wedge::telemetry::Telemetry;
use wedge::tls::{SessionId, SessionStore, TlsClient};

const SESSIONS: usize = 12;

fn ring_for(nodes: &[CacheNode], machine: u8) -> Arc<CacheRing> {
    Arc::new(CacheRing::new(
        nodes.iter().map(CacheNode::endpoint).collect(),
        CacheRingConfig {
            source: SourceAddr::new([10, 80, 0, machine], 45_000),
            op_timeout: Duration::from_millis(200),
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(100),
            ..CacheRingConfig::default()
        },
    ))
}

fn machine(keypair: RsaKeyPair, ring: Arc<CacheRing>) -> ConcurrentApache {
    ConcurrentApache::with_session_store(
        keypair,
        PageStore::sample(),
        ConcurrentApacheConfig {
            shards: 2,
            ..ConcurrentApacheConfig::default()
        },
        ring,
    )
    .expect("machine front-end")
}

/// One direct connection through `front`; returns whether it resumed.
fn connect_direct(front: &ConcurrentApache, client: &mut TlsClient) -> bool {
    let (client_link, server_link) = duplex_pair("client", "server");
    let handle = front.serve(server_link).expect("submit");
    let conn = client.connect(&client_link).expect("handshake");
    drop(client_link);
    let report = handle.join().expect("serve");
    assert!(report.handshake_ok);
    conn.resumed
}

/// Where the JSON artifact goes: `WEDGE_TELEMETRY_JSON`, defaulting to
/// `TELEMETRY_snapshot.json` at the workspace root.
fn artifact_path() -> String {
    std::env::var("WEDGE_TELEMETRY_JSON")
        .unwrap_or_else(|_| format!("{}/TELEMETRY_snapshot.json", env!("CARGO_MANIFEST_DIR")))
}

#[test]
fn one_snapshot_observes_every_layer() {
    let telemetry = Telemetry::new();

    // --- cachenet ring + two machines, all on the one registry.
    let nodes: Vec<CacheNode> = (0..3)
        .map(|n| CacheNode::spawn(CacheNodeConfig::named(&format!("telemetry-cache-{n}"))))
        .collect();
    for node in &nodes {
        node.instrument(&telemetry);
    }
    let ring_a = ring_for(&nodes, 1);
    let ring_b = ring_for(&nodes, 2);
    ring_a.instrument(&telemetry);
    ring_b.instrument(&telemetry);
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(8086));
    let machine_a = Arc::new(machine(keypair, ring_a));
    let machine_b = machine(keypair, ring_b.clone());
    machine_a.instrument(&telemetry);
    machine_b.instrument(&telemetry);

    // --- machine A's connections arrive through a rate-limited listener.
    let listener = Listener::bind_rate_limited(
        "tls-edge",
        SESSIONS,
        RateLimitConfig {
            burst: 2,
            refill_per_sec: 0.0,
        },
    );
    listener.instrument(&telemetry);
    let serve = {
        let machine_a = machine_a.clone();
        let listener = listener.clone();
        std::thread::spawn(move || machine_a.serve_listener(&listener, 8))
    };
    let mut clients: Vec<TlsClient> = (0..SESSIONS)
        .map(|i| {
            TlsClient::new(
                machine_a.public_key(),
                WedgeRng::from_seed(7_000 + i as u64),
            )
        })
        .collect();
    for (i, client) in clients.iter_mut().enumerate() {
        // Distinct hosts, so the per-source limiter never bites real
        // traffic (burst 2, one connect each).
        let source = SourceAddr::new([10, 81, 0, i as u8], 40_000 + i as u16);
        let link = listener.connect(source).expect("connect");
        let conn = client.connect(&link).expect("handshake");
        assert!(!conn.resumed, "first contact is a full handshake");
    }
    // One host floods: its 2 burst tokens admit dead links (dropped at
    // once, so their serves fail fast on EOF rather than hanging the
    // accept loop), then the empty bucket refuses every further connect
    // before any link is built.
    let flood = SourceAddr::new([10, 82, 0, 1], 50_000);
    drop(listener.connect(flood).expect("first burst token"));
    drop(listener.connect(flood).expect("second burst token"));
    let mut rate_limited_refusals = 0;
    for _ in 0..6 {
        if listener.connect(flood).is_err() {
            rate_limited_refusals += 1;
        }
    }
    assert_eq!(
        rate_limited_refusals, 6,
        "empty bucket refuses every connect"
    );
    listener.close();
    let outcomes = serve.join().expect("accept loop");
    // The 12 real sessions handshook; the 2 burst flood links carried no
    // client and fail their serve — still accounted, never dropped.
    assert_eq!(outcomes.len(), SESSIONS + 2);
    assert_eq!(
        outcomes
            .iter()
            .filter(|o| o.as_ref().is_ok_and(|r| r.handshake_ok))
            .count(),
        SESSIONS,
        "every real session handshakes; the two dead flood links do not"
    );

    // --- the clients roam to machine B; a cache node dies mid-run, so
    // lookups split into remote hits, failures (opening a breaker) and
    // local misses.
    let mut resumed = 0usize;
    for (i, client) in clients.iter_mut().enumerate() {
        if i == SESSIONS / 2 {
            nodes[0].kill();
        }
        if connect_direct(&machine_b, client) {
            resumed += 1;
        }
    }
    assert!(
        resumed > 0,
        "cross-machine resumption must survive the kill"
    );
    // Whether any roamed session's id ranks the killed node first is up
    // to this run's session ids — drive a spread of fixed probe ids
    // through ring B so at least one lookup deterministically routes to
    // the dead node, fails, and opens its breaker.
    for probe in 0..16u8 {
        let _ = SessionStore::lookup(
            ring_b.as_ref(),
            &SessionId::from_bytes(&[probe; 16]).expect("16 bytes"),
        );
    }

    // --- a standalone kernel on the same plane produces a violation.
    let wedge = wedge::core::Wedge::init();
    wedge.kernel().instrument(&telemetry);
    let root = wedge.root();
    let tag = root.tag_new().expect("tag");
    let buf = root.smalloc_init(tag, b"secret").expect("buf");
    let snoop = root
        .sthread_create(
            "snoop",
            &wedge::core::SecurityPolicy::deny_all(),
            move |ctx| ctx.read(&buf, 0, 6).is_err(),
        )
        .expect("spawn");
    assert!(snoop.join().expect("snoop"), "deny-all read must fault");

    // --- one snapshot, every layer populated.
    let snapshot = telemetry.snapshot();

    // Listener: accepts, refusals, and specifically rate-limited ones.
    assert_eq!(snapshot.counter("listener.accept"), (SESSIONS + 2) as u64);
    assert_eq!(snapshot.counter("listener.refused"), 6);
    assert_eq!(snapshot.counter("listener.rate_limited"), 6);

    // Placement + queue depth.
    let submitted = snapshot.counter("sched.submitted");
    assert!(
        submitted >= (2 * SESSIONS + 2) as u64,
        "both machines observed"
    );
    assert_eq!(
        submitted,
        snapshot.counter("sched.completed") + snapshot.counter("sched.rejected")
    );
    assert!(snapshot.get("shard.queue_depth").is_some());
    assert!(snapshot.counter("shard.queue_depth.peak") >= 1);
    assert_eq!(
        snapshot.counter("shard.healthy"),
        4,
        "2 shards x 2 machines"
    );

    // TLS: full on machine A (and post-kill misses on B), abbreviated on B.
    assert!(snapshot.counter("tls.handshake.full") >= SESSIONS as u64);
    assert_eq!(
        snapshot.counter("tls.handshake.abbreviated"),
        resumed as u64
    );

    // Cachenet: hits, misses and breaker state after the node kill.
    assert!(snapshot.counter("cachenet.write_throughs") >= SESSIONS as u64);
    assert!(snapshot.counter("cachenet.remote_hits") >= resumed as u64);
    assert!(
        snapshot.counter("cachenet.failures") >= 1,
        "lookups against the killed node must fail"
    );
    assert!(snapshot.counter("cachenet.circuit_opens") >= 1);
    assert!(snapshot.get("cachenet.breaker_open").is_some());
    assert!(snapshot.counter("cachenet.node.inserts") >= SESSIONS as u64);

    // Kernel: reads flowed and the violation was recorded.
    assert!(snapshot.counter("kernel.read") >= 1);
    assert!(snapshot.counter("kernel.violations") >= 1);

    // Latency distributions: shard serve and ring lookup.
    let serve = snapshot.histogram("shard.serve").expect("serve latency");
    assert_eq!(serve.count, submitted);
    assert!(serve.p50_nanos > 0);
    assert!(serve.p99_nanos >= serve.p50_nanos);
    assert!(serve.p999_nanos >= serve.p99_nanos);
    assert!(serve.max_nanos >= serve.p999_nanos);
    let lookup = snapshot
        .histogram("cachenet.lookup")
        .expect("lookup latency");
    assert!(lookup.count >= SESSIONS as u64);
    assert!(lookup.p999_nanos >= lookup.p99_nanos && lookup.p99_nanos >= lookup.p50_nanos);

    // --- export: the CI artifact, and a sanity pass over the JSON shape.
    let json = snapshot.to_json();
    assert!(json.starts_with(r#"{"telemetry":{"#));
    assert!(json.contains(r#""shard.serve":{"count":"#));
    assert!(json.contains(r#""p999_ns":"#));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    let path = artifact_path();
    std::fs::write(&path, format!("{json}\n")).expect("write telemetry artifact");
    println!("wrote {path}");
    println!("{}", snapshot.to_text());
}
