//! Integration tests for the supervised serving stack: listener → shard
//! supervisor → protocol-agnostic front-end. Crash-recovery accounting
//! (kill a shard mid-batch, supervisor revives it, every link resolves),
//! deterministic session-affinity fallback, and the release-mode
//! acceptance run: ≥200 connections through a listener while a shard is
//! killed and auto-restarted with zero silently dropped links.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wedge::apache::{ConcurrentApache, ConcurrentApacheConfig, PageStore};
use wedge::crypto::{RsaKeyPair, WedgeRng};
use wedge::net::{duplex_pair, Duplex, Listener, RecvTimeout, SourceAddr};
use wedge::pop3::{MailDb, ShardedPop3, ShardedPop3Config};
use wedge::sched::{AcceptPolicy, SupervisorConfig};
use wedge::tls::TlsClient;

/// An affinity key the acceptor's hash lands on `shard` of `n`.
fn affinity_key(shard: usize, n: usize) -> u64 {
    (0u64..)
        .find(|k| wedge::sched::shard_for_key(*k, n) == shard)
        .expect("key")
}

/// A quick supervisor: tight polling and minimal backoff so tests do not
/// wait out production timings.
fn quick_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        poll_interval: Duration::from_millis(1),
        backoff_base: Duration::from_millis(1),
        ..SupervisorConfig::default()
    }
}

fn send_cmd(client: &Duplex, cmd: &str) -> String {
    client.send(cmd.as_bytes()).unwrap();
    String::from_utf8_lossy(
        &client
            .recv(RecvTimeout::After(Duration::from_secs(10)))
            .unwrap(),
    )
    .to_string()
}

fn run_pop3_session(client: &Duplex) {
    let greeting = client
        .recv(RecvTimeout::After(Duration::from_secs(10)))
        .unwrap();
    assert!(greeting.starts_with(b"+OK"));
    assert!(send_cmd(client, "USER alice").starts_with("+OK"));
    assert!(send_cmd(client, "PASS wonderland").starts_with("+OK"));
    assert_eq!(send_cmd(client, "STAT"), "+OK 2 messages");
    assert!(send_cmd(client, "QUIT").starts_with("+OK"));
}

/// The crash-recovery accounting story, end to end: kill a shard that is
/// serving one link and holding three more, with the supervisor enabled.
/// The queued links re-route, the in-flight link finishes, the shard
/// rejoins the ring, post-restart links land on it again, and
/// `submitted == completed + rejected` throughout.
#[test]
fn supervisor_recovers_a_shard_killed_mid_batch() {
    let server = ShardedPop3::new(
        &MailDb::sample(),
        ShardedPop3Config {
            shards: 2,
            queue_capacity: 8,
            policy: AcceptPolicy::SessionAffinity,
            supervisor: Some(quick_supervisor()),
            ..ShardedPop3Config::default()
        },
    )
    .expect("sharded pop3");
    let to_zero = affinity_key(0, 2);

    // The held connection: reads the greeting, then thinks long enough
    // for us to queue work behind it and kill the shard under it.
    let (held_client_link, held_server_link) = duplex_pair("held-client", "held-server");
    let held_client = std::thread::spawn(move || {
        let greeting = held_client_link
            .recv(RecvTimeout::After(Duration::from_secs(10)))
            .unwrap();
        assert!(greeting.starts_with(b"+OK"));
        std::thread::sleep(Duration::from_millis(300));
        assert!(send_cmd(&held_client_link, "USER alice").starts_with("+OK"));
        assert!(send_cmd(&held_client_link, "PASS wonderland").starts_with("+OK"));
        assert!(send_cmd(&held_client_link, "QUIT").starts_with("+OK"));
    });
    let held = server
        .serve_with_key(held_server_link, to_zero)
        .expect("submit held");

    // Wait until shard 0 is actually *serving* the held link (its client
    // handler sthread exists), so the next submissions queue behind it.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.shard_stats()[0].kernel.sthreads_created == 0 {
        assert!(Instant::now() < deadline, "shard 0 never started serving");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Three more links, all pinned to the doomed shard.
    let mut queued_clients = Vec::new();
    let mut queued = Vec::new();
    for _ in 0..3 {
        let (client_link, server_link) = duplex_pair("queued-client", "queued-server");
        queued_clients.push(std::thread::spawn(move || run_pop3_session(&client_link)));
        queued.push(
            server
                .serve_with_key(server_link, to_zero)
                .expect("submit queued"),
        );
    }

    // Kill the shard under the batch: queued links must move, loudly.
    let kill = server.kill_shard(0);
    assert_eq!(
        kill.rerouted, 3,
        "every queued link moves to the live shard"
    );
    assert_eq!(kill.failed, 0);

    // The re-routed links serve on shard 1; the in-flight one finishes on
    // shard 0 even while the supervisor is respawning it.
    for handle in queued {
        let report = handle.join().expect("re-routed connection served");
        assert!(report.stats.logged_in);
        assert_eq!(report.shard, 1, "re-routed links must serve on shard 1");
    }
    let held_report = held.join().expect("held connection served");
    assert!(held_report.stats.logged_in);
    assert_eq!(
        held_report.shard, 0,
        "the in-flight link finishes where it started"
    );
    held_client.join().expect("held client");
    for client in queued_clients {
        client.join().expect("queued client");
    }

    // The supervisor revives the shard — it rejoins the ring with its old
    // index.
    assert!(
        server.await_healthy(0, Duration::from_secs(10)),
        "supervisor must revive shard 0"
    );
    // The restart counter is bumped just after the health flip; poll
    // briefly rather than asserting both atomically.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.restart_stats().expect("supervised").restarts == 0 {
        assert!(Instant::now() < deadline, "restart never counted");
        std::thread::sleep(Duration::from_millis(1));
    }
    let restart = server.restart_stats().expect("supervised");
    assert_eq!(restart.restarts, 1);
    assert_eq!(restart.storms, 0);
    assert!(restart.last_restart_latency() > Duration::ZERO);
    assert_eq!(server.shard_stats()[0].restarts, 1);

    // Post-restart, links with the shard-0 affinity key land on it again.
    let (client_link, server_link) = duplex_pair("home-client", "home-server");
    let home_client = std::thread::spawn(move || run_pop3_session(&client_link));
    let report = server
        .serve_with_key(server_link, to_zero)
        .expect("post-restart submit")
        .join()
        .expect("post-restart serve");
    assert_eq!(report.shard, 0, "affinity keys come home after the restart");
    home_client.join().expect("home client");

    // Aggregate accounting balances across kill, re-route and restart.
    let stats = server.sched_stats();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.stolen, 3, "the three re-routes are visible");
    assert_eq!(
        stats.submitted,
        stats.completed + stats.rejected,
        "every offered link resolves exactly once"
    );
}

/// Deterministic session-affinity fallback: with the hashed shard dead,
/// every connection carrying its key rendezvouses on the next healthy
/// shard — TLS resumption follows it there (shared cache), and the
/// cache's hit rate stays observable throughout. After a restart the key
/// maps home again.
#[test]
fn affinity_fallback_is_deterministic_and_keeps_resumption_observable() {
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(17));
    let server = ConcurrentApache::new(
        keypair,
        PageStore::sample(),
        ConcurrentApacheConfig {
            shards: 3,
            policy: AcceptPolicy::SessionAffinity,
            ..ConcurrentApacheConfig::default()
        },
    )
    .expect("sharded apache");
    let to_zero = affinity_key(0, 3);
    let public_key = server.public_key();
    let mut client = TlsClient::new(public_key, WedgeRng::from_seed(700));

    let run_connection = |client: &mut TlsClient| {
        let (client_link, server_link) = duplex_pair("roaming", "server");
        let handle = server.serve_with_key(server_link, to_zero).expect("submit");
        let conn = client.connect(&client_link).expect("handshake");
        drop(client_link);
        (conn, handle.join().expect("serve"))
    };

    // Full handshake on the hashed home shard.
    let (first_conn, first_report) = run_connection(&mut client);
    assert_eq!(first_report.shard, 0);
    assert!(!first_conn.resumed);

    // Home shard dies: the very same key must deterministically fall over
    // to the next healthy shard in ring order — shard 1 — and *resume*
    // there via the shared cache. Nothing counts as stolen: the fallback
    // is the policy's first choice while shard 0 is dead.
    server.kill_shard(0);
    for _ in 0..3 {
        let (conn, report) = run_connection(&mut client);
        assert_eq!(report.shard, 1, "fallback must be deterministic");
        assert!(conn.resumed, "resumption survives the fallback");
    }
    assert_eq!(server.sched_stats().stolen, 0);

    // The resumption health signal is observable: three lookups, all
    // hits.
    let cache = server.session_cache();
    assert_eq!(cache.stats(), (3, 0));
    assert_eq!(cache.hit_rate(), Some(1.0));

    // Manual restart (unsupervised front): the key comes home and still
    // resumes.
    server.restart_shard(0).expect("restart");
    let (conn, report) = run_connection(&mut client);
    assert_eq!(report.shard, 0, "restarted shard is home again");
    assert!(conn.resumed);
    assert_eq!(cache.hit_rate(), Some(1.0));
}

/// Drive many POP3 connections through the full stack — listener accept
/// loop, source-affinity placement, supervised shards — while one shard
/// is killed and auto-restarted mid-traffic. Zero links may be silently
/// dropped: every accepted connection must resolve, and here (no
/// admission limit) every one must actually serve.
fn listener_traffic_through_a_crash(connections: usize) {
    const SHARDS: usize = 4;
    const KILLED: usize = 1;
    let server = Arc::new(
        ShardedPop3::new(
            &MailDb::sample(),
            ShardedPop3Config {
                shards: SHARDS,
                queue_capacity: connections.max(64),
                policy: AcceptPolicy::SessionAffinity,
                supervisor: Some(quick_supervisor()),
                ..ShardedPop3Config::default()
            },
        )
        .expect("sharded pop3"),
    );
    let listener = Listener::bind("pop3", connections.max(64));

    // The accept loop runs until the listener closes.
    let serve = {
        let server = server.clone();
        let listener = listener.clone();
        std::thread::spawn(move || server.serve_listener(&listener, 16))
    };

    let spawn_client = |source: SourceAddr| -> std::thread::JoinHandle<()> {
        let link = listener.connect(source).expect("connect");
        std::thread::spawn(move || run_pop3_session(&link))
    };
    let host = |n: usize| SourceAddr::new([10, 1, (n >> 8) as u8, (n & 0xFF) as u8], 40_000);
    // Hosts whose source-affinity key hashes to the shard we will kill —
    // the deterministic probe that the revived shard serves again.
    let mut homing_hosts = (0..u16::MAX as usize)
        .map(|n| host(100_000 + n))
        .filter(|s| wedge::sched::shard_for_key(s.affinity_key(), SHARDS) == KILLED);
    let homing = 8.min(connections / 4);

    // First wave lands, then the kill hits mid-traffic.
    let first_wave: Vec<_> = (0..connections / 2)
        .map(|n| spawn_client(host(n)))
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.sched_stats().completed < (connections / 8) as u64 {
        assert!(Instant::now() < deadline, "first wave never progressed");
        std::thread::sleep(Duration::from_millis(1));
    }
    let kill = server.kill_shard(KILLED);
    assert_eq!(kill.failed, 0, "no queued link may be shed");

    // The supervisor brings the shard back while traffic continues.
    assert!(
        server.await_healthy(KILLED, Duration::from_secs(30)),
        "supervisor must revive shard {KILLED}"
    );
    let served_by_killed_before = server.shard_stats()[KILLED].sched.completed;

    // Second wave, ending with connections that deterministically hash
    // home to the revived shard.
    let second_wave: Vec<_> = (connections / 2..connections - homing)
        .map(|n| spawn_client(host(n)))
        .chain((0..homing).map(|_| spawn_client(homing_hosts.next().expect("homing host"))))
        .collect();
    for client in first_wave.into_iter().chain(second_wave) {
        client.join().expect("client session");
    }
    listener.close();
    let outcomes = serve.join().expect("accept loop");

    // Zero silently dropped links: every accepted connection resolved,
    // and with no admission limit every one served and logged in.
    assert_eq!(outcomes.len(), connections);
    for outcome in outcomes {
        let report = outcome.expect("connection served through the crash");
        assert!(report.stats.logged_in);
    }
    assert!(
        server.shard_stats()[KILLED].sched.completed >= served_by_killed_before + homing as u64,
        "the revived shard must serve the links that hash home to it"
    );

    let stats = server.sched_stats();
    assert_eq!(
        stats.submitted,
        stats.completed + stats.rejected,
        "every offer resolves exactly once"
    );
    assert_eq!(stats.completed, connections as u64);
    let restart = server.restart_stats().expect("supervised");
    assert!(restart.restarts >= 1);
    assert_eq!(restart.storms, 0);
    assert_eq!(listener.stats().accepted, connections as u64);
    assert_eq!(listener.stats().refused, 0);
}

/// The ISSUE acceptance criterion, release-mode: ≥200 connections through
/// the listener across a kill + auto-restart, zero dropped links.
#[cfg(not(debug_assertions))]
#[test]
fn two_hundred_connections_survive_a_shard_crash_and_restart() {
    listener_traffic_through_a_crash(220);
}

/// Debug-build variant of the same scenario, small enough for plain
/// `cargo test`.
#[cfg(debug_assertions)]
#[test]
fn listener_traffic_survives_a_shard_crash_and_restart() {
    listener_traffic_through_a_crash(48);
}
