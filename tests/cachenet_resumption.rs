//! Integration tests for the distributed session-cache protocol: TLS
//! resumption across *machines* (independent sharded front-ends that
//! share nothing but a cache ring), cache-node failure with miss-through,
//! epoch invalidation after a node restart, and the release-mode
//! acceptance run with a node killed mid-traffic and zero hung links.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wedge::apache::partitioned::ConnectionReport;
use wedge::apache::{ConcurrentApache, ConcurrentApacheConfig, PageStore};
use wedge::cachenet::{CacheNode, CacheNodeConfig, CacheRing, CacheRingConfig};
use wedge::crypto::{RsaKeyPair, WedgeRng};
use wedge::net::{duplex_pair, SourceAddr};
use wedge::tls::TlsClient;

/// Spin up a 3-node cache ring's server side.
fn cache_nodes() -> Vec<CacheNode> {
    (0..3)
        .map(|n| CacheNode::spawn(CacheNodeConfig::named(&format!("cache-{n}"))))
        .collect()
}

/// A ring client for one machine, quick enough for tests: short bounded
/// op timeout, circuit opens on the first failure.
fn ring_for(nodes: &[CacheNode], machine: u8) -> Arc<CacheRing> {
    Arc::new(CacheRing::new(
        nodes.iter().map(CacheNode::endpoint).collect(),
        CacheRingConfig {
            source: SourceAddr::new([10, 50, 0, machine], 45_000),
            op_timeout: Duration::from_millis(200),
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(100),
            local_capacity: 256,
            ..CacheRingConfig::default()
        },
    ))
}

/// One "machine": an independent sharded HTTPS front-end whose shards
/// consult `ring` instead of a process-local cache.
fn machine(keypair: RsaKeyPair, ring: Arc<CacheRing>) -> ConcurrentApache {
    ConcurrentApache::with_session_store(
        keypair,
        PageStore::sample(),
        ConcurrentApacheConfig {
            shards: 2,
            queue_capacity: 16,
            ..ConcurrentApacheConfig::default()
        },
        ring,
    )
    .expect("machine front-end")
}

/// Drive one connection through `front`: handshake, then hang up.
fn run_connection(front: &ConcurrentApache, client: &mut TlsClient) -> (bool, ConnectionReport) {
    let (client_link, server_link) = duplex_pair("roaming-client", "server");
    let handle = front.serve(server_link).expect("submit");
    let conn = client.connect(&client_link).expect("handshake");
    drop(client_link);
    let report = handle.join().expect("serve");
    assert!(report.handshake_ok, "handshake must complete");
    assert_eq!(
        report.key_fingerprint,
        conn.keys.fingerprint(),
        "client and server must derive identical keys"
    );
    (conn.resumed, report)
}

/// The tentpole story: a session established through machine A resumes
/// with the **abbreviated handshake** through machine B — two fully
/// independent front-ends (own kernels, own shards, own acceptors) that
/// share nothing but the cache ring.
#[test]
fn session_established_on_machine_a_resumes_on_machine_b() {
    let nodes = cache_nodes();
    let ring_a = ring_for(&nodes, 1);
    let ring_b = ring_for(&nodes, 2);
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(77));
    let machine_a = machine(keypair, ring_a.clone());
    let machine_b = machine(keypair, ring_b.clone());

    let mut client = TlsClient::new(machine_a.public_key(), WedgeRng::from_seed(700));

    // Full handshake through machine A.
    let (resumed, _report) = run_connection(&machine_a, &mut client);
    assert!(!resumed, "first contact is a full handshake");
    assert_eq!(
        ring_a.stats().write_throughs,
        1,
        "the premaster was written through to a cache node"
    );
    let resident: usize = nodes.iter().map(CacheNode::len).sum();
    assert_eq!(resident, 1, "exactly one node owns the session");

    // Abbreviated handshake through machine B — which never saw the
    // original handshake and shares no memory with machine A.
    let (resumed, _report) = run_connection(&machine_b, &mut client);
    assert!(resumed, "machine B must resume via the cache ring");
    assert_eq!(ring_b.stats().remote_hits, 1);
    assert_eq!(
        machine_b.resumption_hit_rate(),
        Some(1.0),
        "the front-end exposes the ring's resumption health"
    );
    // Machine A's ring never looked anything up (fresh handshake only).
    assert_eq!(machine_a.resumption_hit_rate(), None);
}

/// Kill the cache node that owns a session: the next reconnect pays a
/// bounded miss (full handshake — never a hang), the key re-routes to a
/// surviving node, and the session after that resumes again.
#[test]
fn node_death_degrades_to_full_handshake_then_recovers() {
    let nodes = cache_nodes();
    let ring_a = ring_for(&nodes, 1);
    let ring_b = ring_for(&nodes, 2);
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(78));
    let machine_a = machine(keypair, ring_a.clone());
    let machine_b = machine(keypair, ring_b);

    let mut client = TlsClient::new(machine_a.public_key(), WedgeRng::from_seed(800));
    let (_, _) = run_connection(&machine_a, &mut client);
    let session_id = client.cached_session.as_ref().expect("cached").0;
    let owner = ring_a.route_of(&session_id).expect("routed");
    nodes[owner].kill();

    // Machine B's lookup fails over (bounded) and misses: full handshake,
    // no hang, and the *new* session write-through lands on a survivor.
    let started = Instant::now();
    let (resumed, _report) = run_connection(&machine_b, &mut client);
    assert!(!resumed, "owner dead, B local tier cold: full handshake");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "node death must never hang the handshake path"
    );

    // The replacement session resumes — through B's warmed tiers or the
    // surviving owner-by-rendezvous.
    let (resumed, _report) = run_connection(&machine_b, &mut client);
    assert!(
        resumed,
        "the ring must recover after one degraded handshake"
    );
    let survivors: usize = nodes
        .iter()
        .enumerate()
        .filter(|(idx, _)| *idx != owner)
        .map(|(_, node)| node.len())
        .sum();
    assert!(survivors >= 1, "the key re-routed to a surviving node");
}

/// Epoch invalidation: a cache node that comes back from a restart with
/// pre-restart entries must *invalidate* them on first touch, not serve
/// them — the reconnect sees a clean miss and a full handshake.
#[test]
fn restarted_node_invalidates_stale_entries_instead_of_serving_them() {
    let nodes = cache_nodes();
    let ring_a = ring_for(&nodes, 1);
    let ring_b = ring_for(&nodes, 2);
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(79));
    let machine_a = machine(keypair, ring_a.clone());
    let machine_b = machine(keypair, ring_b.clone());

    let mut client = TlsClient::new(machine_a.public_key(), WedgeRng::from_seed(900));
    let (_, _) = run_connection(&machine_a, &mut client);
    let session_id = client.cached_session.as_ref().expect("cached").0;
    let owner = ring_a.route_of(&session_id).expect("routed");
    assert_eq!(nodes[owner].len(), 1, "owner holds the session");

    // Restart the owner: epoch 1 → 2, the entry physically survives.
    nodes[owner].kill();
    nodes[owner].restart();
    assert_eq!(nodes[owner].epoch(), 2);
    assert_eq!(nodes[owner].len(), 1, "stale entry still resident");

    // Machine B routes to the restarted owner, which refuses to serve
    // the stale premaster: miss, invalidation, full handshake.
    let (resumed, _report) = run_connection(&machine_b, &mut client);
    assert!(!resumed, "a stale pre-restart entry must never be served");
    let owner_stats = nodes[owner].stats();
    assert_eq!(
        owner_stats.stale_invalidated, 1,
        "the stale entry was invalidated on first touch"
    );
    assert!(
        ring_b.stats().remote_misses >= 1,
        "B observed the miss, not an error"
    );
    // The fresh session (inserted under epoch 2) resumes normally.
    let (resumed, _report) = run_connection(&machine_b, &mut client);
    assert!(resumed, "post-restart sessions serve normally");
}

/// The acceptance run: `sessions` clients handshake through machine A
/// and then resume through machine B while one cache node is killed
/// mid-run. Every connection on both machines must resolve (zero hung or
/// silently dropped links), the accounting must balance, and resumption
/// must keep working for sessions whose owner survived.
fn cross_machine_traffic_with_node_kill(sessions: usize) {
    let nodes = cache_nodes();
    let ring_a = ring_for(&nodes, 1);
    let ring_b = ring_for(&nodes, 2);
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(80));
    let machine_a = machine(keypair, ring_a.clone());
    let machine_b = machine(keypair, ring_b.clone());

    // Phase 1: full handshakes through machine A.
    let mut clients: Vec<TlsClient> = (0..sessions)
        .map(|i| {
            TlsClient::new(
                machine_a.public_key(),
                WedgeRng::from_seed(1_000 + i as u64),
            )
        })
        .collect();
    for client in &mut clients {
        let (resumed, _) = run_connection(&machine_a, client);
        assert!(!resumed);
    }
    let resident: usize = nodes.iter().map(CacheNode::len).sum();
    assert_eq!(resident, sessions, "every session written through");

    // Phase 2: resume through machine B, killing cache node 0 mid-run.
    let mut resumed_count = 0usize;
    let mut full_count = 0usize;
    let kill_at = sessions / 2;
    for (i, client) in clients.iter_mut().enumerate() {
        if i == kill_at {
            nodes[0].kill();
        }
        let started = Instant::now();
        let (resumed, _report) = run_connection(&machine_b, client);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "no handshake may hang on the dead cache node"
        );
        if resumed {
            resumed_count += 1;
        } else {
            full_count += 1;
        }
    }
    assert_eq!(resumed_count + full_count, sessions, "every link resolved");
    assert!(
        resumed_count > 0,
        "sessions owned by surviving nodes must keep resuming"
    );

    // Zero silently dropped links on either machine: every submission
    // completed (none rejected, none unaccounted).
    for (name, front) in [("A", &machine_a), ("B", &machine_b)] {
        let stats = front.sched_stats();
        assert_eq!(stats.submitted, sessions as u64, "machine {name}");
        assert_eq!(stats.completed, sessions as u64, "machine {name}");
        assert_eq!(stats.rejected, 0, "machine {name}");
    }
    // The kill is visible in the ring's failure accounting (bounded
    // failures, then the breaker short-circuits the dead node).
    if kill_at < sessions {
        let stats = ring_b.stats();
        assert!(
            stats.failures >= 1 || nodes[0].is_empty(),
            "a mid-run kill surfaces as ring failures: {stats:?}"
        );
    }
}

/// The ISSUE acceptance criterion, release-mode: a 60-session
/// cross-machine run over a 3-node ring with a cache node killed
/// mid-run, zero hung or dropped links.
#[cfg(not(debug_assertions))]
#[test]
fn sixty_sessions_resume_cross_machine_through_a_node_kill() {
    cross_machine_traffic_with_node_kill(60);
}

/// Debug-build variant of the same scenario, small enough for plain
/// `cargo test`.
#[cfg(debug_assertions)]
#[test]
fn cross_machine_traffic_survives_a_node_kill() {
    cross_machine_traffic_with_node_kill(12);
}
