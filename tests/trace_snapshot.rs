//! The tracing acceptance run: one `Tracer` on one `Telemetry` registry
//! observes a full request path — listener accept, shard queue + serve,
//! kernel op-log applies, the TLS handshake, and the cachenet
//! write-through to a remote cache node — and at least one retained
//! trace must carry causally-linked spans from **every** one of those
//! layers, with its sequential phases summing to within the trace
//! total.
//!
//! The retained traces are also written as JSON to
//! `TRACES_snapshot.json` (override with `WEDGE_TRACES_JSON`), the
//! flight-recorder artifact CI uploads next to `TELEMETRY_snapshot.json`
//! and the `BENCH_*.json` files.

use std::sync::Arc;
use std::time::Duration;

use wedge::apache::{ConcurrentApache, ConcurrentApacheConfig, PageStore};
use wedge::cachenet::{CacheNode, CacheNodeConfig, CacheRing, CacheRingConfig};
use wedge::crypto::{RsaKeyPair, WedgeRng};
use wedge::net::{Listener, SourceAddr};
use wedge::telemetry::{SpanKind, Telemetry, Tracer, TracerConfig};
use wedge::tls::TlsClient;

const SESSIONS: usize = 8;

/// Where the JSON artifact goes: `WEDGE_TRACES_JSON`, defaulting to
/// `TRACES_snapshot.json` at the workspace root.
fn artifact_path() -> String {
    std::env::var("WEDGE_TRACES_JSON")
        .unwrap_or_else(|_| format!("{}/TRACES_snapshot.json", env!("CARGO_MANIFEST_DIR")))
}

#[test]
fn one_retained_trace_spans_every_layer() {
    let telemetry = Telemetry::new();
    // Zero total-SLO: every completed trace is "slow", so the tail
    // sampler retains everything this run produces (up to capacity) and
    // the test never races the latency of a loaded CI machine.
    let tracer = Tracer::new(TracerConfig {
        slo_total: Duration::ZERO,
        retain_capacity: 2 * SESSIONS,
        ..TracerConfig::default()
    });
    telemetry.install_tracer(tracer.clone());

    // The second "machine" of the ring: cache nodes serving over the
    // wire protocol, instrumented on the same registry so their
    // server-side spans land in the same tracer the edge machine uses.
    let nodes: Vec<CacheNode> = (0..2)
        .map(|n| CacheNode::spawn(CacheNodeConfig::named(&format!("trace-cache-{n}"))))
        .collect();
    for node in &nodes {
        node.instrument(&telemetry);
    }
    let ring = Arc::new(CacheRing::new(
        nodes.iter().map(CacheNode::endpoint).collect(),
        CacheRingConfig {
            source: SourceAddr::new([10, 90, 0, 1], 45_000),
            op_timeout: Duration::from_millis(500),
            ..CacheRingConfig::default()
        },
    ));
    ring.instrument(&telemetry);

    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(0x7ace));
    let machine = Arc::new(
        ConcurrentApache::with_session_store(
            keypair,
            PageStore::sample(),
            ConcurrentApacheConfig {
                shards: 2,
                ..ConcurrentApacheConfig::default()
            },
            ring,
        )
        .expect("machine front-end"),
    );
    machine.instrument(&telemetry);

    // Roots are minted at accept, so every connection through the
    // listener becomes one causal trace.
    let listener = Listener::bind("trace-edge", SESSIONS);
    listener.instrument(&telemetry);
    let serve = {
        let machine = machine.clone();
        let listener = listener.clone();
        std::thread::spawn(move || machine.serve_listener(&listener, 4))
    };
    for i in 0..SESSIONS {
        let mut client =
            TlsClient::new(machine.public_key(), WedgeRng::from_seed(9_000 + i as u64));
        let source = SourceAddr::new([10, 91, 0, i as u8], 40_000 + i as u16);
        let link = listener.connect(source).expect("connect");
        let conn = client.connect(&link).expect("handshake");
        assert!(!conn.resumed, "first contact is a full handshake");
    }
    listener.close();
    let outcomes = serve.join().expect("accept loop");
    assert_eq!(outcomes.len(), SESSIONS);

    // --- the registry-level trace counters moved.
    let snapshot = telemetry.snapshot();
    assert!(snapshot.counter("trace.started") >= SESSIONS as u64);
    assert!(snapshot.counter("trace.retained") >= 1);
    let serve_spans = snapshot.histogram("trace.serve").expect("serve spans");
    assert!(serve_spans.count >= SESSIONS as u64);

    // --- at least one retained trace crosses every layer: accept →
    // queue → serve on the edge machine, op-log applies in the kernel,
    // the handshake, and a cachenet round trip whose server half joined
    // over the wire extension.
    let retained = tracer.retained();
    assert!(!retained.is_empty(), "the tail sampler retained traces");
    let full = retained
        .iter()
        .find(|t| {
            [
                SpanKind::Accept,
                SpanKind::Queue,
                SpanKind::Serve,
                SpanKind::Handshake,
                SpanKind::KernelApply,
                SpanKind::Cachenet,
                SpanKind::CachenetServe,
            ]
            .iter()
            .all(|&k| t.spans.iter().any(|s| s.kind == k))
        })
        .expect("one trace spanning accept → serve → kernel → cachenet → remote node");
    assert_eq!(full.reason, "slow", "zero SLO promotes every trace");

    // Causality across the wire: the node's server span is parented on
    // the ring client span whose frame carried the trace extension.
    let client_span = full
        .spans
        .iter()
        .find(|s| s.kind == SpanKind::Cachenet)
        .expect("ring client span");
    assert!(
        full.spans
            .iter()
            .any(|s| s.kind == SpanKind::CachenetServe && s.parent_id == client_span.span_id),
        "the remote serve span hangs under the ring client span"
    );

    // The sequential request phases partition the root: their durations
    // sum to within the trace total. (Handshake, kernel and cachenet
    // spans nest *inside* serve, so they are excluded from the sum.)
    let sequential = full.phase_ns(SpanKind::Accept)
        + full.phase_ns(SpanKind::Queue)
        + full.phase_ns(SpanKind::Serve);
    assert!(
        sequential <= full.total_ns,
        "accept + queue + serve ({sequential} ns) exceed the trace total ({} ns)",
        full.total_ns
    );
    assert!(full.phase_ns(SpanKind::Serve) > 0, "serve took real time");
    // And every span of the trace belongs to it.
    assert!(full.spans.iter().all(|s| s.trace_id == full.trace_id));

    // --- export: the CI artifact, and a sanity pass over the JSON shape.
    let json = tracer.to_json();
    assert!(json.starts_with(r#"{"traces":{"retained":"#));
    assert!(json.contains(r#""kind":"cachenet.serve""#));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    let path = artifact_path();
    std::fs::write(&path, format!("{json}\n")).expect("write traces artifact");
    println!("wrote {path}");
}
