//! Snapshot artifacts are strict JSON: a hand-rolled recursive-descent
//! reader (no dependency, so the check cannot share a bug with the
//! writer) parses `TELEMETRY_snapshot.json` and `TRACES_snapshot.json`
//! shapes end to end — balanced structure, legal string escapes, finite
//! numbers (no `NaN`/`Infinity`, which `JsonWriter` must never emit),
//! no trailing commas, nothing after the root value.
//!
//! The test validates freshly generated snapshots in-process, and any
//! artifact files already on disk at the workspace root (as left by the
//! snapshot tests or a bench run).

use std::sync::Arc;
use std::time::Duration;

use wedge::telemetry::{SpanKind, Telemetry, Tracer, TracerConfig};

// ---------------------------------------------------------------------
// The strict reader.
// ---------------------------------------------------------------------

struct Json<'a> {
    bytes: &'a [u8],
    at: usize,
}

type Verdict = Result<(), String>;

impl<'a> Json<'a> {
    /// Validate `text` as exactly one JSON value with nothing after it.
    fn validate(text: &'a str) -> Verdict {
        let mut p = Json {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.ws();
        p.value()?;
        p.ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.at));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.at += 1;
        Ok(b)
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Verdict {
        let got = self.bump()?;
        if got != want {
            return Err(format!(
                "expected {:?} at byte {}, got {:?}",
                want as char,
                self.at - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn value(&mut self) -> Verdict {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.literal("true"),
            b'f' => self.literal("false"),
            b'n' => self.literal("null"),
            b'-' | b'0'..=b'9' => self.number(),
            // The IEEE spellings JSON forbids, caught by name so the
            // error says what the writer actually leaked.
            b'N' => Err("bare NaN is not JSON".to_string()),
            b'I' => Err("bare Infinity is not JSON".to_string()),
            other => Err(format!("unexpected byte {:?}", other as char)),
        }
    }

    fn literal(&mut self, word: &str) -> Verdict {
        for want in word.bytes() {
            self.expect(want)?;
        }
        Ok(())
    }

    fn object(&mut self) -> Verdict {
        self.expect(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?; // keys are strings, always
            self.ws();
            self.expect(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.bump()? {
                b',' => continue, // a `}` next is a trailing comma → key error
                b'}' => return Ok(()),
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
    }

    fn array(&mut self) -> Verdict {
        self.expect(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(()),
                other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
            }
        }
    }

    fn string(&mut self) -> Verdict {
        self.expect(b'"')?;
        loop {
            match self.bump()? {
                b'"' => return Ok(()),
                b'\\' => match self.bump()? {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                    b'u' => {
                        for _ in 0..4 {
                            if !self.bump()?.is_ascii_hexdigit() {
                                return Err("bad \\u escape".to_string());
                            }
                        }
                    }
                    other => return Err(format!("illegal escape \\{}", other as char)),
                },
                // Control characters must be escaped, never raw.
                b if b < 0x20 => return Err(format!("raw control byte 0x{b:02x} in string")),
                _ => {}
            }
        }
    }

    fn number(&mut self) -> Verdict {
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        // Integer part: a lone 0, or a nonzero-led digit run.
        match self.bump()? {
            b'0' => {
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err("leading zero".to_string());
                }
            }
            b'1'..=b'9' => self.digits(),
            other => return Err(format!("expected digit, got {:?}", other as char)),
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err("digit required after '.'".to_string());
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err("digit required in exponent".to_string());
            }
            self.digits();
        }
        Ok(())
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
    }
}

fn assert_valid(what: &str, text: &str) {
    if let Err(err) = Json::validate(text) {
        panic!("{what} is not strict JSON: {err}\n---\n{text}");
    }
}

// ---------------------------------------------------------------------
// The reader itself is strict.
// ---------------------------------------------------------------------

#[test]
fn the_reader_rejects_what_json_forbids() {
    for bad in [
        "",
        "{",
        "}",
        r#"{"a":1,}"#,
        r#"[1,2,]"#,
        r#"{"a" 1}"#,
        r#"{'a':1}"#,
        "NaN",
        r#"{"a":NaN}"#,
        r#"{"a":Infinity}"#,
        r#"{"a":-Infinity}"#,
        r#"{"a":01}"#,
        r#"{"a":1.}"#,
        r#"{"a":"\x41"}"#,
        r#"{"a":"\u12G4"}"#,
        "\u{7b}\"a\":\"\u{1}\"\u{7d}", // raw control byte in a string
        r#"{"a":1} {"b":2}"#,
        r#"{"a":1}]"#,
    ] {
        assert!(Json::validate(bad).is_err(), "accepted invalid: {bad}");
    }
    for good in [
        "{}",
        "[]",
        r#"{"a":[1,-2.5,3e-7],"b":{"c":"d\n\"eA"},"t":true,"n":null}"#,
        "  { \"a\" : 0 }  ",
    ] {
        Json::validate(good).unwrap_or_else(|e| panic!("rejected valid {good}: {e}"));
    }
}

// ---------------------------------------------------------------------
// Freshly generated snapshots parse.
// ---------------------------------------------------------------------

#[test]
fn telemetry_snapshot_json_is_strict() {
    let telemetry = Telemetry::new();
    telemetry.counter("test.hits").add(41);
    telemetry.gauge("test.depth").set_max(7);
    let histogram = telemetry.histogram("test.latency");
    for n in 1..=100u64 {
        histogram.record(n * 1_000);
    }
    // Names that exercise string escaping in keys.
    telemetry.counter("test.\"quoted\"\\slash").add(1);
    telemetry.counter("test.newline\nkey").add(1);
    assert_valid(
        "TelemetrySnapshot::to_json",
        &telemetry.snapshot().to_json(),
    );
}

#[test]
fn traces_snapshot_json_is_strict() {
    let tracer = Tracer::new(TracerConfig {
        slo_total: Duration::ZERO,
        ..TracerConfig::default()
    });
    // A small multi-span trace, plus one erroneous trace.
    for ok in [true, false] {
        let root = tracer.begin_root();
        let start = tracer.now_ns();
        let child = tracer.child_of(root);
        tracer.record(child, SpanKind::Serve, start, tracer.now_ns(), ok, 3);
        let remote = tracer.join_remote(root.trace_id, child.span_id);
        tracer.record(
            remote,
            SpanKind::CachenetServe,
            start,
            tracer.now_ns(),
            ok,
            0,
        );
        tracer.end_trace(root, start, tracer.now_ns(), ok, 0);
    }
    assert_eq!(tracer.retained_count(), 2);
    assert_valid("Tracer::to_json", &tracer.to_json());

    // Installing on a registry must not perturb the artifact shape.
    let telemetry = Telemetry::new();
    telemetry.install_tracer(Arc::clone(&tracer));
    assert_valid("installed Tracer::to_json", &tracer.to_json());
}

// ---------------------------------------------------------------------
// Artifacts already on disk parse too.
// ---------------------------------------------------------------------

#[test]
fn on_disk_artifacts_are_strict_json() {
    let root = env!("CARGO_MANIFEST_DIR");
    let mut checked = 0;
    for entry in std::fs::read_dir(root).expect("workspace root") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        let is_artifact = name.ends_with(".json")
            && (name.starts_with("TELEMETRY_")
                || name.starts_with("TRACES_")
                || name.starts_with("BENCH_"));
        if !is_artifact {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read artifact");
        assert_valid(name, &text);
        checked += 1;
    }
    println!("validated {checked} on-disk artifacts");
}
