//! End-to-end security properties of the OpenSSH case study (§5.2).

use wedge::core::{Exploit, Uid, Wedge};
use wedge::crypto::{RsaKeyPair, WedgeRng};
use wedge::net::duplex_pair;
use wedge::ssh::authdb::ServerConfig;
use wedge::ssh::privsep::{
    demonstrate_scratch_leak, monitor_lookup_user, probing_leak_exists, wedge_lookup_user,
};
use wedge::ssh::{AuthDb, SshClient, VanillaSsh, WedgeSsh};

fn wedged_server(seed: u64) -> WedgeSsh {
    WedgeSsh::new(
        Wedge::init(),
        RsaKeyPair::generate(&mut WedgeRng::from_seed(seed)),
        &AuthDb::sample(),
        &ServerConfig::default(),
    )
    .unwrap()
}

#[test]
fn monolithic_sshd_exploit_discloses_key_and_shadow_but_wedge_does_not() {
    // Baseline: everything readable.
    let vanilla = VanillaSsh::new(
        Wedge::init(),
        RsaKeyPair::generate(&mut WedgeRng::from_seed(1)),
        AuthDb::sample(),
        ServerConfig::default(),
    )
    .unwrap();
    let key = vanilla.key_buf();
    let shadow = vanilla.shadow_buf();
    let policy = vanilla.worker_policy();
    let (got_key, got_shadow) = vanilla
        .wedge()
        .root()
        .sthread_create("exploited-monolith", &policy, move |ctx| {
            let mut e = Exploit::seize(ctx);
            (e.try_read(&key).is_ok(), e.try_read(&shadow).is_ok())
        })
        .unwrap()
        .join()
        .unwrap();
    assert!(got_key && got_shadow);

    // Wedge partitioning: the worker reaches neither.
    let server = wedged_server(2);
    let key = server.host_key_buf();
    let shadow = server.shadow_buf();
    let policy = server.worker_policy();
    let (key_denied, shadow_denied) = server
        .wedge()
        .root()
        .sthread_create("exploited-worker", &policy, move |ctx| {
            let mut e = Exploit::seize(ctx);
            (e.try_read(&key).is_err(), e.try_read(&shadow).is_err())
        })
        .unwrap()
        .join()
        .unwrap();
    assert!(key_denied && shadow_denied);
}

#[test]
fn authentication_cannot_be_bypassed_by_an_exploited_worker() {
    let server = wedged_server(3);
    let (client_link, server_link) = duplex_pair("client", "sshd");
    let handle = server.serve_connection(server_link).unwrap();
    let mut client = SshClient::new();
    client.connect(&client_link).unwrap();

    // "Skipping" authentication by never invoking a callgate leaves the
    // worker at the unprivileged uid, so commands are refused.
    let refused = client.exec(&client_link, "echo give me a shell").unwrap();
    assert_eq!(refused, "permission denied");

    // A failed authentication leaves it unprivileged too.
    let (ok, uid, _) = client.auth_password(&client_link, "alice", "nope").unwrap();
    assert!(!ok);
    assert_eq!(uid, 0);
    let refused = client.exec(&client_link, "whoami").unwrap();
    assert_eq!(refused, "permission denied");

    // Only a successful callgate authentication escalates the worker.
    let (ok, uid, _) = client
        .auth_password(&client_link, "alice", "correct horse battery")
        .unwrap();
    assert!(ok);
    assert_eq!(uid, 1001);
    let whoami = client.exec(&client_link, "whoami").unwrap();
    assert!(whoami.contains("uid=1001"));
    assert!(whoami.contains("/home/alice"));

    client.disconnect(&client_link).unwrap();
    let report = handle.join().unwrap();
    assert!(report.authenticated);
    // The kernel's view agrees: the worker's uid was changed by the callgate.
    assert_ne!(report.uid, 0);
}

#[test]
fn worker_runs_unprivileged_with_an_empty_filesystem_root() {
    let server = wedged_server(4);
    let policy = server.worker_policy();
    assert_eq!(policy.uid, wedge::ssh::server::UNPRIVILEGED_UID);
    assert_eq!(policy.fs_root, "/var/empty");
    assert!(
        policy.mem_grants().is_empty(),
        "no credential store is directly granted"
    );
    assert_eq!(policy.callgate_grants().len(), 4);

    // And it cannot escalate itself.
    let escalated = server
        .wedge()
        .root()
        .sthread_create("worker", &policy, |ctx| {
            ctx.transition_identity(ctx.id(), Uid::ROOT, Some("/"))
                .is_ok()
        })
        .unwrap()
        .join()
        .unwrap();
    assert!(!escalated);
}

#[test]
fn username_probing_and_pam_scratch_lessons_hold() {
    let db = AuthDb::sample();
    let shadow = AuthDb::parse_shadow(&db.serialize_shadow());
    // Privilege-separated OpenSSH's monitor leaks username validity...
    assert!(probing_leak_exists(
        |user| monitor_lookup_user(&shadow, user),
        "alice",
        "mallory"
    ));
    // ...the Wedge password callgate does not.
    assert!(!probing_leak_exists(
        |user| Some(wedge_lookup_user(&shadow, user)),
        "alice",
        "mallory"
    ));

    // Fork-inherited scratch memory leaks; callgate-private scratch does not.
    let outcome = demonstrate_scratch_leak(&Wedge::init()).unwrap();
    assert!(outcome.forked_child_reads_scratch);
    assert!(!outcome.sthread_reads_callgate_scratch);
}

#[test]
fn host_key_is_used_only_through_the_signing_callgate() {
    let server = wedged_server(5);
    let (client_link, server_link) = duplex_pair("client", "sshd");
    let handle = server.serve_connection(server_link).unwrap();
    let mut client = SshClient::new();
    let hello = client.connect(&client_link).unwrap();
    // The host proof verifies against the advertised public key, so the
    // worker did obtain a signature — but only over a hash the callgate
    // computed, never the key itself.
    assert!(hello.host_proof_valid);
    assert_eq!(hello.host_key, server.host_public());
    client.disconnect(&client_link).unwrap();
    handle.join().unwrap();
}
