//! Reactor scale acceptance: one readiness-driven reactor sthread holds
//! a thousand registered idle links while the shards serve traffic on a
//! handful of active ones.
//!
//! This is the acceptance criterion for the deferred-accept serve loop:
//! before the reactor, every accepted link cost a queue slot (and
//! eventually a shard sthread) whether or not the client ever spoke, so
//! a sea of idle connections starved the active ones. With
//! `defer_accept` the accept loop parks each link on the front-end's
//! [`Reactor`] and only submits it to a shard once the client's first
//! byte (or hangup) arrives. The test floods a listener with idle
//! clients, drives real request/response traffic on a few active ones,
//! and asserts — via the `reactor.links` telemetry gauge — that the
//! idle crowd is all parked on the reactor, not occupying shard
//! capacity, while the scheduler's accounting balances
//! (`submitted == completed + rejected`) on every front.
//!
//! The release build runs the full 1,000-idle-link scale; the debug
//! variant scales down so plain `cargo test` stays fast.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use wedge::core::{KernelStats, WedgeError};
use wedge::net::{Duplex, Listener, RecvTimeout, SourceAddr};
use wedge::sched::{FrontEndConfig, ShardServer, ShardedFrontEnd};
use wedge::telemetry::Telemetry;

/// How one accepted link resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EchoReport {
    shard: usize,
    /// `true` when the client spoke and got its echo; `false` when the
    /// link reached the shard already hung up (an idle client leaving).
    echoed: bool,
}

/// The smallest possible shard server: echo one request, stamp the
/// shard. No kernel underneath — the test is about the *front-end's*
/// accept path, not the workers.
struct EchoServer {
    served: AtomicUsize,
}

impl ShardServer for EchoServer {
    type Report = EchoReport;

    fn serve_link(&self, shard: usize, link: Duplex) -> Result<EchoReport, WedgeError> {
        self.served.fetch_add(1, Ordering::SeqCst);
        match link.recv(RecvTimeout::After(Duration::from_secs(5))) {
            Ok(request) => {
                let mut reply = b"echo:".to_vec();
                reply.extend_from_slice(&request);
                let _ = link.send(&reply);
                Ok(EchoReport {
                    shard,
                    echoed: true,
                })
            }
            // The client hung up without speaking — still a resolved
            // link, never a hang.
            Err(_) => Ok(EchoReport {
                shard,
                echoed: false,
            }),
        }
    }

    fn kernel_stats(&self) -> KernelStats {
        KernelStats::default()
    }
}

/// The scenario at a given scale: `idle` clients that connect and say
/// nothing, `active` clients that run a request/response exchange while
/// the idle crowd sits parked.
fn reactor_holds_idle_links(idle: usize, active: usize) {
    let front = ShardedFrontEnd::new(
        FrontEndConfig {
            shards: 2,
            queue_capacity: 16,
            ..FrontEndConfig::default()
        },
        |_shard| {
            Ok(EchoServer {
                served: AtomicUsize::new(0),
            })
        },
    )
    .expect("front-end");
    let telemetry = Telemetry::new();
    front.instrument(&telemetry);

    let listener = Listener::bind("reactor-scale", idle + active + 8);

    std::thread::scope(|scope| {
        let pump = scope.spawn(|| front.serve_listener(&listener, 64));

        // The idle flood: connect, never speak, keep the link open.
        let mut idle_links: Vec<Duplex> = Vec::with_capacity(idle);
        for i in 0..idle {
            let addr = SourceAddr::new([10, 99, (i >> 8) as u8, i as u8], 40_000);
            idle_links.push(listener.connect(addr).expect("idle connect"));
        }

        // A handful of active clients doing real traffic through the
        // same listener, interleaved with the idle crowd.
        let mut clients = Vec::new();
        for i in 0..active {
            let addr = SourceAddr::new([10, 98, 0, i as u8], 41_000);
            let link = listener.connect(addr).expect("active connect");
            clients.push(scope.spawn(move || {
                link.send(format!("req-{i}").as_bytes()).expect("send");
                let reply = link
                    .recv(RecvTimeout::After(Duration::from_secs(10)))
                    .expect("reply");
                assert!(
                    reply.starts_with(b"echo:req-"),
                    "active client {i} got {reply:?}"
                );
            }));
        }
        for client in clients {
            client.join().expect("active client");
        }

        // Every active link completed while the idle crowd is still
        // parked: the reactor — one sthread — holds all of them, and
        // none occupies a shard queue slot.
        let deadline = Instant::now() + Duration::from_secs(10);
        while front.sched_stats().completed < active as u64 {
            assert!(Instant::now() < deadline, "active links never completed");
            std::thread::sleep(Duration::from_millis(2));
        }
        let snapshot = telemetry.snapshot();
        assert!(
            snapshot.counter("reactor.links") >= idle as u64,
            "the reactor must hold every idle link: {} < {idle}",
            snapshot.counter("reactor.links")
        );
        assert!(
            snapshot.counter("reactor.wakeups") >= 1,
            "active traffic must have woken the reactor"
        );
        let mid = front.sched_stats();
        assert_eq!(mid.completed, active as u64);
        assert_eq!(
            mid.submitted,
            mid.completed + mid.rejected,
            "accounting must balance while idle links are parked"
        );

        // Hang up the idle crowd and close the listener: every parked
        // link must resolve (close readiness fires, the shard sees the
        // hangup) — zero links silently dropped.
        drop(idle_links);
        listener.close();
        let outcomes = pump.join().expect("serve_listener");
        assert_eq!(
            outcomes.len(),
            idle + active,
            "every accepted link resolves"
        );
        let mut echoed = 0usize;
        for outcome in outcomes {
            if outcome.expect("resolved").echoed {
                echoed += 1;
            }
        }
        assert_eq!(echoed, active, "exactly the active links exchanged data");
    });

    let stats = front.sched_stats();
    assert_eq!(stats.completed, (idle + active) as u64);
    assert_eq!(
        stats.submitted,
        stats.completed + stats.rejected,
        "final accounting must balance: {stats:?}"
    );
}

/// The ISSUE acceptance criterion, release-mode: one reactor sthread
/// holds ≥ 1,000 registered idle links while traffic is served on a
/// handful of active ones.
#[cfg(not(debug_assertions))]
#[test]
fn one_reactor_sthread_holds_a_thousand_idle_links() {
    reactor_holds_idle_links(1_000, 8);
}

/// Debug-build variant of the same scenario, small enough for plain
/// `cargo test`.
#[cfg(debug_assertions)]
#[test]
fn reactor_parks_idle_links_off_the_shards() {
    reactor_holds_idle_links(200, 8);
}
