//! End-to-end security properties of the Apache/OpenSSL case study (§5.1):
//! what an exploit can and cannot reach under each partitioning, and what a
//! man-in-the-middle attacker gains in combination with an exploit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use wedge::apache::attacks::{decrypt_observed_client_records, plaintexts_contain};
use wedge::apache::{ApacheConfig, PageStore, SimpleApache, VanillaApache, WedgeApache};
use wedge::core::{Exploit, Wedge};
use wedge::crypto::{RsaKeyPair, WedgeRng};
use wedge::net::{duplex_pair, Mitm};
use wedge::tls::TlsClient;

fn keypair(seed: u64) -> RsaKeyPair {
    RsaKeyPair::generate(&mut WedgeRng::from_seed(seed))
}

#[test]
fn vanilla_apache_exploit_discloses_the_private_key() {
    let server = VanillaApache::new(Wedge::init(), keypair(1), PageStore::sample()).unwrap();
    let key_buf = server.key_buf();
    let policy = server.worker_policy();
    let leaked = server
        .wedge()
        .root()
        .sthread_create("exploited-monolith", &policy, move |ctx| {
            let mut exploit = Exploit::seize(ctx);
            let _ = exploit.try_read(&key_buf);
            exploit.loot_contains(b"RSA-PRIVATE-KEY")
        })
        .unwrap()
        .join()
        .unwrap();
    assert!(
        leaked,
        "the monolithic server's worker holds the private key"
    );
}

#[test]
fn simple_partitioning_protects_the_private_key_but_leaks_the_session_key() {
    let server = SimpleApache::new(Wedge::init(), keypair(2), PageStore::sample()).unwrap();
    let key_buf = server.key_buf();
    let policy = server.worker_policy();
    // Exploited worker: no path to the private key.
    let key_denied = server
        .wedge()
        .root()
        .sthread_create("exploited-worker", &policy, move |ctx| {
            Exploit::seize(ctx).try_read(&key_buf).is_err()
        })
        .unwrap()
        .join()
        .unwrap();
    assert!(key_denied);

    // But the worker legitimately holds the session keys, so under a passive
    // man in the middle the attacker who exploits it can decrypt the
    // client's traffic — the residual weakness §5.1.2 addresses.
    let (client_link, mitm, server_link) = Mitm::interpose();
    let mitm = Arc::new(parking_lot::Mutex::new(mitm));
    let stop = Arc::new(AtomicBool::new(false));
    let pump = {
        let mitm = mitm.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                mitm.lock().forward_all_pending();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };
    let handle = server.serve_connection(server_link).unwrap();
    let mut client = TlsClient::new(server.public_key(), WedgeRng::from_seed(3));
    let mut conn = client.connect(&client_link).unwrap();
    conn.send(&client_link, b"GET /account HTTP/1.0\r\n\r\n")
        .unwrap();
    let response = conn.recv(&client_link).unwrap();
    assert!(response.starts_with(b"HTTP/1.0 200"));
    drop(conn);
    drop(client_link);
    let (report, leaked_keys) = handle.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    pump.join().unwrap();
    assert!(report.handshake_ok);

    let mitm = Arc::try_unwrap(mitm).expect("sole owner").into_inner();
    assert!(
        mitm.observed().entries().len() >= 5,
        "the attacker saw the whole exchange"
    );
    let keys = leaked_keys.expect("the worker holds the session keys");
    let recovered = decrypt_observed_client_records(&keys.material, &mitm);
    assert!(
        plaintexts_contain(&recovered, b"GET /account"),
        "with the leaked session key the attacker reads the client's request"
    );
}

#[test]
fn hardened_partitioning_denies_the_attacker_key_material_and_oracles() {
    let server = WedgeApache::new(
        Wedge::init(),
        keypair(4),
        PageStore::sample(),
        ApacheConfig::default(),
    )
    .unwrap();

    // The exploited network-facing compartment can reach neither the private
    // key nor the session-key region nor the finished state.
    let policy = server.handshake_policy();
    let key_buf = server.key_buf();
    let session_buf = server.session_state_buf();
    let finished_buf = server.finished_state_buf();
    let (key_denied, session_denied, finished_denied) = server
        .wedge()
        .root()
        .sthread_create("exploited-handshake", &policy, move |ctx| {
            let mut exploit = Exploit::seize(ctx);
            (
                exploit.try_read(&key_buf).is_err(),
                exploit.try_read(&session_buf).is_err(),
                exploit.try_read(&finished_buf).is_err(),
            )
        })
        .unwrap()
        .join()
        .unwrap();
    assert!(key_denied && session_denied && finished_denied);

    // End to end through a passive MITM: the handshake completes, the client
    // is served, and nothing the attacker observed decrypts without keys it
    // never obtained.
    let (client_link, mitm, server_link) = Mitm::interpose();
    let mitm = Arc::new(parking_lot::Mutex::new(mitm));
    let stop = Arc::new(AtomicBool::new(false));
    let pump = {
        let mitm = mitm.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                mitm.lock().forward_all_pending();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };
    let report = std::thread::scope(|scope| {
        let server_ref = &server;
        let handle = scope.spawn(move || server_ref.serve_connection(server_link).unwrap());
        let mut client = TlsClient::new(server.public_key(), WedgeRng::from_seed(5));
        let mut conn = client.connect(&client_link).unwrap();
        conn.send(&client_link, b"GET /account HTTP/1.0\r\n\r\n")
            .unwrap();
        let response = conn.recv(&client_link).unwrap();
        assert!(response.starts_with(b"HTTP/1.0 200"));
        drop(conn);
        drop(client_link);
        handle.join().unwrap()
    });
    stop.store(true, Ordering::Relaxed);
    pump.join().unwrap();
    assert!(report.handshake_ok);
    assert_eq!(report.requests, 1);

    let mitm = Arc::try_unwrap(mitm).expect("sole owner").into_inner();
    // The attacker saw everything on the wire but holds no keys; a guess at
    // key material recovers nothing.
    let wrong_keys = wedge::crypto::kdf::derive_key_block(b"guess", b"cr", b"sr");
    let recovered = decrypt_observed_client_records(&wrong_keys, &mitm);
    assert!(!plaintexts_contain(&recovered, b"GET /account"));
    // The plaintext never crossed the wire in the clear either.
    assert!(!mitm.saw_bytes(b"account balance"));
}

#[test]
fn injected_records_are_rejected_before_reaching_the_client_handler() {
    let server = WedgeApache::new(
        Wedge::init(),
        keypair(6),
        PageStore::sample(),
        ApacheConfig::default(),
    )
    .unwrap();
    let (client_link, server_link) = duplex_pair("client", "server");
    let report = std::thread::scope(|scope| {
        let server_ref = &server;
        let handle = scope.spawn(move || server_ref.serve_connection(server_link).unwrap());
        let mut client = TlsClient::new(server.public_key(), WedgeRng::from_seed(7));
        let mut conn = client.connect(&client_link).unwrap();
        // The attacker injects garbage "ciphertext" into the established
        // connection before the real request.
        client_link
            .send(b"attacker-injected-record-without-a-valid-mac")
            .unwrap();
        conn.send(&client_link, b"GET /index.html HTTP/1.0\r\n\r\n")
            .unwrap();
        let response = conn.recv(&client_link).unwrap();
        assert!(response.starts_with(b"HTTP/1.0 200"));
        drop(conn);
        drop(client_link);
        handle.join().unwrap()
    });
    assert!(report.handshake_ok);
    assert_eq!(
        report.rejected_records, 1,
        "the injected record was dropped by ssl_read"
    );
    assert_eq!(
        report.requests, 1,
        "the legitimate request was still served"
    );
}
