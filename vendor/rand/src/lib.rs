//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides `RngCore` and `thread_rng()` — the only pieces the workspace
//! uses (entropy-seeding `WedgeRng`). Entropy is gathered without `unsafe`
//! from the OS-seeded `RandomState` hasher, the monotonic clock and the
//! thread id, then expanded with splitmix64. This is *not* cryptographically
//! strong randomness; the workspace's own deterministic `WedgeRng` performs
//! all modelled-crypto duties, and seeds only need to be unpredictable
//! enough to decorrelate test runs.

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash, Hasher};

/// Core random-number-generation trait (API subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn os_entropy() -> u64 {
    // RandomState is seeded by the standard library from OS entropy once
    // per process; hashing per-call state decorrelates successive seeds.
    let mut hasher = RandomState::new().build_hasher();
    std::thread::current().id().hash(&mut hasher);
    std::time::Instant::now().hash_slice_free(&mut hasher);
    hasher.finish()
}

trait HashInstant {
    fn hash_slice_free<H: Hasher>(&self, h: &mut H);
}

impl HashInstant for std::time::Instant {
    fn hash_slice_free<H: Hasher>(&self, h: &mut H) {
        // Instant has no stable Hash impl; fold in the elapsed-time ns.
        h.write_u128(self.elapsed().as_nanos());
        h.write_u64(std::process::id() as u64);
    }
}

/// A per-thread RNG handle (API stand-in for `rand::rngs::ThreadRng`).
#[derive(Debug, Clone)]
pub struct ThreadRng;

thread_local! {
    static THREAD_STATE: RefCell<u64> = RefCell::new(os_entropy());
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        THREAD_STATE.with(|state| splitmix64(&mut state.borrow_mut()))
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// The per-thread RNG, seeded from OS entropy.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = thread_rng();
        let mut buf = [0u8; 64];
        rng.fill_bytes(&mut buf);
        // 64 zero bytes has probability 2^-512; treat as impossible.
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn successive_draws_differ() {
        let mut rng = thread_rng();
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        assert_ne!(rng.next_u32(), 0u32.wrapping_sub(1));
    }
}
