//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of the crossbeam API the reproduction uses:
//! `crossbeam::channel::{unbounded, bounded, Sender, Receiver}`. Unlike
//! `std::sync::mpsc`, these endpoints are `Sync` and cloneable on both
//! sides (MPMC), which the recycled-callgate workers rely on — a
//! `Receiver` is shared between caller threads through an `Arc`.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Inner<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        messages: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel (MPMC: cloneable and `Sync`).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().expect("channel lock").senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().expect("channel lock").receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.queue.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.queue.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message, failing if every receiver has been dropped.
        /// Bounded channels block while full (and a receiver still exists).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.queue.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match st.capacity {
                    Some(cap) if st.messages.len() >= cap => {
                        st = self.inner.ready.wait(st).expect("channel lock");
                    }
                    _ => break,
                }
            }
            st.messages.push_back(value);
            self.inner.ready.notify_all();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking while the channel is empty and at
        /// least one sender remains.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.queue.lock().expect("channel lock");
            loop {
                if let Some(msg) = st.messages.pop_front() {
                    self.inner.ready.notify_all();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.ready.wait(st).expect("channel lock");
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.queue.lock().expect("channel lock");
            if let Some(msg) = st.messages.pop_front() {
                self.inner.ready.notify_all();
                Ok(msg)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Dequeue, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.inner.queue.lock().expect("channel lock");
            loop {
                if let Some(msg) = st.messages.pop_front() {
                    self.inner.ready.notify_all();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(st, deadline - now)
                    .expect("channel lock");
                st = guard;
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .expect("channel lock")
                .messages
                .len()
        }

        /// Is the queue currently empty?
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State {
                messages: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Create a bounded channel with the given capacity.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(capacity.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
    }

    #[test]
    fn receiver_is_shareable_across_threads() {
        let (tx, rx) = channel::unbounded();
        let rx = Arc::new(rx);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(thread::spawn(move || rx.recv().unwrap()));
        }
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        let mut got: Vec<i32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bounded_channel_blocks_then_drains() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || tx.send(3).unwrap());
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }
}
