//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the tiny slice of the `parking_lot` API the
//! reproduction actually uses — `Mutex`, `RwLock` and `Condvar` with
//! non-poisoning guards — implemented on top of `std::sync`. Lock poisoning
//! is translated into the parking_lot behaviour (a panicking thread does not
//! poison the lock for everyone else): poisoned guards are recovered with
//! `into_inner`.
//!
//! Only the API surface used by the wedge crates is provided; this is not a
//! general-purpose replacement.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync;
use std::time::Duration;

/// A non-poisoning mutual-exclusion lock (API subset of `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. The inner std guard is kept in an `Option` so
/// [`Condvar`] can temporarily take ownership during waits.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { guard: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// A non-poisoning reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Try to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(RwLockWriteGuard { guard }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                guard: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Did the wait end because the timeout elapsed?
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`MutexGuard`] (parking_lot style: the
/// guard is passed by `&mut` and re-acquired in place).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner);
    }

    /// Block until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
