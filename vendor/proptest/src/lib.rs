//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of the proptest API its property tests use:
//! the `proptest!` macro, `Strategy` with `prop_map`, ranges, tuples,
//! `Just`, `prop_oneof!`, `any::<T>()`, `prop::collection::{vec, btree_map,
//! btree_set}`, `prop::sample::Index`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Semantics: values are generated from a deterministic per-test RNG (the
//! test function name seeds it, so failures reproduce across runs) and each
//! property runs for `ProptestConfig::cases` cases. **No shrinking** is
//! performed — a failing case reports the panic message of the first
//! failing input instead of a minimised one. That loses debugging comfort,
//! not coverage.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values (object-safe subset of
    /// `proptest::strategy::Strategy`; no shrink trees).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternative strategies (what
    /// `prop_oneof!` expands to).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $gen:ident),+ $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below_u64(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.below_u64(span + 1) as $t)
                }
            }
        )+};
    }

    int_range_strategy! {
        u8 => gen_u8,
        u16 => gen_u16,
        u32 => gen_u32,
        u64 => gen_u64,
        usize => gen_usize,
        i32 => gen_i32,
        i64 => gen_i64,
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Deterministic RNG and case-outcome types used by the `proptest!` macro.
pub mod test_runner {
    /// Splitmix64-based deterministic RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier so each property is reproducible.
        pub fn from_name(name: &str) -> TestRng {
            let mut state = 0xCAFE_F00D_D15E_A5E5u64;
            for b in name.as_bytes() {
                state = state.rotate_left(8) ^ u64::from(*b);
                state = state.wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (`bound > 0`).
        pub fn below_u64(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is irrelevant at test-generation fidelity.
            self.next_u64() % bound
        }

        /// Uniform index in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            self.below_u64(bound as u64) as usize
        }

        /// A random bool.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is skipped, not failed.
        Reject,
        /// A `prop_assert*` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError::Fail(msg)
        }
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Types with a canonical strategy for `any::<T>()`.
pub trait Arbitrary {
    /// The canonical strategy.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for a whole primitive type's value range.
#[derive(Debug, Clone, Default)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl strategy::Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )+};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl strategy::Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut test_runner::TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Strategy for fixed-size byte arrays.
#[derive(Debug, Clone, Default)]
pub struct AnyArray<T, const N: usize> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary, const N: usize> strategy::Strategy for AnyArray<T, N>
where
    T::Strategy: Default,
{
    type Value = [T; N];
    fn generate(&self, rng: &mut test_runner::TestRng) -> [T; N] {
        let element = T::Strategy::default();
        std::array::from_fn(|_| strategy::Strategy::generate(&element, rng))
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N]
where
    T::Strategy: Default,
{
    type Strategy = AnyArray<T, N>;
    fn arbitrary() -> Self::Strategy {
        AnyArray {
            _marker: std::marker::PhantomData,
        }
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection and sampling strategies (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::collections::{BTreeMap, BTreeSet};

        /// Size specification: an exact length or a half-open range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max_exclusive: usize,
        }

        impl SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize {
                if self.max_exclusive <= self.min + 1 {
                    self.min
                } else {
                    self.min + rng.below(self.max_exclusive - self.min)
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(len: usize) -> SizeRange {
                SizeRange {
                    min: len,
                    max_exclusive: len + 1,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange {
                    min: r.start,
                    max_exclusive: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    min: *r.start(),
                    max_exclusive: r.end().saturating_add(1),
                }
            }
        }

        /// Strategy for `Vec<S::Value>`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vectors of `element` values with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy for `BTreeMap<K::Value, V::Value>`.
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: SizeRange,
        }

        impl<K, V> Strategy for BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
        {
            type Value = BTreeMap<K::Value, V::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.pick(rng);
                let mut map = BTreeMap::new();
                // Duplicate keys shrink the yield; bounded retries keep the
                // distribution close to `target` without risking a spin.
                for _ in 0..target.saturating_mul(4) {
                    if map.len() >= target {
                        break;
                    }
                    map.insert(self.key.generate(rng), self.value.generate(rng));
                }
                map
            }
        }

        /// Maps with keys/values drawn from the given strategies.
        pub fn btree_map<K, V>(
            key: K,
            value: V,
            size: impl Into<SizeRange>,
        ) -> BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
        {
            BTreeMapStrategy {
                key,
                value,
                size: size.into(),
            }
        }

        /// Strategy for `BTreeSet<S::Value>`.
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.pick(rng);
                let mut set = BTreeSet::new();
                for _ in 0..target.saturating_mul(4) {
                    if set.len() >= target {
                        break;
                    }
                    set.insert(self.element.generate(rng));
                }
                set
            }
        }

        /// Sets with elements drawn from the given strategy.
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use crate::{AnyPrimitive, Arbitrary};

        /// An index into a collection whose length is only known at use
        /// time (API stand-in for `proptest::sample::Index`).
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(u64);

        impl Index {
            /// Map this abstract index onto a collection of length `len`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on an empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Strategy for AnyPrimitive<Index> {
            type Value = Index;
            fn generate(&self, rng: &mut TestRng) -> Index {
                Index(rng.next_u64())
            }
        }

        impl Arbitrary for Index {
            type Strategy = AnyPrimitive<Index>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive {
                    _marker: std::marker::PhantomData,
                }
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{any, prop, Arbitrary, ProptestConfig};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// immediately) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Discard the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests. Supports the subset of the real macro's grammar
/// used here: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    (@funcs ($config:expr); ) => {};
    (@funcs ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut ran: u32 = 0;
            let mut rejected: u32 = 0;
            while ran < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(64).max(1024),
                            "prop_assume! rejected too many cases in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed after {} cases: {}",
                            stringify!($name),
                            ran,
                            msg
                        );
                    }
                }
            }
        }
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 1u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..5), exact in prop::collection::vec(any::<bool>(), 7)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(exact.len(), 7);
        }

        #[test]
        fn tuples_maps_and_oneof((a, b) in (0u32..4, any::<bool>()), shape in prop_oneof![Just(Shape::Dot), (1u8..9).prop_map(Shape::Line)]) {
            prop_assert!(a < 4);
            let _ = b;
            match shape {
                Shape::Dot => {}
                Shape::Line(w) => prop_assert!((1..9).contains(&w)),
            }
        }

        #[test]
        fn index_maps_into_any_length(ix in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(ix.index(len) < len);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn btree_collections_generate(m in prop::collection::btree_map(0u64..20, any::<bool>(), 0..6), s in prop::collection::btree_set(0u64..20, 0..6)) {
            prop_assert!(m.len() < 6);
            prop_assert!(s.len() < 6);
        }
    }

    proptest! {
        #[test]
        fn default_config_also_works(x in 0u8..10) {
            prop_assert_ne!(x, 200);
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(x in 0u8..4) {
                    prop_assert!(x > 200, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
    }
}
