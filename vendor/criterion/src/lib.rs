//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of the criterion API its benches use:
//! `Criterion`, `benchmark_group` with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up for the configured warm-up
//! time, then collects `sample_size` samples (each an adaptively sized
//! batch of iterations) within roughly the configured measurement time, and
//! prints min / mean / max per-iteration latency. There is no statistical
//! regression analysis, plotting, or baseline comparison — numbers are for
//! eyeballing trends, which is all a 1-core CI container supports anyway.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque value barrier.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A parameterised benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name` plus a parameter rendered into the id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { name }
    }
}

/// Passed to benchmark closures; drives the timed iterations.
pub struct Bencher<'a> {
    config: &'a GroupConfig,
    /// Filled by `iter`: per-iteration nanoseconds for each sample.
    samples: Vec<f64>,
}

impl<'a> Bencher<'a> {
    /// Run `routine` repeatedly and record per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also used to size the per-sample batch.
        let warmup_deadline = Instant::now() + self.config.warm_up_time;
        let mut warmup_iters: u64 = 0;
        let warmup_started = Instant::now();
        loop {
            black_box(routine());
            warmup_iters += 1;
            if Instant::now() >= warmup_deadline {
                break;
            }
        }
        let per_iter = warmup_started.elapsed().as_secs_f64() / warmup_iters as f64;

        let samples = self.config.sample_size.max(2);
        let time_budget = self.config.measurement_time.as_secs_f64();
        let per_sample = time_budget / samples as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..samples {
            let started = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = started.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / batch as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[derive(Debug, Clone)]
struct GroupConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: GroupConfig,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.config.sample_size = samples;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.config.warm_up_time = duration;
        self
    }

    /// Target total measurement duration.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.config.measurement_time = duration;
        self
    }

    fn run_one(&self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            config: &self.config,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if bencher.samples.is_empty() {
            println!("{}/{id}: no samples collected", self.name);
            return;
        }
        let min = bencher.samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = bencher.samples.iter().cloned().fold(0.0f64, f64::max);
        let mean = bencher.samples.iter().sum::<f64>() / bencher.samples.len() as f64;
        println!(
            "{}/{id}  time: [{} {} {}]",
            self.name,
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut f = f;
        self.run_one(&id.name, |b| f(b));
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut f = f;
        self.run_one(&id.name, |b| f(b, input));
        self
    }

    /// Finish the group (printing is incremental; this is a no-op marker).
    pub fn finish(self) {}
}

/// The benchmark harness entry object.
#[derive(Default)]
pub struct Criterion {
    config: GroupConfig,
}

impl Criterion {
    /// Accept and ignore criterion-style CLI arguments (`--bench`, filters).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let id = id.into();
        let group = BenchmarkGroup {
            name: "bench".to_string(),
            config: self.config.clone(),
            _criterion: self,
        };
        let mut f = f;
        group.run_one(&id.name, |b| f(b));
        self
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut runs = 0u64;
        group.bench_function("incr", |b| b.iter(|| runs = black_box(runs + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(12_000_000_000.0).contains(" s"));
    }
}
