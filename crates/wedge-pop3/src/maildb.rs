//! The POP3 server's data: a password database and a per-user mail store,
//! with a simple text serialisation so both can live in tagged memory.

use std::collections::BTreeMap;

/// One user's record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserRecord {
    /// The user's password (plaintext; the example is about isolation, not
    /// password hashing).
    pub password: String,
    /// The numeric uid the login callgate stores on success.
    pub uid: u32,
    /// The user's messages.
    pub emails: Vec<String>,
}

/// The combined password database and mail store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MailDb {
    users: BTreeMap<String, UserRecord>,
}

impl MailDb {
    /// An empty database.
    pub fn new() -> MailDb {
        MailDb::default()
    }

    /// A small sample database used by examples and tests.
    pub fn sample() -> MailDb {
        let mut db = MailDb::new();
        db.add_user(
            "alice",
            UserRecord {
                password: "wonderland".to_string(),
                uid: 1001,
                emails: vec![
                    "From: bob\nSubject: lunch\n\nNoon?".to_string(),
                    "From: carol\nSubject: report\n\nAttached.".to_string(),
                ],
            },
        );
        db.add_user(
            "bob",
            UserRecord {
                password: "builder".to_string(),
                uid: 1002,
                emails: vec!["From: alice\nSubject: re: lunch\n\nYes.".to_string()],
            },
        );
        db
    }

    /// Insert or replace a user.
    pub fn add_user(&mut self, name: &str, record: UserRecord) {
        self.users.insert(name.to_string(), record);
    }

    /// Look up a user.
    pub fn user(&self, name: &str) -> Option<&UserRecord> {
        self.users.get(name)
    }

    /// Find a user by uid.
    pub fn user_by_uid(&self, uid: u32) -> Option<(&str, &UserRecord)> {
        self.users
            .iter()
            .find(|(_, r)| r.uid == uid)
            .map(|(n, r)| (n.as_str(), r))
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Serialise only the authentication data (username, password, uid) —
    /// what the login callgate's tagged region holds.
    pub fn serialize_auth(&self) -> Vec<u8> {
        let mut out = String::new();
        for (name, record) in &self.users {
            out.push_str(&format!("{name}\t{}\t{}\n", record.password, record.uid));
        }
        out.into_bytes()
    }

    /// Serialise only the mail store (uid and messages) — what the
    /// retriever callgate's tagged region holds. Messages are
    /// base-escaped so newlines survive.
    pub fn serialize_mail(&self) -> Vec<u8> {
        let mut out = String::new();
        for record in self.users.values() {
            for email in &record.emails {
                out.push_str(&format!("{}\t{}\n", record.uid, email.replace('\n', "\\n")));
            }
        }
        out.into_bytes()
    }

    /// Parse the auth serialisation into (username, password, uid) tuples.
    pub fn parse_auth(data: &[u8]) -> Vec<(String, String, u32)> {
        String::from_utf8_lossy(data)
            .lines()
            .filter_map(|line| {
                let mut parts = line.split('\t');
                let name = parts.next()?.to_string();
                let password = parts.next()?.to_string();
                let uid = parts.next()?.parse().ok()?;
                Some((name, password, uid))
            })
            .collect()
    }

    /// Parse the mail serialisation into (uid, message) tuples.
    pub fn parse_mail(data: &[u8]) -> Vec<(u32, String)> {
        String::from_utf8_lossy(data)
            .lines()
            .filter_map(|line| {
                let (uid, body) = line.split_once('\t')?;
                Some((uid.parse().ok()?, body.replace("\\n", "\n")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_database_has_users_and_mail() {
        let db = MailDb::sample();
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.user("alice").unwrap().uid, 1001);
        assert_eq!(db.user("alice").unwrap().emails.len(), 2);
        assert!(db.user("mallory").is_none());
        assert_eq!(db.user_by_uid(1002).unwrap().0, "bob");
    }

    #[test]
    fn auth_serialisation_roundtrips() {
        let db = MailDb::sample();
        let parsed = MailDb::parse_auth(&db.serialize_auth());
        assert_eq!(parsed.len(), 2);
        assert!(parsed.contains(&("alice".to_string(), "wonderland".to_string(), 1001)));
    }

    #[test]
    fn mail_serialisation_roundtrips_with_newlines() {
        let db = MailDb::sample();
        let parsed = MailDb::parse_mail(&db.serialize_mail());
        assert_eq!(parsed.len(), 3);
        let alice_mail: Vec<&String> = parsed
            .iter()
            .filter(|(uid, _)| *uid == 1001)
            .map(|(_, m)| m)
            .collect();
        assert_eq!(alice_mail.len(), 2);
        assert!(alice_mail[0].contains("Subject: lunch"));
        assert!(alice_mail[0].contains('\n'));
    }

    #[test]
    fn parse_tolerates_garbage_lines() {
        let parsed = MailDb::parse_auth(b"not-a-valid-line\nalice\tpw\t3\n\tbroken\t\n");
        assert_eq!(parsed, vec![("alice".to_string(), "pw".to_string(), 3)]);
        let mail = MailDb::parse_mail(b"garbage\n12\thello\n");
        assert_eq!(mail, vec![(12, "hello".to_string())]);
    }
}
