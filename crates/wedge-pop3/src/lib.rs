//! # wedge-pop3 — the partitioned POP3 server of Figure 1
//!
//! The paper motivates Wedge with a POP3 server split into three
//! compartments (§2): an unprivileged **client handler** sthread that parses
//! untrusted network input; a **login** callgate with read access to the
//! password database and write access to the authenticated `uid`; and an
//! **e-mail retriever** callgate with read access to the mail store and to
//! `uid`. An exploit in the client handler can neither read passwords or
//! mail (no grants) nor skip authentication (only the login callgate can set
//! `uid`, and the retriever serves only `uid`'s mailbox).
//!
//! This crate is that server, built directly on `wedge-core`:
//!
//! * [`maildb`] — the password database and mail store formats.
//! * [`server`] — the partitioned server, the callgates, and a tiny
//!   POP3-ish command loop (USER/PASS/STAT/LIST/RETR/QUIT).
//! * [`sharded`] — the sharded front-end: N forked server shards behind
//!   `wedge-sched`'s protocol-agnostic [`ShardedPop3`] serving stack
//!   (listener accept loop, placement, supervisor auto-restart).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod maildb;
pub mod server;
pub mod sharded;

pub use maildb::{MailDb, UserRecord};
pub use server::{Pop3Server, Pop3Stats};
pub use sharded::{Pop3Report, ShardedPop3, ShardedPop3Config};
