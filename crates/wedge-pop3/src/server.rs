//! The partitioned POP3 server (Figure 1 of the paper).

use std::sync::Arc;

use parking_lot::Mutex;

use wedge_core::callgate::typed_entry;
use wedge_core::{
    CgEntryId, MemProt, SBuf, SecurityPolicy, SthreadCtx, SthreadHandle, Tag, TrustedArg, Wedge,
    WedgeError,
};
use wedge_net::{Duplex, RecvTimeout};

use crate::maildb::MailDb;

/// Request accepted by the retriever callgate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetrieveRequest {
    /// How many messages does the authenticated user have?
    Count,
    /// Fetch message `n` (zero-based) of the authenticated user.
    Message(usize),
}

/// Reply from the retriever callgate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetrieveReply {
    /// Message count.
    Count(usize),
    /// A message body.
    Message(String),
    /// The connection has not authenticated yet (uid is still 0).
    NotAuthenticated,
    /// No message with that index.
    NoSuchMessage,
}

/// Per-connection statistics returned by the client handler when it exits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Pop3Stats {
    /// Commands processed.
    pub commands: u32,
    /// Whether the session authenticated successfully.
    pub logged_in: bool,
    /// Messages retrieved.
    pub retrieved: u32,
}

/// Trusted argument handed to the login callgate: where the password
/// database lives and where this connection's authenticated uid is stored.
#[derive(Debug, Clone, Copy)]
struct LoginTrusted {
    passwords: SBuf,
    uid_cell: SBuf,
}

/// Trusted argument handed to the retriever callgate.
#[derive(Debug, Clone, Copy)]
struct RetrieveTrusted {
    mail: SBuf,
    uid_cell: SBuf,
}

/// The partitioned POP3 server.
pub struct Pop3Server {
    wedge: Wedge,
    passwords_tag: Tag,
    mail_tag: Tag,
    uid_tag: Tag,
    passwords_buf: SBuf,
    mail_buf: SBuf,
    login_entry: CgEntryId,
    retrieve_entry: CgEntryId,
    connections: Arc<Mutex<u64>>,
}

impl Pop3Server {
    /// Build the server: load the database into tagged memory and register
    /// the two privileged callgates.
    pub fn new(wedge: Wedge, db: &MailDb) -> Result<Pop3Server, WedgeError> {
        let root = wedge.root();
        let passwords_tag = root.tag_new()?;
        let mail_tag = root.tag_new()?;
        let uid_tag = root.tag_new()?;
        let passwords_buf = root.smalloc_init(passwords_tag, &db.serialize_auth())?;
        let mail_buf = root.smalloc_init(mail_tag, &db.serialize_mail())?;

        // Login callgate: reads the password DB, writes the connection uid.
        let login_entry = wedge.kernel().cgate_register(
            "pop3_login",
            typed_entry(|ctx: &SthreadCtx, trusted, input: (String, String)| {
                let _frame = ctx.trace_fn("pop3_login");
                let trusted = trusted
                    .and_then(|t| t.downcast::<LoginTrusted>())
                    .copied()
                    .ok_or(WedgeError::BadCallgateValue)?;
                let auth_data = ctx.read_all(&trusted.passwords)?;
                let (username, password) = input;
                let entry = MailDb::parse_auth(&auth_data)
                    .into_iter()
                    .find(|(name, pass, _)| *name == username && *pass == password);
                match entry {
                    Some((_, _, uid)) => {
                        ctx.write(&trusted.uid_cell, 0, &uid.to_le_bytes())?;
                        Ok(true)
                    }
                    None => Ok(false),
                }
            }),
        );

        // Retriever callgate: reads the mail store and the connection uid;
        // only ever serves the authenticated uid's mailbox.
        let retrieve_entry = wedge.kernel().cgate_register(
            "pop3_retrieve",
            typed_entry(|ctx: &SthreadCtx, trusted, request: RetrieveRequest| {
                let _frame = ctx.trace_fn("pop3_retrieve");
                let trusted = trusted
                    .and_then(|t| t.downcast::<RetrieveTrusted>())
                    .copied()
                    .ok_or(WedgeError::BadCallgateValue)?;
                let uid_bytes = ctx.read(&trusted.uid_cell, 0, 4)?;
                let uid = u32::from_le_bytes(uid_bytes.try_into().expect("4 bytes"));
                if uid == 0 {
                    return Ok(RetrieveReply::NotAuthenticated);
                }
                let mail = MailDb::parse_mail(&ctx.read_all(&trusted.mail)?);
                let mine: Vec<&String> = mail
                    .iter()
                    .filter(|(owner, _)| *owner == uid)
                    .map(|(_, body)| body)
                    .collect();
                Ok(match request {
                    RetrieveRequest::Count => RetrieveReply::Count(mine.len()),
                    RetrieveRequest::Message(index) => match mine.get(index) {
                        Some(body) => RetrieveReply::Message((*body).clone()),
                        None => RetrieveReply::NoSuchMessage,
                    },
                })
            }),
        );

        Ok(Pop3Server {
            wedge,
            passwords_tag,
            mail_tag,
            uid_tag,
            passwords_buf,
            mail_buf,
            login_entry,
            retrieve_entry,
            connections: Arc::new(Mutex::new(0)),
        })
    }

    /// The Wedge runtime backing this server.
    pub fn wedge(&self) -> &Wedge {
        &self.wedge
    }

    /// The buffer holding the password database (tests use this to show the
    /// client handler cannot read it).
    pub fn passwords_buf(&self) -> SBuf {
        self.passwords_buf
    }

    /// The buffer holding the mail store.
    pub fn mail_buf(&self) -> SBuf {
        self.mail_buf
    }

    /// Number of connections served so far.
    pub fn connections_served(&self) -> u64 {
        *self.connections.lock()
    }

    /// Prepare the per-connection state: the connection's `uid` cell and the
    /// client handler's security policy (no direct memory grants — only the
    /// two callgates, each instantiated with the right trusted argument).
    pub fn connection_policy(&self) -> Result<(SecurityPolicy, SBuf), WedgeError> {
        let root = self.wedge.root();
        let uid_cell = root.smalloc(4, self.uid_tag)?;
        root.write(&uid_cell, 0, &0u32.to_le_bytes())?;

        let mut login_policy = SecurityPolicy::deny_all();
        login_policy.sc_mem_add(self.passwords_tag, MemProt::Read);
        login_policy.sc_mem_add(self.uid_tag, MemProt::ReadWrite);

        let mut retrieve_policy = SecurityPolicy::deny_all();
        retrieve_policy.sc_mem_add(self.mail_tag, MemProt::Read);
        retrieve_policy.sc_mem_add(self.uid_tag, MemProt::Read);

        let mut handler_policy = SecurityPolicy::deny_all();
        handler_policy.sc_cgate_add(
            self.login_entry,
            login_policy,
            Some(TrustedArg::new(LoginTrusted {
                passwords: self.passwords_buf,
                uid_cell,
            })),
        );
        handler_policy.sc_cgate_add(
            self.retrieve_entry,
            retrieve_policy,
            Some(TrustedArg::new(RetrieveTrusted {
                mail: self.mail_buf,
                uid_cell,
            })),
        );
        Ok((handler_policy, uid_cell))
    }

    /// Serve one connection: spawn the unprivileged client handler sthread
    /// and return its handle. `link` is the server side of the client's
    /// connection.
    pub fn serve_connection(
        &self,
        link: Duplex,
    ) -> Result<SthreadHandle<Result<Pop3Stats, WedgeError>>, WedgeError> {
        let (policy, _uid_cell) = self.connection_policy()?;
        *self.connections.lock() += 1;
        let login_entry = self.login_entry;
        let retrieve_entry = self.retrieve_entry;
        self.wedge
            .root()
            .sthread_create("pop3-client-handler", &policy, move |ctx| {
                client_handler(ctx, &link, login_entry, retrieve_entry)
            })
    }
}

/// The unprivileged, network-facing command loop.
fn client_handler(
    ctx: &SthreadCtx,
    link: &Duplex,
    login_entry: CgEntryId,
    retrieve_entry: CgEntryId,
) -> Result<Pop3Stats, WedgeError> {
    let _frame = ctx.trace_fn("pop3_client_handler");
    let mut stats = Pop3Stats::default();
    let mut pending_user: Option<String> = None;
    let no_extra = SecurityPolicy::deny_all();
    let _ = link.send(b"+OK wedge-pop3 ready");

    while let Ok(raw) = link.recv(RecvTimeout::After(std::time::Duration::from_secs(5))) {
        stats.commands += 1;
        let line = String::from_utf8_lossy(&raw).trim().to_string();
        let mut parts = line.splitn(2, ' ');
        let verb = parts.next().unwrap_or("").to_ascii_uppercase();
        let arg = parts.next().unwrap_or("").to_string();
        let reply: String = match verb.as_str() {
            "USER" => {
                pending_user = Some(arg);
                "+OK send PASS".to_string()
            }
            "PASS" => {
                let username = pending_user.clone().unwrap_or_default();
                let ok =
                    ctx.cgate_expect::<bool>(login_entry, &no_extra, Box::new((username, arg)))?;
                if ok {
                    stats.logged_in = true;
                    "+OK logged in".to_string()
                } else {
                    "-ERR authentication failed".to_string()
                }
            }
            "STAT" | "LIST" => {
                match ctx.cgate_expect::<RetrieveReply>(
                    retrieve_entry,
                    &no_extra,
                    Box::new(RetrieveRequest::Count),
                )? {
                    RetrieveReply::Count(n) => format!("+OK {n} messages"),
                    RetrieveReply::NotAuthenticated => "-ERR not authenticated".to_string(),
                    _ => "-ERR internal".to_string(),
                }
            }
            "RETR" => {
                let index = arg.parse::<usize>().unwrap_or(0).saturating_sub(1);
                match ctx.cgate_expect::<RetrieveReply>(
                    retrieve_entry,
                    &no_extra,
                    Box::new(RetrieveRequest::Message(index)),
                )? {
                    RetrieveReply::Message(body) => {
                        stats.retrieved += 1;
                        format!("+OK message follows\r\n{body}\r\n.")
                    }
                    RetrieveReply::NotAuthenticated => "-ERR not authenticated".to_string(),
                    RetrieveReply::NoSuchMessage => "-ERR no such message".to_string(),
                    _ => "-ERR internal".to_string(),
                }
            }
            "QUIT" => {
                let _ = link.send(b"+OK bye");
                break;
            }
            _ => "-ERR unknown command".to_string(),
        };
        if link.send(reply.as_bytes()).is_err() {
            break;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_core::Exploit;
    use wedge_net::duplex_pair;

    fn send_cmd(client: &Duplex, cmd: &str) -> String {
        client.send(cmd.as_bytes()).unwrap();
        String::from_utf8_lossy(
            &client
                .recv(RecvTimeout::After(std::time::Duration::from_secs(5)))
                .unwrap(),
        )
        .to_string()
    }

    fn start() -> (
        Pop3Server,
        Duplex,
        SthreadHandle<Result<Pop3Stats, WedgeError>>,
    ) {
        let server = Pop3Server::new(Wedge::init(), &MailDb::sample()).unwrap();
        let (client, server_link) = duplex_pair("pop3-client", "pop3-server");
        let handle = server.serve_connection(server_link).unwrap();
        // Consume the greeting.
        let greeting = client
            .recv(RecvTimeout::After(std::time::Duration::from_secs(5)))
            .unwrap();
        assert!(greeting.starts_with(b"+OK"));
        (server, client, handle)
    }

    #[test]
    fn authenticated_user_reads_own_mail() {
        let (_server, client, handle) = start();
        assert!(send_cmd(&client, "USER alice").starts_with("+OK"));
        assert!(send_cmd(&client, "PASS wonderland").starts_with("+OK"));
        assert_eq!(send_cmd(&client, "STAT"), "+OK 2 messages");
        let msg = send_cmd(&client, "RETR 1");
        assert!(msg.contains("Subject: lunch"));
        assert!(send_cmd(&client, "QUIT").starts_with("+OK"));
        let stats = handle.join().unwrap().unwrap();
        assert!(stats.logged_in);
        assert_eq!(stats.retrieved, 1);
    }

    #[test]
    fn wrong_password_is_rejected_and_mail_stays_closed() {
        let (_server, client, handle) = start();
        assert!(send_cmd(&client, "USER alice").starts_with("+OK"));
        assert!(send_cmd(&client, "PASS guess").starts_with("-ERR"));
        assert!(send_cmd(&client, "STAT").starts_with("-ERR not authenticated"));
        assert!(send_cmd(&client, "RETR 1").starts_with("-ERR not authenticated"));
        send_cmd(&client, "QUIT");
        drop(client);
        let stats = handle.join().unwrap().unwrap();
        assert!(!stats.logged_in);
        assert_eq!(stats.retrieved, 0);
    }

    #[test]
    fn unknown_command_and_missing_message_are_handled() {
        let (_server, client, _handle) = start();
        assert!(send_cmd(&client, "XYZZY").starts_with("-ERR"));
        assert!(send_cmd(&client, "USER bob").starts_with("+OK"));
        assert!(send_cmd(&client, "PASS builder").starts_with("+OK"));
        assert!(send_cmd(&client, "RETR 99").starts_with("-ERR no such message"));
    }

    #[test]
    fn exploited_client_handler_cannot_read_passwords_or_mail() {
        let server = Pop3Server::new(Wedge::init(), &MailDb::sample()).unwrap();
        let (policy, _uid) = server.connection_policy().unwrap();
        let passwords = server.passwords_buf();
        let mail = server.mail_buf();
        let handle = server
            .wedge()
            .root()
            .sthread_create("exploited-handler", &policy, move |ctx| {
                let mut exploit = Exploit::seize(ctx);
                let pw = exploit.try_read(&passwords);
                let mb = exploit.try_read(&mail);
                (
                    pw.is_err(),
                    mb.is_err(),
                    exploit.loot_contains(b"wonderland"),
                )
            })
            .unwrap();
        let (pw_denied, mail_denied, leaked_password) = handle.join().unwrap();
        assert!(pw_denied, "password DB must be unreadable from the handler");
        assert!(
            mail_denied,
            "mail store must be unreadable from the handler"
        );
        assert!(!leaked_password);
    }

    #[test]
    fn exploited_handler_cannot_skip_authentication() {
        let server = Pop3Server::new(Wedge::init(), &MailDb::sample()).unwrap();
        let (policy, uid_cell) = server.connection_policy().unwrap();
        let retrieve_entry = server.retrieve_entry;
        let handle = server
            .wedge()
            .root()
            .sthread_create("exploited-handler", &policy, move |ctx| {
                let mut exploit = Exploit::seize(ctx);
                // Attempt 1: forge the uid directly — denied, no grant on the
                // uid tag.
                let forged = exploit.try_write(&uid_cell, &1001u32.to_le_bytes());
                // Attempt 2: just ask the retriever without logging in — it
                // refuses because uid is still 0.
                let reply = ctx
                    .cgate_expect::<RetrieveReply>(
                        retrieve_entry,
                        &SecurityPolicy::deny_all(),
                        Box::new(RetrieveRequest::Message(0)),
                    )
                    .unwrap();
                (forged.is_err(), reply)
            })
            .unwrap();
        let (forge_denied, reply) = handle.join().unwrap();
        assert!(forge_denied, "uid cell must not be writable by the handler");
        assert_eq!(reply, RetrieveReply::NotAuthenticated);
    }

    #[test]
    fn two_connections_are_isolated_from_each_other() {
        let server = Pop3Server::new(Wedge::init(), &MailDb::sample()).unwrap();
        let (client_a, link_a) = duplex_pair("a", "server-a");
        let (client_b, link_b) = duplex_pair("b", "server-b");
        let h_a = server.serve_connection(link_a).unwrap();
        let h_b = server.serve_connection(link_b).unwrap();
        client_a.recv(RecvTimeout::Forever).unwrap();
        client_b.recv(RecvTimeout::Forever).unwrap();

        // Alice logs in on connection A; connection B stays unauthenticated.
        assert!(send_cmd(&client_a, "USER alice").starts_with("+OK"));
        assert!(send_cmd(&client_a, "PASS wonderland").starts_with("+OK"));
        assert!(send_cmd(&client_b, "STAT").starts_with("-ERR not authenticated"));
        assert_eq!(send_cmd(&client_a, "STAT"), "+OK 2 messages");
        send_cmd(&client_a, "QUIT");
        send_cmd(&client_b, "QUIT");
        assert!(h_a.join().unwrap().unwrap().logged_in);
        assert!(!h_b.join().unwrap().unwrap().logged_in);
        assert_eq!(server.connections_served(), 2);
    }
}
