//! The sharded POP3 front-end — Figure 1's server, finally at scale.
//!
//! The POP3 server is the paper's motivating example, but until now the
//! reproduction only ever drove it one connection at a time while Apache
//! and sshd got sharded front-ends of their own. With the serving stack
//! unified in `wedge-sched`, bringing POP3 up to the same scale is what
//! it should always have been: a [`ShardServer`] impl (serve one link,
//! stamp the shard) and a thin config wrapper. Everything else —
//! placement, per-shard health and backpressure, kill-time re-routing,
//! supervisor auto-restart, the listener accept loop with source-address
//! affinity — comes from [`ShardedFrontEnd`].
//!
//! Each shard boots its own [`Pop3Server`] over an independent simulated
//! kernel: password database, mail store and per-connection `uid` cells
//! all live in that shard's tagged memory, so the §2 isolation story (an
//! exploited client handler can neither read credentials nor skip
//! authentication) holds per shard exactly as it does sequentially.

use std::time::Duration;

use wedge_core::{KernelStats, Wedge, WedgeError};
use wedge_net::{Duplex, Listener};
use wedge_sched::{
    AcceptPolicy, FrontEndConfig, KillReport, RestartStats, SchedStats, ShardJobHandle,
    ShardServer, ShardStats, ShardedFrontEnd, SupervisorConfig,
};

use crate::maildb::MailDb;
use crate::server::{Pop3Server, Pop3Stats};

/// Per-connection report of the sharded front-end: the session's counters
/// plus the shard that served it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Pop3Report {
    /// The shard whose server drove the connection.
    pub shard: usize,
    /// The connection's command/login/retrieval counters.
    pub stats: Pop3Stats,
}

impl ShardServer for Pop3Server {
    type Report = Pop3Report;

    fn serve_link(&self, shard: usize, link: Duplex) -> Result<Pop3Report, WedgeError> {
        let stats = self.serve_connection(link)?.join()??;
        Ok(Pop3Report { shard, stats })
    }

    fn kernel_stats(&self) -> KernelStats {
        self.wedge().kernel().stats()
    }

    fn instrument(&self, telemetry: &wedge_telemetry::Telemetry) {
        self.wedge().kernel().instrument(telemetry);
    }
}

/// Configuration of the sharded POP3 front-end.
#[derive(Debug, Clone, Copy)]
pub struct ShardedPop3Config {
    /// Shard workers to fork — each an independent kernel running one
    /// partitioned server.
    pub shards: usize,
    /// Bounded per-shard link-queue capacity.
    pub queue_capacity: usize,
    /// Per-shard admission limit on in-flight connections.
    pub max_inflight: Option<u64>,
    /// How the acceptor places links on shards.
    pub policy: AcceptPolicy,
    /// Enable the shard watchdog (auto-restart of killed shards).
    pub supervisor: Option<SupervisorConfig>,
}

impl Default for ShardedPop3Config {
    fn default() -> Self {
        ShardedPop3Config {
            shards: 4,
            queue_capacity: 64,
            max_inflight: None,
            policy: AcceptPolicy::RoundRobin,
            supervisor: None,
        }
    }
}

/// N forked, partitioned POP3 shards behind the shared front-end.
pub struct ShardedPop3 {
    front: ShardedFrontEnd<Pop3Server>,
}

impl ShardedPop3 {
    /// Fork `config.shards` shards, each booting a partitioned
    /// [`Pop3Server`] over `db` (every shard gets its own copy inside its
    /// own kernel), plus the acceptor (and the supervisor, when
    /// configured).
    pub fn new(db: &MailDb, config: ShardedPop3Config) -> Result<ShardedPop3, WedgeError> {
        let db = db.clone();
        let front = ShardedFrontEnd::new(
            FrontEndConfig {
                shards: config.shards,
                queue_capacity: config.queue_capacity,
                max_inflight: config.max_inflight,
                policy: config.policy,
                supervisor: config.supervisor,
                // POP3 is server-speaks-first (the `+OK` greeting goes
                // out unprompted), so a link parked until the client's
                // first byte would deadlock: greeting waits for shard,
                // client waits for greeting. Submit on accept instead.
                defer_accept: false,
                ..FrontEndConfig::default()
            },
            move |_shard| Pop3Server::new(Wedge::init(), &db),
        )?;
        Ok(ShardedPop3 { front })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.front.shards()
    }

    /// Front-end counters (see [`ShardedFrontEnd::sched_stats`]).
    pub fn sched_stats(&self) -> SchedStats {
        self.front.sched_stats()
    }

    /// Per-shard snapshots (health, boot cost, restarts, depth, counters,
    /// kernel).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.front.shard_stats()
    }

    /// Kernel counters summed across every shard.
    pub fn kernel_stats(&self) -> KernelStats {
        self.front.kernel_stats()
    }

    /// The supervisor's restart counters (`None` when unsupervised).
    pub fn restart_stats(&self) -> Option<RestartStats> {
        self.front.restart_stats()
    }

    /// Register the whole front-end on `telemetry` (see
    /// [`ShardedFrontEnd::instrument`]).
    pub fn instrument(&self, telemetry: &wedge_telemetry::Telemetry) {
        self.front.instrument(telemetry);
    }

    /// One aggregated metric snapshot (`None` until
    /// [`ShardedPop3::instrument`] is called).
    pub fn telemetry_snapshot(&self) -> Option<wedge_telemetry::TelemetrySnapshot> {
        self.front.telemetry_snapshot()
    }

    /// Kill shard `idx` (fault injection): queued links re-route to
    /// healthy shards; a configured supervisor respawns the shard.
    pub fn kill_shard(&self, idx: usize) -> KillReport {
        self.front.kill_shard(idx)
    }

    /// Manually revive killed shard `idx`.
    pub fn restart_shard(&self, idx: usize) -> Result<Duration, WedgeError> {
        self.front.restart_shard(idx)
    }

    /// Block until shard `idx` is healthy again, up to `timeout`.
    pub fn await_healthy(&self, idx: usize, timeout: Duration) -> bool {
        self.front.await_healthy(idx, timeout)
    }

    /// Submit one connection; the handle resolves to the
    /// [`Pop3Report`], whose `shard` field names the serving shard.
    pub fn serve(&self, link: Duplex) -> Result<ShardJobHandle<Pop3Report>, WedgeError> {
        self.front.serve(link)
    }

    /// [`ShardedPop3::serve`] with an explicit affinity key.
    pub fn serve_with_key(
        &self,
        link: Duplex,
        key: u64,
    ) -> Result<ShardJobHandle<Pop3Report>, WedgeError> {
        self.front.serve_with_key(link, key)
    }

    /// Serve every link and return the outcomes **in link order**.
    pub fn serve_all(&self, links: Vec<Duplex>) -> Vec<Result<Pop3Report, WedgeError>> {
        self.front.serve_all(links)
    }

    /// Run the accept loop over `listener` until it closes, serving every
    /// accepted connection with source-address affinity (see
    /// [`ShardedFrontEnd::serve_listener`]).
    pub fn serve_listener(
        &self,
        listener: &Listener,
        batch: usize,
    ) -> Vec<Result<Pop3Report, WedgeError>> {
        self.front.serve_listener(listener, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_net::{duplex_pair, RecvTimeout, SourceAddr};

    fn send_cmd(client: &Duplex, cmd: &str) -> String {
        client.send(cmd.as_bytes()).unwrap();
        String::from_utf8_lossy(
            &client
                .recv(RecvTimeout::After(Duration::from_secs(5)))
                .unwrap(),
        )
        .to_string()
    }

    fn run_session(client: &Duplex, user: &str, pass: &str) {
        let greeting = client
            .recv(RecvTimeout::After(Duration::from_secs(5)))
            .unwrap();
        assert!(greeting.starts_with(b"+OK"));
        assert!(send_cmd(client, &format!("USER {user}")).starts_with("+OK"));
        assert!(send_cmd(client, &format!("PASS {pass}")).starts_with("+OK"));
        assert!(send_cmd(client, "STAT").starts_with("+OK"));
        assert!(send_cmd(client, "QUIT").starts_with("+OK"));
    }

    #[test]
    fn shards_serve_simultaneous_sessions_with_attribution() {
        let server = ShardedPop3::new(
            &MailDb::sample(),
            ShardedPop3Config {
                shards: 3,
                ..ShardedPop3Config::default()
            },
        )
        .unwrap();
        let connections = 9;
        let mut clients = Vec::new();
        let mut server_links = Vec::new();
        for i in 0..connections {
            let (client_link, server_link) = duplex_pair(&format!("c{i}"), &format!("s{i}"));
            server_links.push(server_link);
            clients.push(std::thread::spawn(move || {
                run_session(&client_link, "alice", "wonderland");
            }));
        }
        let reports = server.serve_all(server_links);
        for client in clients {
            client.join().expect("client thread");
        }
        let mut shards_used = std::collections::HashSet::new();
        for report in reports {
            let report = report.expect("session served");
            assert!(report.stats.logged_in, "every session logs in");
            shards_used.insert(report.shard);
        }
        assert_eq!(shards_used.len(), 3, "round-robin uses every shard");
        let sched = server.sched_stats();
        assert_eq!(sched.submitted, connections as u64);
        assert_eq!(sched.completed, connections as u64);
        // One client-handler sthread per connection across the shard
        // kernels.
        assert_eq!(server.kernel_stats().sthreads_created, connections as u64);
    }

    #[test]
    fn listener_affinity_pins_a_host_to_one_shard() {
        let server = ShardedPop3::new(
            &MailDb::sample(),
            ShardedPop3Config {
                shards: 4,
                policy: AcceptPolicy::SessionAffinity,
                ..ShardedPop3Config::default()
            },
        )
        .unwrap();
        let listener = Listener::bind("pop3", 16);
        let mut clients = Vec::new();
        for port in 0..4u16 {
            let link = listener
                .connect(SourceAddr::new([192, 168, 7, 7], 50_000 + port))
                .expect("connect");
            clients.push(std::thread::spawn(move || {
                run_session(&link, "bob", "builder");
            }));
        }
        listener.close();
        let reports = server.serve_listener(&listener, 4);
        for client in clients {
            client.join().expect("client thread");
        }
        let shards: Vec<usize> = reports
            .into_iter()
            .map(|r| r.expect("served").shard)
            .collect();
        assert_eq!(shards.len(), 4);
        assert!(
            shards.windows(2).all(|w| w[0] == w[1]),
            "one host must stick to one shard: {shards:?}"
        );
    }

    #[test]
    fn isolation_holds_per_shard() {
        // The §2 exploit story, via the front-end: a wrong password on one
        // shard neither logs in nor leaks another shard's state.
        let server = ShardedPop3::new(
            &MailDb::sample(),
            ShardedPop3Config {
                shards: 2,
                ..ShardedPop3Config::default()
            },
        )
        .unwrap();
        let (client_link, server_link) = duplex_pair("evil", "s");
        let handle = server.serve(server_link).unwrap();
        let greeting = client_link
            .recv(RecvTimeout::After(Duration::from_secs(5)))
            .unwrap();
        assert!(greeting.starts_with(b"+OK"));
        assert!(send_cmd(&client_link, "USER alice").starts_with("+OK"));
        assert!(send_cmd(&client_link, "PASS wrong").starts_with("-ERR"));
        assert!(send_cmd(&client_link, "RETR 1").starts_with("-ERR not authenticated"));
        send_cmd(&client_link, "QUIT");
        let report = handle.join().expect("session");
        assert!(!report.stats.logged_in);
        assert_eq!(report.stats.retrieved, 0);
    }
}
