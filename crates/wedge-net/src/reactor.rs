//! A readiness-driven reactor over [`Duplex`] links: one sthread drives
//! thousands of idle links instead of one thread each.
//!
//! The pre-reactor serving stack spent a dedicated handler thread per
//! accepted link (`CacheNode`) or parked every idle link in a bounded
//! shard queue (`ShardedFrontEnd`), so per-link memory — a stack per
//! link — was the scale ceiling. The [`Reactor`] inverts that: links
//! register a **ready waker** on their incoming queue
//! ([`Duplex::set_ready_waker`]), the waker enqueues the link's id on
//! the reactor's ready list, and a single parked thread wakes only when
//! some link actually has data (or closed). Sweeps are O(ready events),
//! not O(registered links) — ten thousand idle links cost ten thousand
//! map entries and zero CPU.
//!
//! Two registration modes cover the stack's two consumers:
//!
//! * [`Reactor::register`] — **drain** mode: the reactor owns the link
//!   and calls a handler for every arriving message (and once on close).
//!   `CacheNode` serves its whole accept set this way — decode, apply,
//!   reply, all on the reactor thread.
//! * [`Reactor::watch`] — **readiness** mode: the reactor holds the link
//!   *without touching its messages* and hands it back through a
//!   one-shot callback the first time it becomes readable or closes.
//!   `ShardedFrontEnd` uses this as a `TCP_DEFER_ACCEPT` analogue: an
//!   accepted link enters a shard queue only once the client has
//!   actually sent bytes, so idle links can no longer clog the bounded
//!   queues. [`Reactor::take`] reclaims a still-idle watched link (the
//!   end-of-run flush), atomically against the hand-off.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Condvar, Mutex};

use crate::duplex::{Duplex, NetError};

/// What a drain-mode handler saw on its link.
#[derive(Debug)]
pub enum LinkEvent {
    /// One message arrived (messages are delivered in FIFO order).
    Message(Vec<u8>),
    /// The peer hung up; this is the handler's last call for the link.
    Closed,
}

/// A drain-mode handler's verdict after each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// Keep serving this link.
    Keep,
    /// Deregister and close the link.
    Done,
}

/// Counters a reactor accumulates (snapshot via [`Reactor::stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReactorStats {
    /// Links currently registered (drain + watch), the live gauge.
    pub links: usize,
    /// Readiness events the reactor thread woke up to process.
    pub wakeups: u64,
    /// Messages delivered to drain-mode handlers.
    pub dispatched: u64,
    /// Watched links handed off to their ready callbacks.
    pub handoffs: u64,
}

/// A drain-mode handler, boxed for storage in the registration table.
type DrainHandler = Box<dyn FnMut(&Duplex, LinkEvent) -> LinkVerdict + Send>;

enum Entry {
    Drain {
        link: Arc<Duplex>,
        handler: DrainHandler,
    },
    Watch {
        link: Duplex,
        notify: Box<dyn FnOnce(Duplex) + Send>,
    },
}

/// One registered link. `entry` is `None` while the reactor thread has
/// the link checked out for processing; the slot stays in the map so
/// wakers arriving mid-processing still queue a re-visit.
struct Slot {
    queued: bool,
    entry: Option<Entry>,
}

#[derive(Default)]
struct ReactorState {
    entries: HashMap<u64, Slot>,
    ready: VecDeque<u64>,
    /// Wakers that fired before their entry was inserted (the waker is
    /// installed first so no arrival can be lost); registration drains
    /// this set under the same lock that inserts the entry.
    early_wakes: HashSet<u64>,
}

struct ReactorShared {
    state: Mutex<ReactorState>,
    cv: Condvar,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    wakeups: AtomicU64,
    dispatched: AtomicU64,
    handoffs: AtomicU64,
}

impl ReactorShared {
    /// The waker body: mark the link ready exactly once until the
    /// reactor thread picks it up. Never called with a queue lock held.
    fn mark_ready(&self, id: u64) {
        let mut st = self.state.lock();
        match st.entries.get_mut(&id) {
            Some(slot) => {
                if !slot.queued {
                    slot.queued = true;
                    st.ready.push_back(id);
                    self.cv.notify_one();
                }
            }
            None => {
                // Registration in flight: remember the wake for the
                // insert to replay.
                st.early_wakes.insert(id);
            }
        }
    }

    fn insert(&self, id: u64, entry: Entry) {
        let mut st = self.state.lock();
        let replay = st.early_wakes.remove(&id);
        st.entries.insert(
            id,
            Slot {
                queued: replay,
                entry: Some(entry),
            },
        );
        if replay {
            st.ready.push_back(id);
            self.cv.notify_one();
        }
    }
}

/// The reactor: one thread, any number of registered links. Dropping it
/// shuts it down, closing every still-registered link.
pub struct Reactor {
    shared: Arc<ReactorShared>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Guards idempotent [`Reactor::instrument`].
    telemetry: std::sync::OnceLock<()>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Reactor {
    /// Spawn a reactor; `name` labels its thread in stack traces.
    pub fn spawn(name: &str) -> Reactor {
        let shared = Arc::new(ReactorShared {
            state: Mutex::new(ReactorState::default()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            wakeups: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            handoffs: AtomicU64::new(0),
        });
        let run_shared = shared.clone();
        let thread = std::thread::Builder::new()
            .name(format!("reactor-{name}"))
            .spawn(move || run(&run_shared))
            .expect("spawn reactor thread");
        Reactor {
            shared,
            thread: Mutex::new(Some(thread)),
            telemetry: std::sync::OnceLock::new(),
        }
    }

    fn install_waker(&self, link: &Duplex, id: u64) {
        let weak: Weak<ReactorShared> = Arc::downgrade(&self.shared);
        link.set_ready_waker(Box::new(move || {
            if let Some(shared) = weak.upgrade() {
                shared.mark_ready(id);
            }
        }));
    }

    /// Register a link in **drain** mode: `handler` runs on the reactor
    /// thread for every arriving message, and once with
    /// [`LinkEvent::Closed`] when the peer hangs up. Returning
    /// [`LinkVerdict::Done`] (or the close event) deregisters and closes
    /// the link. Returns the link's registration id.
    pub fn register<H>(&self, link: Arc<Duplex>, handler: H) -> u64
    where
        H: FnMut(&Duplex, LinkEvent) -> LinkVerdict + Send + 'static,
    {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        // Waker first, entry second: a message landing in between is
        // recorded as an early wake and replayed by the insert.
        self.install_waker(&link, id);
        self.shared.insert(
            id,
            Entry::Drain {
                link,
                handler: Box::new(handler),
            },
        );
        id
    }

    /// Register a link in **readiness** mode: the reactor holds the link
    /// untouched and calls `on_ready(link)` (on the reactor thread)
    /// exactly once, the first time the link has pending data or closes.
    /// The link's messages are **not** consumed — the callback gets the
    /// link back intact. Returns the registration id for
    /// [`Reactor::take`].
    pub fn watch<F>(&self, link: Duplex, on_ready: F) -> u64
    where
        F: FnOnce(Duplex) + Send + 'static,
    {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        self.install_waker(&link, id);
        self.shared.insert(
            id,
            Entry::Watch {
                link,
                notify: Box::new(on_ready),
            },
        );
        id
    }

    /// Reclaim a still-idle watched link by its registration id,
    /// atomically against the ready hand-off: exactly one of `take` and
    /// the `on_ready` callback gets the link. `None` if the link was
    /// already handed off (or the id is unknown / drain-mode).
    pub fn take(&self, id: u64) -> Option<Duplex> {
        let link = {
            let mut st = self.shared.state.lock();
            let slot = st.entries.get_mut(&id)?;
            match slot.entry.take() {
                Some(Entry::Watch { link, .. }) => {
                    st.entries.remove(&id);
                    link
                }
                Some(other) => {
                    // Drain-mode links are reactor-owned; put it back.
                    slot.entry = Some(other);
                    return None;
                }
                // Checked out by the reactor thread right now: the
                // hand-off wins.
                None => return None,
            }
        };
        link.clear_ready_waker();
        Some(link)
    }

    /// Links currently registered.
    pub fn links(&self) -> usize {
        self.shared.state.lock().entries.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> ReactorStats {
        ReactorStats {
            links: self.links(),
            wakeups: self.shared.wakeups.load(Ordering::Relaxed),
            dispatched: self.shared.dispatched.load(Ordering::Relaxed),
            handoffs: self.shared.handoffs.load(Ordering::Relaxed),
        }
    }

    /// Register this reactor on `telemetry` (idempotent): a pull
    /// collector exposing `reactor.links` (gauge, summed across
    /// instrumented reactors), `reactor.wakeups`, `reactor.dispatched`
    /// and `reactor.handoffs` (counters). The hot path touches only the
    /// reactor's own atomics — collection happens at snapshot time.
    pub fn instrument(&self, telemetry: &wedge_telemetry::Telemetry) {
        if self.telemetry.set(()).is_err() {
            return;
        }
        let shared = Arc::downgrade(&self.shared);
        telemetry.register_collector(move |sample| {
            let Some(shared) = shared.upgrade() else {
                return;
            };
            let links = shared.state.lock().entries.len();
            sample.gauge("reactor.links", links as u64);
            sample.counter("reactor.wakeups", shared.wakeups.load(Ordering::Relaxed));
            sample.counter(
                "reactor.dispatched",
                shared.dispatched.load(Ordering::Relaxed),
            );
            sample.counter("reactor.handoffs", shared.handoffs.load(Ordering::Relaxed));
        });
    }

    /// Stop the reactor: the thread exits and joins, then every
    /// still-registered link is closed (drain-mode peers observe the
    /// hang-up, exactly like the thread-per-link kill path did).
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(thread) = self.thread.lock().take() {
            let _ = thread.join();
        }
        let entries: Vec<Entry> = {
            let mut st = self.shared.state.lock();
            st.ready.clear();
            st.early_wakes.clear();
            st.entries
                .drain()
                .filter_map(|(_, slot)| slot.entry)
                .collect()
        };
        for entry in entries {
            match entry {
                Entry::Drain { link, .. } => {
                    link.clear_ready_waker();
                    link.close();
                }
                Entry::Watch { link, .. } => {
                    link.clear_ready_waker();
                    link.close();
                }
            }
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The reactor thread: park until some link is ready, check its entry
/// out, process outside the lock, check it back in (or drop it).
fn run(shared: &Arc<ReactorShared>) {
    loop {
        let (id, entry) = {
            let mut st = shared.state.lock();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = st.ready.pop_front() {
                    let Some(slot) = st.entries.get_mut(&id) else {
                        continue; // deregistered since it queued
                    };
                    slot.queued = false;
                    let Some(entry) = slot.entry.take() else {
                        continue; // single-threaded: cannot happen, be safe
                    };
                    break (id, entry);
                }
                shared.cv.wait(&mut st);
            }
        };
        shared.wakeups.fetch_add(1, Ordering::Relaxed);
        match entry {
            Entry::Drain { link, mut handler } => {
                let mut done = false;
                let mut closed = false;
                // Drain until the link would block: wakers coalesce, so
                // one readiness event may cover many messages.
                loop {
                    match link.try_recv() {
                        Ok(msg) => {
                            shared.dispatched.fetch_add(1, Ordering::Relaxed);
                            if handler(&link, LinkEvent::Message(msg)) == LinkVerdict::Done {
                                done = true;
                                break;
                            }
                        }
                        Err(NetError::WouldBlock) => break,
                        Err(_) => {
                            closed = true;
                            break;
                        }
                    }
                }
                if closed {
                    let _ = handler(&link, LinkEvent::Closed);
                }
                if done || closed {
                    link.clear_ready_waker();
                    link.close();
                    let mut st = shared.state.lock();
                    st.entries.remove(&id);
                    st.early_wakes.remove(&id);
                } else {
                    // Check the entry back in; a waker that fired while
                    // it was out already re-queued the id on the slot.
                    let mut st = shared.state.lock();
                    if let Some(slot) = st.entries.get_mut(&id) {
                        slot.entry = Some(Entry::Drain { link, handler });
                    }
                }
            }
            Entry::Watch { link, notify } => {
                {
                    let mut st = shared.state.lock();
                    st.entries.remove(&id);
                    st.early_wakes.remove(&id);
                }
                link.clear_ready_waker();
                shared.handoffs.fetch_add(1, Ordering::Relaxed);
                notify(link);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplex::duplex_pair;
    use crate::RecvTimeout;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn drain_mode_serves_messages_and_replies() {
        let reactor = Reactor::spawn("test");
        let (client, server) = duplex_pair("c", "s");
        reactor.register(Arc::new(server), |link, event| {
            if let LinkEvent::Message(msg) = event {
                let mut reply = msg;
                reply.extend_from_slice(b"-ack");
                let _ = link.send(&reply);
            }
            LinkVerdict::Keep
        });
        client.send(b"one").unwrap();
        client.send(b"two").unwrap();
        assert_eq!(
            client
                .recv(RecvTimeout::After(Duration::from_secs(5)))
                .unwrap(),
            b"one-ack"
        );
        assert_eq!(
            client
                .recv(RecvTimeout::After(Duration::from_secs(5)))
                .unwrap(),
            b"two-ack"
        );
        assert_eq!(reactor.links(), 1);
        assert!(reactor.stats().dispatched >= 2);
    }

    #[test]
    fn messages_sent_before_registration_are_not_lost() {
        let reactor = Reactor::spawn("pre");
        let (client, server) = duplex_pair("c", "s");
        client.send(b"early").unwrap();
        reactor.register(Arc::new(server), |link, event| {
            if let LinkEvent::Message(msg) = event {
                let _ = link.send(&msg);
            }
            LinkVerdict::Keep
        });
        assert_eq!(
            client
                .recv(RecvTimeout::After(Duration::from_secs(5)))
                .unwrap(),
            b"early"
        );
    }

    #[test]
    fn closed_links_deregister_and_fire_the_close_event() {
        let reactor = Reactor::spawn("close");
        let (client, server) = duplex_pair("c", "s");
        let (tx, rx) = mpsc::channel();
        reactor.register(Arc::new(server), move |_link, event| {
            if matches!(event, LinkEvent::Closed) {
                let _ = tx.send(());
            }
            LinkVerdict::Keep
        });
        drop(client);
        rx.recv_timeout(Duration::from_secs(5))
            .expect("close event");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while reactor.links() != 0 {
            assert!(std::time::Instant::now() < deadline, "link never reaped");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn watch_hands_the_link_back_intact_on_first_data() {
        let reactor = Reactor::spawn("watch");
        let (client, server) = duplex_pair("c", "s");
        let (tx, rx) = mpsc::channel();
        reactor.watch(server, move |link| {
            let _ = tx.send(link);
        });
        assert_eq!(reactor.links(), 1);
        client.send(b"hello").unwrap();
        let server = rx.recv_timeout(Duration::from_secs(5)).expect("hand-off");
        // The message was not consumed by the reactor.
        assert_eq!(server.try_recv().unwrap(), b"hello");
        assert_eq!(reactor.links(), 0);
        assert_eq!(reactor.stats().handoffs, 1);
    }

    #[test]
    fn watch_fires_on_close_too() {
        let reactor = Reactor::spawn("watch-close");
        let (client, server) = duplex_pair("c", "s");
        let (tx, rx) = mpsc::channel();
        reactor.watch(server, move |link| {
            let _ = tx.send(link);
        });
        drop(client);
        let server = rx.recv_timeout(Duration::from_secs(5)).expect("hand-off");
        assert_eq!(server.try_recv(), Err(NetError::Disconnected));
    }

    #[test]
    fn take_reclaims_idle_watched_links_exactly_once() {
        let reactor = Reactor::spawn("take");
        let (_client, server) = duplex_pair("c", "s");
        let id = reactor.watch(server, |_link| panic!("never ready"));
        let link = reactor.take(id).expect("still idle");
        assert_eq!(link.name(), "s");
        assert!(reactor.take(id).is_none(), "second take finds nothing");
        assert_eq!(reactor.links(), 0);
    }

    #[test]
    fn one_reactor_holds_many_idle_links_with_no_threads() {
        let reactor = Reactor::spawn("many");
        let mut clients = Vec::new();
        for n in 0..500 {
            let (client, server) = duplex_pair(&format!("c{n}"), "s");
            reactor.register(Arc::new(server), |_l, _e| LinkVerdict::Keep);
            clients.push(client);
        }
        assert_eq!(reactor.links(), 500);
        // Traffic on one link still flows while 499 idle.
        let (tx, rx) = mpsc::channel();
        let (client, server) = duplex_pair("active", "s");
        reactor.register(Arc::new(server), move |_l, event| {
            if let LinkEvent::Message(msg) = event {
                let _ = tx.send(msg);
            }
            LinkVerdict::Keep
        });
        client.send(b"ping").unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            b"ping".to_vec()
        );
    }

    #[test]
    fn shutdown_closes_registered_links() {
        let reactor = Reactor::spawn("bye");
        let (client, server) = duplex_pair("c", "s");
        reactor.register(Arc::new(server), |_l, _e| LinkVerdict::Keep);
        reactor.shutdown();
        assert_eq!(
            client.recv(RecvTimeout::After(Duration::from_secs(5))),
            Err(NetError::Disconnected)
        );
    }
}
