//! Pcap-like capture of link traffic: what crossed the wire, in which
//! direction, and what an interposer did with it.

use crate::mitm::Direction;

/// What happened to a message at the observation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceAction {
    /// The message was passed through unmodified.
    Forwarded,
    /// The message was removed from the path.
    Dropped,
    /// The message was fabricated by the interposer.
    Injected,
}

/// One captured message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Monotonic sequence number within the trace.
    pub seq: u64,
    /// Direction of travel.
    pub direction: Direction,
    /// What the observer did with the message.
    pub action: TraceAction,
    /// The message bytes.
    pub payload: Vec<u8>,
}

impl TraceEntry {
    pub(crate) fn forwarded(direction: Direction, payload: &[u8]) -> Self {
        TraceEntry {
            seq: 0,
            direction,
            action: TraceAction::Forwarded,
            payload: payload.to_vec(),
        }
    }

    pub(crate) fn dropped(direction: Direction, payload: &[u8]) -> Self {
        TraceEntry {
            seq: 0,
            direction,
            action: TraceAction::Dropped,
            payload: payload.to_vec(),
        }
    }

    pub(crate) fn injected(direction: Direction, payload: &[u8]) -> Self {
        TraceEntry {
            seq: 0,
            direction,
            action: TraceAction::Injected,
            payload: payload.to_vec(),
        }
    }
}

/// An ordered capture of messages.
#[derive(Debug, Default, Clone)]
pub struct NetTrace {
    entries: Vec<TraceEntry>,
    next_seq: u64,
}

impl NetTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        NetTrace::default()
    }

    /// Append an entry, assigning it the next sequence number.
    pub fn record(&mut self, mut entry: TraceEntry) {
        entry.seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(entry);
    }

    /// All captured entries in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Total payload bytes captured.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.payload.len() as u64).sum()
    }

    /// Number of messages captured in a given direction.
    pub fn count_in(&self, direction: Direction) -> usize {
        self.entries
            .iter()
            .filter(|e| e.direction == direction)
            .count()
    }

    /// Render a short human-readable summary (used by the examples).
    pub fn summary(&self) -> String {
        format!(
            "{} messages, {} bytes ({} c→s, {} s→c)",
            self.entries.len(),
            self.total_bytes(),
            self.count_in(Direction::ClientToServer),
            self.count_in(Direction::ServerToClient),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_monotonic() {
        let mut t = NetTrace::new();
        t.record(TraceEntry::forwarded(Direction::ClientToServer, b"a"));
        t.record(TraceEntry::injected(Direction::ServerToClient, b"bb"));
        t.record(TraceEntry::dropped(Direction::ClientToServer, b"ccc"));
        let seqs: Vec<u64> = t.entries().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(t.total_bytes(), 6);
        assert_eq!(t.count_in(Direction::ClientToServer), 2);
        assert_eq!(t.count_in(Direction::ServerToClient), 1);
    }

    #[test]
    fn summary_mentions_counts() {
        let mut t = NetTrace::new();
        t.record(TraceEntry::forwarded(Direction::ClientToServer, b"xyz"));
        let s = t.summary();
        assert!(s.contains("1 messages"));
        assert!(s.contains("3 bytes"));
    }
}
