//! The network-facing listener: a simulated accept loop in front of the
//! serving stack.
//!
//! The Wedge evaluation fronts its partitioned servers with an ordinary
//! `accept(2)` loop; the reproduction's equivalent is [`Listener`]. Clients
//! call [`Listener::connect`] with their [`SourceAddr`] and get back their
//! end of a fresh [`Duplex`] link; the server side lands in a **bounded
//! backlog** (a full backlog refuses with [`NetError::Refused`], exactly
//! like a saturated SYN queue) until the serving stack drains it with
//! [`Listener::accept`] or — to amortise wakeups under load —
//! [`Listener::accept_batch`].
//!
//! Every accepted link carries the client's source address, so placement
//! layers can derive **source-address affinity keys**
//! ([`SourceAddr::affinity_key`]) without any protocol cooperation: a
//! client that reconnects from the same host hashes to the same shard even
//! though its ephemeral port changed and it has not yet spoken a byte.
//!
//! [`Listener::bind_rate_limited`] adds **per-source shedding** in front
//! of the backlog: a token bucket per client host (same affinity key), so
//! one flooding host is refused before any link is built instead of
//! monopolising the queue.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use wedge_telemetry::{LinkTrace, SpanKind, Telemetry, TelemetryEvent};

use crate::duplex::{duplex_pair_with_source, Duplex, NetError, RecvTimeout};

/// A simulated client source address (IPv4 host + ephemeral port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceAddr {
    /// The client host's address octets.
    pub host: [u8; 4],
    /// The client's ephemeral port.
    pub port: u16,
}

impl SourceAddr {
    /// A source address from host octets and a port.
    pub fn new(host: [u8; 4], port: u16) -> SourceAddr {
        SourceAddr { host, port }
    }

    /// The affinity key placement layers hash to pick a shard: FNV-1a over
    /// the **host only**. Reconnects from the same host (fresh ephemeral
    /// port) keep the same key, which is what session-affinity placement
    /// needs — the warm state (TLS session, auth context) belongs to the
    /// host, not to one TCP connection.
    pub fn affinity_key(&self) -> u64 {
        crate::duplex::fnv1a(&self.host)
    }
}

impl std::fmt::Display for SourceAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [a, b, c, d] = self.host;
        write!(f, "{a}.{b}.{c}.{d}:{}", self.port)
    }
}

#[derive(Debug, Default)]
struct Backlog {
    /// Queued server-side links, each with its connect-time enqueue stamp
    /// — the start of the request's `accept` span when tracing is on.
    pending: VecDeque<(Duplex, Instant)>,
    closed: bool,
}

/// Per-source connect rate limiting: a token bucket per
/// [`SourceAddr::affinity_key`] (i.e. per client *host* — spraying
/// ephemeral ports does not buy an attacker fresh buckets).
///
/// The backlog bound already refuses a flood once the queue is full, but
/// one aggressive host can fill the whole queue and starve everyone. The
/// limiter sheds per source *before any link is built*: an over-limit
/// connect costs the listener one hash lookup and nothing else — the
/// SYN-flood-shedding posture, one layer up.
#[derive(Debug, Clone, Copy)]
pub struct RateLimitConfig {
    /// Bucket capacity: connects a single host may burst before refusals
    /// start (minimum 1).
    pub burst: u32,
    /// Sustained refill, in connects per second per host. `0.0` means no
    /// refill — each host gets `burst` connects for the listener's
    /// lifetime (useful in tests; production wants a positive rate).
    pub refill_per_sec: f64,
}

impl Default for RateLimitConfig {
    fn default() -> Self {
        RateLimitConfig {
            burst: 32,
            refill_per_sec: 16.0,
        }
    }
}

/// One host's token bucket.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    refilled: Instant,
}

/// The per-source limiter state. Buckets that have refilled back to full
/// behave exactly as absent ones, so they are pruned when the table has
/// grown past `PRUNE_THRESHOLD` — but at most once per `PRUNE_INTERVAL`,
/// so a spoofed-source flood that keeps the table large cannot turn
/// every connect into an O(table) scan under the limiter lock. While
/// refill is positive the table stays bounded in amortised terms; the
/// flood path's steady-state cost remains one hash lookup.
#[derive(Debug)]
struct RateLimiter {
    config: RateLimitConfig,
    buckets: HashMap<u64, TokenBucket>,
    last_prune: Instant,
}

/// Bucket-table size that makes a prune of fully-refilled buckets due.
const PRUNE_THRESHOLD: usize = 1024;

/// Minimum spacing between prune scans (each is O(table)).
const PRUNE_INTERVAL: Duration = Duration::from_millis(250);

impl RateLimiter {
    fn new(config: RateLimitConfig) -> RateLimiter {
        RateLimiter {
            config: RateLimitConfig {
                burst: config.burst.max(1),
                refill_per_sec: config.refill_per_sec.max(0.0),
            },
            buckets: HashMap::new(),
            last_prune: Instant::now(),
        }
    }

    /// Take one token from `key`'s bucket; `false` means over limit.
    fn admit(&mut self, key: u64, now: Instant) -> bool {
        let burst = f64::from(self.config.burst);
        let refill = self.config.refill_per_sec;
        if self.buckets.len() >= PRUNE_THRESHOLD
            && now.duration_since(self.last_prune) >= PRUNE_INTERVAL
        {
            self.last_prune = now;
            self.buckets.retain(|_, bucket| {
                let refilled =
                    bucket.tokens + now.duration_since(bucket.refilled).as_secs_f64() * refill;
                refilled < burst
            });
        }
        let bucket = self.buckets.entry(key).or_insert(TokenBucket {
            tokens: burst,
            refilled: now,
        });
        bucket.tokens =
            (bucket.tokens + now.duration_since(bucket.refilled).as_secs_f64() * refill).min(burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Counters accumulated by a listener.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ListenerStats {
    /// Connections handed to an accept call.
    pub accepted: u64,
    /// Connections refused because the backlog was full (or the listener
    /// closed).
    pub refused: u64,
    /// Accept-batch calls that returned more than one connection (how
    /// often batching actually amortised a wakeup).
    pub batches: u64,
    /// Connections refused by the per-source rate limiter (a subset of
    /// `refused`): the client host's token bucket was empty.
    pub rate_limited: u64,
    /// Connections sitting in the backlog right now.
    pub pending: usize,
}

impl std::ops::AddAssign<&ListenerStats> for ListenerStats {
    /// Field-wise accumulation across listeners (same convention as
    /// `SchedStats`): counters sum, and `pending` — an instantaneous
    /// gauge — also sums, giving the total queued across all listeners.
    /// The exhaustive destructuring (no `..`) makes adding a field
    /// without extending this impl a compile error.
    fn add_assign(&mut self, other: &ListenerStats) {
        let ListenerStats {
            accepted,
            refused,
            batches,
            rate_limited,
            pending,
        } = other;
        self.accepted += accepted;
        self.refused += refused;
        self.batches += batches;
        self.rate_limited += rate_limited;
        self.pending += pending;
    }
}

/// A simulated listening socket: clients connect with a [`SourceAddr`],
/// accepted links queue in a bounded backlog.
#[derive(Debug)]
pub struct Listener {
    name: String,
    backlog: Mutex<Backlog>,
    ready: Condvar,
    capacity: usize,
    limiter: Option<Mutex<RateLimiter>>,
    accepted: AtomicU64,
    refused: AtomicU64,
    batches: AtomicU64,
    rate_limited: AtomicU64,
    seq: AtomicU64,
    /// The telemetry plane this listener reports into, if registered (see
    /// [`Listener::instrument`]). Counters are pulled at snapshot time;
    /// the connect path only touches it to emit lifecycle events, behind
    /// the plane's one-relaxed-load sink gate.
    telemetry: std::sync::OnceLock<Telemetry>,
}

impl Listener {
    /// Bind a listener named `name` with a `backlog`-deep accept queue.
    /// The handle is `Arc`-shared so client threads can connect while the
    /// serving stack accepts.
    pub fn bind(name: &str, backlog: usize) -> Arc<Listener> {
        Listener::build(name, backlog, None)
    }

    /// [`Listener::bind`] with per-source rate limiting: each client
    /// *host* (keyed by [`SourceAddr::affinity_key`], so ephemeral-port
    /// churn shares one bucket) gets a token bucket of `limit.burst`
    /// connects refilling at `limit.refill_per_sec`. An over-limit
    /// connect is refused with [`NetError::Refused`] **before any link is
    /// built** — a flooding host pays the server one hash lookup per
    /// attempt and cannot fill the backlog.
    pub fn bind_rate_limited(name: &str, backlog: usize, limit: RateLimitConfig) -> Arc<Listener> {
        Listener::build(name, backlog, Some(limit))
    }

    fn build(name: &str, backlog: usize, limit: Option<RateLimitConfig>) -> Arc<Listener> {
        Arc::new(Listener {
            name: name.to_string(),
            backlog: Mutex::new(Backlog::default()),
            ready: Condvar::new(),
            capacity: backlog.max(1),
            limiter: limit.map(|config| Mutex::new(RateLimiter::new(config))),
            accepted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            telemetry: std::sync::OnceLock::new(),
        })
    }

    /// Register this listener with a telemetry plane: its counters are
    /// pulled into `listener.accept` / `listener.refused` /
    /// `listener.rate_limited` / `listener.batches` (and the
    /// `listener.pending` gauge) at snapshot time, and connect outcomes
    /// emit [`TelemetryEvent::Accepted`]/[`TelemetryEvent::Refused`] when
    /// a sink is installed. Idempotent; the collector holds the listener
    /// weakly, so a dropped listener falls out of later snapshots.
    pub fn instrument(self: &Arc<Listener>, telemetry: &Telemetry) {
        if self.telemetry.set(telemetry.clone()).is_err() {
            return;
        }
        let listener = Arc::downgrade(self);
        telemetry.register_collector(move |sample| {
            let Some(listener) = listener.upgrade() else {
                return;
            };
            let stats = listener.stats();
            sample.counter("listener.accept", stats.accepted);
            sample.counter("listener.refused", stats.refused);
            sample.counter("listener.rate_limited", stats.rate_limited);
            sample.counter("listener.batches", stats.batches);
            sample.gauge("listener.pending", stats.pending as u64);
        });
    }

    /// Emit a lifecycle event if a telemetry plane with a live sink is
    /// attached; a single relaxed load otherwise.
    fn emit(&self, make: impl FnOnce(&str) -> TelemetryEvent) {
        if let Some(telemetry) = self.telemetry.get() {
            telemetry.emit_with(|| make(&self.name));
        }
    }

    /// The listener's name (used in accepted endpoints' trace names).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Connect from `source`: creates a fresh link, queues the server end
    /// in the backlog and returns the client end. Both ends carry
    /// `source`. Refuses with [`NetError::Refused`] when the backlog is
    /// full and with [`NetError::Disconnected`] once the listener closed.
    pub fn connect(&self, source: SourceAddr) -> Result<Duplex, NetError> {
        // Check the backlog before building anything: a connect flood
        // against a full queue (the scenario the refusal models) must not
        // pay the link-construction cost per refused attempt.
        let mut backlog = self.backlog.lock();
        // Closure wins over everything: `Disconnected` is the permanent
        // "listener is gone, fail over" signal, and it must not be masked
        // by the limiter's transient `Refused` (nor cost a token).
        if backlog.closed {
            self.refused.fetch_add(1, Ordering::Relaxed);
            self.emit(|listener| TelemetryEvent::Refused {
                listener: listener.to_string(),
                rate_limited: false,
            });
            return Err(NetError::Disconnected);
        }
        // Per-source shedding next: an over-limit host is refused before
        // a backlog slot is considered, let alone a link built. (Lock
        // order backlog → limiter; connect is the only path taking both.)
        if let Some(limiter) = &self.limiter {
            if !limiter.lock().admit(source.affinity_key(), Instant::now()) {
                self.rate_limited.fetch_add(1, Ordering::Relaxed);
                self.refused.fetch_add(1, Ordering::Relaxed);
                self.emit(|listener| TelemetryEvent::Refused {
                    listener: listener.to_string(),
                    rate_limited: true,
                });
                return Err(NetError::Refused);
            }
        }
        if backlog.pending.len() >= self.capacity {
            self.refused.fetch_add(1, Ordering::Relaxed);
            self.emit(|listener| TelemetryEvent::Refused {
                listener: listener.to_string(),
                rate_limited: false,
            });
            return Err(NetError::Refused);
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let (client, server) =
            duplex_pair_with_source(source, &source.to_string(), &format!("{}#{seq}", self.name));
        backlog.pending.push_back((server, Instant::now()));
        drop(backlog);
        self.ready.notify_one();
        self.emit(|listener| TelemetryEvent::Accepted {
            listener: listener.to_string(),
        });
        Ok(client)
    }

    /// Accept one connection, blocking according to `timeout`. A closed
    /// listener drains its remaining backlog first, then reports
    /// [`NetError::Disconnected`] — no queued connection is ever lost.
    pub fn accept(&self, timeout: RecvTimeout) -> Result<Duplex, NetError> {
        self.accept_batch(1, timeout)
            .map(|mut links| links.pop().expect("accept_batch(1, ..) returns one link"))
    }

    /// Accept up to `max` connections in one call: blocks (per `timeout`)
    /// until at least one connection is available, then drains whatever
    /// else is already queued, up to `max`. Batching amortises the
    /// wakeup/submission cost of a busy accept loop.
    pub fn accept_batch(&self, max: usize, timeout: RecvTimeout) -> Result<Vec<Duplex>, NetError> {
        let max = max.max(1);
        let mut backlog = self.backlog.lock();
        loop {
            if !backlog.pending.is_empty() {
                let take = backlog.pending.len().min(max);
                let drained: Vec<(Duplex, Instant)> = backlog.pending.drain(..take).collect();
                drop(backlog);
                self.accepted
                    .fetch_add(drained.len() as u64, Ordering::Relaxed);
                if drained.len() > 1 {
                    self.batches.fetch_add(1, Ordering::Relaxed);
                }
                // Accept is where a request's trace is born: mint the root
                // context, record the backlog-wait (`accept`) span, and
                // stamp the link so the serving stack joins the same tree.
                let tracer = self.telemetry.get().and_then(Telemetry::tracer);
                let links = drained
                    .into_iter()
                    .map(|(mut link, enqueued)| {
                        if let Some(tracer) = &tracer {
                            let root = tracer.begin_root();
                            let enqueued_ns = tracer.stamp(enqueued);
                            let accept = tracer.child_of(root);
                            tracer.record(
                                accept,
                                SpanKind::Accept,
                                enqueued_ns,
                                tracer.now_ns(),
                                true,
                                0,
                            );
                            link.set_trace(LinkTrace {
                                ctx: root,
                                root_start_ns: enqueued_ns,
                            });
                        }
                        link
                    })
                    .collect();
                return Ok(links);
            }
            if backlog.closed {
                return Err(NetError::Disconnected);
            }
            match timeout {
                RecvTimeout::Forever => self.ready.wait(&mut backlog),
                RecvTimeout::After(d) => {
                    if self.ready.wait_for(&mut backlog, d).timed_out()
                        && backlog.pending.is_empty()
                        && !backlog.closed
                    {
                        return Err(NetError::Timeout);
                    }
                }
            }
        }
    }

    /// Close the listener: new connects are refused; accepts drain the
    /// remaining backlog and then report [`NetError::Disconnected`].
    pub fn close(&self) {
        let mut backlog = self.backlog.lock();
        backlog.closed = true;
        drop(backlog);
        self.ready.notify_all();
    }

    /// Counters so far.
    pub fn stats(&self) -> ListenerStats {
        ListenerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            pending: self.backlog.lock().pending.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn addr(last: u8, port: u16) -> SourceAddr {
        SourceAddr::new([10, 0, 0, last], port)
    }

    #[test]
    fn connect_accept_round_trip_carries_the_source_addr() {
        let listener = Listener::bind("pop3", 8);
        let client = listener.connect(addr(7, 40001)).unwrap();
        let server = listener.accept(RecvTimeout::Forever).unwrap();
        assert_eq!(server.source(), Some(addr(7, 40001)));
        assert_eq!(client.source(), Some(addr(7, 40001)));
        client.send(b"hello").unwrap();
        assert_eq!(server.recv(RecvTimeout::Forever).unwrap(), b"hello");
        assert_eq!(listener.stats().accepted, 1);
    }

    #[test]
    fn affinity_key_ignores_the_ephemeral_port() {
        let first = addr(9, 40001).affinity_key();
        let reconnect = addr(9, 51313).affinity_key();
        let other_host = addr(10, 40001).affinity_key();
        assert_eq!(first, reconnect, "same host, new port: same key");
        assert_ne!(first, other_host, "different hosts must diverge");
    }

    #[test]
    fn full_backlog_refuses_like_a_syn_queue() {
        let listener = Listener::bind("busy", 2);
        let _a = listener.connect(addr(1, 1)).unwrap();
        let _b = listener.connect(addr(2, 2)).unwrap();
        assert_eq!(listener.connect(addr(3, 3)).unwrap_err(), NetError::Refused);
        assert_eq!(listener.stats().refused, 1);
        // Draining the backlog frees a slot.
        let _ = listener.accept(RecvTimeout::Forever).unwrap();
        assert!(listener.connect(addr(3, 3)).is_ok());
    }

    #[test]
    fn accept_batch_drains_whatever_is_queued() {
        let listener = Listener::bind("batchy", 16);
        let _clients: Vec<_> = (0..5)
            .map(|i| listener.connect(addr(i, 100 + u16::from(i))).unwrap())
            .collect();
        let batch = listener
            .accept_batch(4, RecvTimeout::Forever)
            .expect("batch");
        assert_eq!(batch.len(), 4, "drains up to max in one call");
        let rest = listener
            .accept_batch(4, RecvTimeout::Forever)
            .expect("rest");
        assert_eq!(rest.len(), 1);
        let stats = listener.stats();
        assert_eq!(stats.accepted, 5);
        assert_eq!(stats.batches, 1, "only the 4-link call counts as a batch");
    }

    #[test]
    fn close_drains_the_backlog_before_disconnecting() {
        let listener = Listener::bind("closing", 8);
        let _c = listener.connect(addr(1, 1)).unwrap();
        listener.close();
        assert_eq!(
            listener.connect(addr(2, 2)).unwrap_err(),
            NetError::Disconnected
        );
        // The already-queued connection is still delivered...
        assert!(listener.accept(RecvTimeout::Forever).is_ok());
        // ...then the closure is visible.
        assert_eq!(
            listener.accept(RecvTimeout::Forever).unwrap_err(),
            NetError::Disconnected
        );
    }

    #[test]
    fn accept_times_out_while_open_and_empty() {
        let listener = Listener::bind("quiet", 4);
        let err = listener
            .accept(RecvTimeout::After(Duration::from_millis(10)))
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
    }

    #[test]
    fn rate_limiter_sheds_a_bursting_host_before_the_backlog() {
        let listener = Listener::bind_rate_limited(
            "limited",
            64,
            RateLimitConfig {
                burst: 2,
                refill_per_sec: 0.0,
            },
        );
        // Two connects within the burst pass; the third is refused even
        // though the 64-deep backlog is nearly empty — and a fresh
        // ephemeral port does not buy a fresh bucket.
        let _a = listener.connect(addr(1, 40_000)).unwrap();
        let _b = listener.connect(addr(1, 40_001)).unwrap();
        assert_eq!(
            listener.connect(addr(1, 40_002)).unwrap_err(),
            NetError::Refused
        );
        let stats = listener.stats();
        assert_eq!(stats.rate_limited, 1);
        assert_eq!(stats.refused, 1, "rate-limited refusals count as refused");
        assert_eq!(stats.pending, 2, "the backlog never saw the third SYN");
    }

    #[test]
    fn rate_limiter_tracks_each_source_host_independently() {
        let listener = Listener::bind_rate_limited(
            "per-host",
            64,
            RateLimitConfig {
                burst: 1,
                refill_per_sec: 0.0,
            },
        );
        assert!(listener.connect(addr(1, 1)).is_ok());
        assert_eq!(listener.connect(addr(1, 2)).unwrap_err(), NetError::Refused);
        // A different host has its own untouched bucket.
        assert!(listener.connect(addr(2, 1)).is_ok());
        assert_eq!(listener.stats().rate_limited, 1);
    }

    #[test]
    fn rate_limiter_refills_over_time() {
        let listener = Listener::bind_rate_limited(
            "refilling",
            64,
            RateLimitConfig {
                burst: 1,
                refill_per_sec: 200.0,
            },
        );
        assert!(listener.connect(addr(3, 1)).is_ok());
        assert_eq!(listener.connect(addr(3, 2)).unwrap_err(), NetError::Refused);
        // 200 tokens/sec ⇒ one token back within ~5ms; wait generously.
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            listener.connect(addr(3, 3)).is_ok(),
            "the bucket must refill at the configured rate"
        );
    }

    #[test]
    fn rate_limited_connects_never_consume_backlog_slots() {
        // Backlog of 1 plus a limiter: the flood is shed by the limiter,
        // so the one legitimate queued connection still gets accepted.
        let listener = Listener::bind_rate_limited(
            "tight",
            1,
            RateLimitConfig {
                burst: 1,
                refill_per_sec: 0.0,
            },
        );
        let _legit = listener.connect(addr(9, 1)).unwrap();
        for port in 0..100u16 {
            assert!(listener.connect(addr(9, 2000 + port)).is_err());
        }
        assert_eq!(listener.stats().rate_limited, 100);
        let served = listener.accept(RecvTimeout::Forever).unwrap();
        assert_eq!(served.source(), Some(addr(9, 1)));
    }

    #[test]
    fn closed_listener_reports_disconnected_even_when_over_limit() {
        // `Disconnected` (permanent: fail over) must not be masked by the
        // limiter's transient `Refused` — and a dead listener's refusals
        // must not drain the host's bucket.
        let listener = Listener::bind_rate_limited(
            "closing-limited",
            8,
            RateLimitConfig {
                burst: 1,
                refill_per_sec: 0.0,
            },
        );
        let _only = listener.connect(addr(6, 1)).unwrap();
        assert_eq!(listener.connect(addr(6, 2)).unwrap_err(), NetError::Refused);
        listener.close();
        assert_eq!(
            listener.connect(addr(6, 3)).unwrap_err(),
            NetError::Disconnected,
            "closure wins over the rate limit"
        );
        assert_eq!(
            listener.connect(addr(7, 1)).unwrap_err(),
            NetError::Disconnected,
            "closure wins even with a full bucket"
        );
        assert_eq!(listener.stats().rate_limited, 1);
    }

    #[test]
    fn unlimited_listener_reports_zero_rate_limited() {
        let listener = Listener::bind("open", 8);
        let _c = listener.connect(addr(5, 5)).unwrap();
        assert_eq!(listener.stats().rate_limited, 0);
    }

    #[test]
    fn accept_mints_a_root_trace_when_a_tracer_is_installed() {
        let listener = Listener::bind("traced", 8);
        let telemetry = Telemetry::new();
        listener.instrument(&telemetry);
        let _untraced_client = listener.connect(addr(1, 1)).unwrap();
        let untraced = listener.accept(RecvTimeout::Forever).unwrap();
        assert!(untraced.trace().is_none(), "no tracer: no stamp");

        telemetry.install_tracer(wedge_telemetry::Tracer::new(
            wedge_telemetry::TracerConfig::default(),
        ));
        let _client = listener.connect(addr(1, 2)).unwrap();
        let server = listener.accept(RecvTimeout::Forever).unwrap();
        let trace = server.trace().expect("accept stamps the link");
        assert_eq!(trace.ctx.parent_id, 0, "the link carries the root span");
        assert_eq!(
            telemetry.snapshot().counter("trace.started"),
            1,
            "one trace minted"
        );
        assert_eq!(
            telemetry
                .snapshot()
                .histogram("trace.accept")
                .expect("accept span histogram")
                .count,
            1,
            "the backlog-wait span was recorded"
        );
    }

    #[test]
    fn accept_unblocks_across_threads() {
        let listener = Listener::bind("threaded", 4);
        let acceptor = listener.clone();
        let handle = std::thread::spawn(move || acceptor.accept(RecvTimeout::Forever));
        std::thread::sleep(Duration::from_millis(10));
        let _client = listener.connect(addr(4, 4)).unwrap();
        let server = handle.join().unwrap().unwrap();
        assert_eq!(server.source(), Some(addr(4, 4)));
    }
}
