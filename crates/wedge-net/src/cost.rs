//! Analytical link cost model.
//!
//! The paper's Table 2 measurements run over "a 1 Gbps Ethernet" with four
//! client machines. Our links are in-memory and effectively free, so the
//! Table 2 harness uses this model to convert the *observed* message counts
//! and byte volumes of a run into a simulated network time, which is then
//! added to the measured CPU time. Only the relative comparison between the
//! vanilla and Wedge-partitioned servers matters; both use the same model.

use std::time::Duration;

use crate::duplex::TrafficCounters;

/// A simple latency + bandwidth link model.
#[derive(Debug, Clone, Copy)]
pub struct LinkCostModel {
    /// One-way propagation + per-message processing latency.
    pub per_message_latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl Default for LinkCostModel {
    fn default() -> Self {
        LinkCostModel::gigabit_lan()
    }
}

impl LinkCostModel {
    /// A 1 Gbps LAN with ~60 µs per-message overhead, approximating the
    /// paper's testbed.
    pub fn gigabit_lan() -> Self {
        LinkCostModel {
            per_message_latency: Duration::from_micros(60),
            bandwidth_bytes_per_sec: 125_000_000,
        }
    }

    /// An ideal, free link (used to isolate CPU cost in ablations).
    pub fn free() -> Self {
        LinkCostModel {
            per_message_latency: Duration::ZERO,
            bandwidth_bytes_per_sec: u64::MAX,
        }
    }

    /// Simulated time to move `bytes` across the link in `messages` messages.
    pub fn transfer_time(&self, messages: u64, bytes: u64) -> Duration {
        let serialization = if self.bandwidth_bytes_per_sec == u64::MAX {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec as f64)
        };
        self.per_message_latency * (messages as u32) + serialization
    }

    /// Simulated time for the traffic an endpoint has sent.
    pub fn send_time(&self, counters: &TrafficCounters) -> Duration {
        self.transfer_time(counters.messages_sent, counters.bytes_sent)
    }

    /// Simulated time for an endpoint's total traffic (sent + received).
    pub fn total_time(&self, counters: &TrafficCounters) -> Duration {
        self.transfer_time(
            counters.messages_sent + counters.messages_received,
            counters.bytes_sent + counters.bytes_received,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_link_costs_nothing() {
        let m = LinkCostModel::free();
        assert_eq!(m.transfer_time(100, 1_000_000), Duration::ZERO);
    }

    #[test]
    fn gigabit_costs_scale_with_messages_and_bytes() {
        let m = LinkCostModel::gigabit_lan();
        let small = m.transfer_time(1, 100);
        let more_messages = m.transfer_time(10, 100);
        let more_bytes = m.transfer_time(1, 10_000_000);
        assert!(more_messages > small);
        assert!(more_bytes > small);
    }

    #[test]
    fn ten_megabytes_takes_under_a_second_on_gigabit() {
        // Sanity check against the paper's 10 MB scp taking ~0.37 s.
        let m = LinkCostModel::gigabit_lan();
        let t = m.transfer_time(200, 10 * 1024 * 1024);
        assert!(t < Duration::from_secs(1));
        assert!(t > Duration::from_millis(10));
    }

    #[test]
    fn endpoint_counter_helpers() {
        let m = LinkCostModel::gigabit_lan();
        let counters = TrafficCounters {
            messages_sent: 2,
            bytes_sent: 2000,
            messages_received: 1,
            bytes_received: 500,
        };
        assert!(m.total_time(&counters) > m.send_time(&counters));
    }
}
