//! Bidirectional, message-oriented in-memory links.
//!
//! A [`Duplex`] endpoint sends discrete messages (byte vectors) to its peer
//! and receives the peer's messages in FIFO order. Endpoints are cheap to
//! move across threads, which is how server compartments (sthreads) in the
//! application reproductions own "their" connection file descriptor.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::listener::SourceAddr;

/// Errors produced by link operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer endpoint has been dropped; no more data will ever arrive.
    Disconnected,
    /// A blocking receive timed out.
    Timeout,
    /// The endpoint has no queued message (non-blocking receive only).
    WouldBlock,
    /// A listener refused the connection (backlog full).
    Refused,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::WouldBlock => write!(f, "no message available"),
            NetError::Refused => write!(f, "connection refused (backlog full)"),
        }
    }
}

impl std::error::Error for NetError {}

/// How long a blocking receive may wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeout {
    /// Wait indefinitely (until the peer disconnects).
    Forever,
    /// Wait at most this long.
    After(Duration),
}

#[derive(Debug, Default)]
struct QueueState {
    messages: VecDeque<Vec<u8>>,
    closed: bool,
}

/// Callback a readiness-driven consumer (`crate::reactor::Reactor`)
/// installs on an endpoint's incoming queue: fired after every message
/// arrival and on close, never with any queue lock held.
pub type ReadyWaker = Box<dyn Fn() + Send + Sync>;

/// One direction of a duplex link.
struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
    /// Readiness hook, outside `state` so firing it (which may take a
    /// reactor's locks) never happens under a queue lock.
    waker: Mutex<Option<ReadyWaker>>,
}

impl std::fmt::Debug for Queue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Queue")
            .field("state", &self.state)
            .field("waker", &self.waker.lock().is_some())
            .finish()
    }
}

impl Queue {
    fn new() -> Arc<Self> {
        Arc::new(Queue {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
            waker: Mutex::new(None),
        })
    }

    fn push(&self, msg: Vec<u8>) -> Result<(), NetError> {
        {
            let mut st = self.state.lock();
            if st.closed {
                return Err(NetError::Disconnected);
            }
            st.messages.push_back(msg);
            self.ready.notify_one();
        }
        self.wake();
        Ok(())
    }

    /// Fire the installed waker, if any. Called with the state lock
    /// released, so a waker may take arbitrary consumer-side locks.
    fn wake(&self) {
        let waker = self.waker.lock();
        if let Some(waker) = waker.as_ref() {
            waker();
        }
    }

    /// Install `waker`, then re-check the queue: if messages are already
    /// pending (or the queue is closed) the waker fires immediately, so
    /// installation can never lose a wakeup. Install-then-check pairs
    /// with [`Queue::push`]'s mutate-then-fire: a push that misses the
    /// waker happened before installation, and the re-check sees its
    /// message.
    fn set_waker(&self, waker: ReadyWaker) {
        *self.waker.lock() = Some(waker);
        let fire = {
            let st = self.state.lock();
            !st.messages.is_empty() || st.closed
        };
        if fire {
            self.wake();
        }
    }

    fn clear_waker(&self) {
        *self.waker.lock() = None;
    }

    fn pop(&self, timeout: RecvTimeout) -> Result<Vec<u8>, NetError> {
        let mut st = self.state.lock();
        loop {
            if let Some(msg) = st.messages.pop_front() {
                return Ok(msg);
            }
            if st.closed {
                return Err(NetError::Disconnected);
            }
            match timeout {
                RecvTimeout::Forever => self.ready.wait(&mut st),
                RecvTimeout::After(d) => {
                    if self.ready.wait_for(&mut st, d).timed_out() {
                        return if st.messages.is_empty() && !st.closed {
                            Err(NetError::Timeout)
                        } else {
                            continue;
                        };
                    }
                }
            }
        }
    }

    fn try_pop(&self) -> Result<Vec<u8>, NetError> {
        let mut st = self.state.lock();
        if let Some(msg) = st.messages.pop_front() {
            Ok(msg)
        } else if st.closed {
            Err(NetError::Disconnected)
        } else {
            Err(NetError::WouldBlock)
        }
    }

    fn close(&self) {
        {
            let mut st = self.state.lock();
            st.closed = true;
            self.ready.notify_all();
        }
        self.wake();
    }

    fn pending(&self) -> usize {
        self.state.lock().messages.len()
    }
}

/// Per-endpoint traffic counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TrafficCounters {
    /// Messages sent from this endpoint.
    pub messages_sent: u64,
    /// Bytes sent from this endpoint.
    pub bytes_sent: u64,
    /// Messages received by this endpoint.
    pub messages_received: u64,
    /// Bytes received by this endpoint.
    pub bytes_received: u64,
}

/// One endpoint of a bidirectional message link.
#[derive(Debug)]
pub struct Duplex {
    /// Messages we send travel to the peer through this queue.
    outgoing: Arc<Queue>,
    /// Messages from the peer arrive here.
    incoming: Arc<Queue>,
    counters: Mutex<TrafficCounters>,
    /// Human-readable endpoint name, used in traces.
    name: String,
    /// The client's source address, when the link came through a
    /// [`crate::Listener`]; `None` for bare `duplex_pair` links.
    source: Option<SourceAddr>,
    /// The root trace context this link carries, stamped at
    /// [`crate::Listener`] accept when a tracer is installed; `None`
    /// otherwise. Rides with the endpoint so whichever shard worker later
    /// serves the link can hang its spans under the right root.
    trace: Option<wedge_telemetry::LinkTrace>,
}

impl Duplex {
    /// Send one message to the peer.
    pub fn send(&self, msg: &[u8]) -> Result<(), NetError> {
        self.outgoing.push(msg.to_vec())?;
        let mut c = self.counters.lock();
        c.messages_sent += 1;
        c.bytes_sent += msg.len() as u64;
        Ok(())
    }

    /// Receive the next message, blocking according to `timeout`.
    pub fn recv(&self, timeout: RecvTimeout) -> Result<Vec<u8>, NetError> {
        let msg = self.incoming.pop(timeout)?;
        let mut c = self.counters.lock();
        c.messages_received += 1;
        c.bytes_received += msg.len() as u64;
        Ok(msg)
    }

    /// Receive the next message without blocking.
    pub fn try_recv(&self) -> Result<Vec<u8>, NetError> {
        let msg = self.incoming.try_pop()?;
        let mut c = self.counters.lock();
        c.messages_received += 1;
        c.bytes_received += msg.len() as u64;
        Ok(msg)
    }

    /// Number of messages queued and not yet received by this endpoint.
    pub fn pending(&self) -> usize {
        self.incoming.pending()
    }

    /// Install a readiness waker on this endpoint's incoming queue: it
    /// fires after every arriving message and when the link closes,
    /// always with the queue's locks released. If data is already
    /// pending (or the link already closed) the waker fires immediately,
    /// so installation can never lose a wakeup. One waker per endpoint;
    /// installing replaces the previous one. This is the hook
    /// [`crate::Reactor`] drives thousands of idle links through.
    pub fn set_ready_waker(&self, waker: ReadyWaker) {
        self.incoming.set_waker(waker);
    }

    /// Remove the installed readiness waker, if any.
    pub fn clear_ready_waker(&self) {
        self.incoming.clear_waker();
    }

    /// Close this endpoint: the peer's receives will drain remaining
    /// messages and then report [`NetError::Disconnected`].
    pub fn close(&self) {
        self.outgoing.close();
        self.incoming.close();
    }

    /// Traffic counters accumulated by this endpoint.
    pub fn counters(&self) -> TrafficCounters {
        *self.counters.lock()
    }

    /// The endpoint's name (for traces and debugging).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The client's source address, when known (links accepted through a
    /// [`crate::Listener`] always carry one).
    pub fn source(&self) -> Option<SourceAddr> {
        self.source
    }

    /// Stamp this endpoint with its request's root trace context (done by
    /// [`crate::Listener`] accept paths; links not accepted through a
    /// traced listener carry none).
    pub fn set_trace(&mut self, trace: wedge_telemetry::LinkTrace) {
        self.trace = Some(trace);
    }

    /// The root trace context stamped at accept, if any.
    pub fn trace(&self) -> Option<wedge_telemetry::LinkTrace> {
        self.trace
    }

    /// The affinity key placement layers should hash for this link: the
    /// source address's host key when the link carries one, else FNV-1a
    /// over the endpoint name (stable for clients that reconnect under the
    /// same name).
    pub fn affinity_key(&self) -> u64 {
        match self.source {
            Some(source) => source.affinity_key(),
            None => fnv1a(self.name.as_bytes()),
        }
    }
}

/// FNV-1a over a byte string — the stable hash behind every affinity key
/// in the stack (endpoint names here, host octets in
/// [`SourceAddr::affinity_key`], explicit keys in `wedge-sched`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

impl Drop for Duplex {
    fn drop(&mut self) {
        self.outgoing.close();
        self.incoming.close();
    }
}

/// Create a connected pair of endpoints, `(a, b)`: everything sent on `a`
/// arrives at `b` and vice versa.
pub fn duplex_pair(name_a: &str, name_b: &str) -> (Duplex, Duplex) {
    pair(name_a, name_b, None)
}

/// [`duplex_pair`], with both endpoints stamped with the client's
/// [`SourceAddr`] — what [`crate::Listener::connect`] builds.
pub fn duplex_pair_with_source(source: SourceAddr, name_a: &str, name_b: &str) -> (Duplex, Duplex) {
    pair(name_a, name_b, Some(source))
}

fn pair(name_a: &str, name_b: &str, source: Option<SourceAddr>) -> (Duplex, Duplex) {
    let ab = Queue::new();
    let ba = Queue::new();
    (
        Duplex {
            outgoing: ab.clone(),
            incoming: ba.clone(),
            counters: Mutex::new(TrafficCounters::default()),
            name: name_a.to_string(),
            source,
            trace: None,
        },
        Duplex {
            outgoing: ba,
            incoming: ab,
            counters: Mutex::new(TrafficCounters::default()),
            name: name_b.to_string(),
            source,
            trace: None,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn messages_flow_both_ways_in_order() {
        let (a, b) = duplex_pair("client", "server");
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        b.send(b"ack").unwrap();
        assert_eq!(b.recv(RecvTimeout::Forever).unwrap(), b"one");
        assert_eq!(b.recv(RecvTimeout::Forever).unwrap(), b"two");
        assert_eq!(a.recv(RecvTimeout::Forever).unwrap(), b"ack");
    }

    #[test]
    fn try_recv_reports_would_block() {
        let (a, b) = duplex_pair("a", "b");
        assert_eq!(a.try_recv(), Err(NetError::WouldBlock));
        b.send(b"x").unwrap();
        assert_eq!(a.try_recv().unwrap(), b"x");
    }

    #[test]
    fn recv_times_out() {
        let (a, _b) = duplex_pair("a", "b");
        let err = a
            .recv(RecvTimeout::After(Duration::from_millis(10)))
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
    }

    #[test]
    fn dropping_peer_disconnects() {
        let (a, b) = duplex_pair("a", "b");
        b.send(b"last").unwrap();
        drop(b);
        // Already-queued data still drains...
        assert_eq!(a.recv(RecvTimeout::Forever).unwrap(), b"last");
        // ...then the disconnect is visible.
        assert_eq!(a.recv(RecvTimeout::Forever), Err(NetError::Disconnected));
        assert_eq!(a.send(b"x"), Err(NetError::Disconnected));
    }

    #[test]
    fn counters_track_traffic() {
        let (a, b) = duplex_pair("a", "b");
        a.send(&[0u8; 100]).unwrap();
        a.send(&[0u8; 50]).unwrap();
        b.recv(RecvTimeout::Forever).unwrap();
        let ca = a.counters();
        assert_eq!(ca.messages_sent, 2);
        assert_eq!(ca.bytes_sent, 150);
        let cb = b.counters();
        assert_eq!(cb.messages_received, 1);
        assert_eq!(cb.bytes_received, 100);
    }

    #[test]
    fn works_across_threads() {
        let (a, b) = duplex_pair("client", "server");
        let handle = std::thread::spawn(move || {
            let req = b.recv(RecvTimeout::Forever).unwrap();
            b.send(&[req, b" world".to_vec()].concat()).unwrap();
        });
        a.send(b"hello").unwrap();
        assert_eq!(a.recv(RecvTimeout::Forever).unwrap(), b"hello world");
        handle.join().unwrap();
    }

    #[test]
    fn pending_counts_queued_messages() {
        let (a, b) = duplex_pair("a", "b");
        assert_eq!(b.pending(), 0);
        a.send(b"1").unwrap();
        a.send(b"2").unwrap();
        assert_eq!(b.pending(), 2);
        b.recv(RecvTimeout::Forever).unwrap();
        assert_eq!(b.pending(), 1);
    }
}
