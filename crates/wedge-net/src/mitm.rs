//! Man-in-the-middle interposer.
//!
//! §5.1.2 threat model: "the attacker interposes himself between a
//! legitimate client and the server, and can eavesdrop on, forward, and
//! inject messages between them." [`Mitm`] holds the attacker-side ends of
//! two links (one towards the client, one towards the server) and exposes
//! exactly those verbs. The attack harnesses in `wedge-apache` drive it
//! explicitly (message by message) so tests are deterministic.

use crate::duplex::{duplex_pair, Duplex, NetError, RecvTimeout};
use crate::trace::{NetTrace, TraceEntry};

/// Direction of a forwarded or injected message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From the legitimate client towards the server.
    ClientToServer,
    /// From the server towards the legitimate client.
    ServerToClient,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::ClientToServer => Direction::ServerToClient,
            Direction::ServerToClient => Direction::ClientToServer,
        }
    }
}

/// A man-in-the-middle attacker holding the middle of a client↔server path.
#[derive(Debug)]
pub struct Mitm {
    /// Link towards the client (the client believes this is the server).
    to_client: Duplex,
    /// Link towards the server (the server believes this is the client).
    to_server: Duplex,
    /// Everything the attacker has observed.
    observed: NetTrace,
}

impl Mitm {
    /// Interpose an attacker on a fresh client↔server path. Returns
    /// `(client_endpoint, mitm, server_endpoint)`.
    pub fn interpose() -> (Duplex, Mitm, Duplex) {
        let (client_end, attacker_client_side) = duplex_pair("client", "mitm-facing-client");
        let (attacker_server_side, server_end) = duplex_pair("mitm-facing-server", "server");
        (
            client_end,
            Mitm {
                to_client: attacker_client_side,
                to_server: attacker_server_side,
                observed: NetTrace::new(),
            },
            server_end,
        )
    }

    /// Forward one pending message in `dir`, recording a copy. Returns the
    /// forwarded bytes, or an error if nothing is pending / the path closed.
    pub fn forward_one(&mut self, dir: Direction) -> Result<Vec<u8>, NetError> {
        let msg = match dir {
            Direction::ClientToServer => self.to_client.try_recv()?,
            Direction::ServerToClient => self.to_server.try_recv()?,
        };
        self.observed.record(TraceEntry::forwarded(dir, &msg));
        match dir {
            Direction::ClientToServer => self.to_server.send(&msg)?,
            Direction::ServerToClient => self.to_client.send(&msg)?,
        }
        Ok(msg)
    }

    /// Forward one pending message, blocking until one arrives.
    pub fn forward_one_blocking(
        &mut self,
        dir: Direction,
        timeout: RecvTimeout,
    ) -> Result<Vec<u8>, NetError> {
        let msg = match dir {
            Direction::ClientToServer => self.to_client.recv(timeout)?,
            Direction::ServerToClient => self.to_server.recv(timeout)?,
        };
        self.observed.record(TraceEntry::forwarded(dir, &msg));
        match dir {
            Direction::ClientToServer => self.to_server.send(&msg)?,
            Direction::ServerToClient => self.to_client.send(&msg)?,
        }
        Ok(msg)
    }

    /// Forward all currently pending messages in both directions; returns
    /// how many were forwarded. This is the "passively passes messages
    /// as-is" behaviour of the §5.1.2 attack.
    pub fn forward_all_pending(&mut self) -> usize {
        let mut count = 0;
        loop {
            let mut progressed = false;
            if self.forward_one(Direction::ClientToServer).is_ok() {
                count += 1;
                progressed = true;
            }
            if self.forward_one(Direction::ServerToClient).is_ok() {
                count += 1;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        count
    }

    /// Intercept (steal) one pending message in `dir` without forwarding it.
    pub fn intercept_one(&mut self, dir: Direction) -> Result<Vec<u8>, NetError> {
        let msg = match dir {
            Direction::ClientToServer => self.to_client.try_recv()?,
            Direction::ServerToClient => self.to_server.try_recv()?,
        };
        self.observed.record(TraceEntry::dropped(dir, &msg));
        Ok(msg)
    }

    /// Inject an attacker-chosen message in `dir`.
    pub fn inject(&mut self, dir: Direction, msg: &[u8]) -> Result<(), NetError> {
        self.observed.record(TraceEntry::injected(dir, msg));
        match dir {
            Direction::ClientToServer => self.to_server.send(msg),
            Direction::ServerToClient => self.to_client.send(msg),
        }
    }

    /// Everything the attacker has observed so far (forwarded, dropped and
    /// injected messages).
    pub fn observed(&self) -> &NetTrace {
        &self.observed
    }

    /// Convenience: all observed payload bytes in `dir`, concatenated. The
    /// attack harnesses use this to ask "did the session key / plaintext
    /// ever appear on the wire where the attacker could see it?".
    pub fn observed_bytes(&self, dir: Direction) -> Vec<u8> {
        self.observed
            .entries()
            .iter()
            .filter(|e| e.direction == dir)
            .flat_map(|e| e.payload.iter().copied())
            .collect()
    }

    /// Does any observed message (either direction) contain `needle`?
    pub fn saw_bytes(&self, needle: &[u8]) -> bool {
        !needle.is_empty()
            && self
                .observed
                .entries()
                .iter()
                .any(|e| e.payload.windows(needle.len()).any(|w| w == needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_preserves_bytes_and_order() {
        let (client, mut mitm, server) = Mitm::interpose();
        client.send(b"hello").unwrap();
        client.send(b"again").unwrap();
        assert_eq!(
            mitm.forward_one(Direction::ClientToServer).unwrap(),
            b"hello"
        );
        assert_eq!(
            mitm.forward_one(Direction::ClientToServer).unwrap(),
            b"again"
        );
        assert_eq!(server.try_recv().unwrap(), b"hello");
        assert_eq!(server.try_recv().unwrap(), b"again");
        server.send(b"resp").unwrap();
        mitm.forward_one(Direction::ServerToClient).unwrap();
        assert_eq!(client.try_recv().unwrap(), b"resp");
    }

    #[test]
    fn attacker_observes_forwarded_traffic() {
        let (client, mut mitm, _server) = Mitm::interpose();
        client.send(b"top-secret-session-key").unwrap();
        mitm.forward_one(Direction::ClientToServer).unwrap();
        assert!(mitm.saw_bytes(b"session-key"));
        assert!(!mitm.saw_bytes(b"not-present"));
    }

    #[test]
    fn interception_steals_messages() {
        let (client, mut mitm, server) = Mitm::interpose();
        client.send(b"payment").unwrap();
        let stolen = mitm.intercept_one(Direction::ClientToServer).unwrap();
        assert_eq!(stolen, b"payment");
        assert_eq!(server.try_recv(), Err(NetError::WouldBlock));
    }

    #[test]
    fn injection_reaches_the_victim() {
        let (client, mut mitm, server) = Mitm::interpose();
        mitm.inject(Direction::ClientToServer, b"evil request")
            .unwrap();
        assert_eq!(server.try_recv().unwrap(), b"evil request");
        mitm.inject(Direction::ServerToClient, b"fake response")
            .unwrap();
        assert_eq!(client.try_recv().unwrap(), b"fake response");
    }

    #[test]
    fn forward_all_pending_drains_both_directions() {
        let (client, mut mitm, server) = Mitm::interpose();
        client.send(b"a").unwrap();
        client.send(b"b").unwrap();
        server.send(b"x").unwrap();
        assert_eq!(mitm.forward_all_pending(), 3);
        assert_eq!(server.pending(), 2);
        assert_eq!(client.pending(), 1);
    }

    #[test]
    fn observed_bytes_filters_by_direction() {
        let (client, mut mitm, server) = Mitm::interpose();
        client.send(b"up").unwrap();
        server.send(b"down").unwrap();
        mitm.forward_all_pending();
        assert_eq!(mitm.observed_bytes(Direction::ClientToServer), b"up");
        assert_eq!(mitm.observed_bytes(Direction::ServerToClient), b"down");
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::ClientToServer.flip(), Direction::ServerToClient);
        assert_eq!(Direction::ServerToClient.flip(), Direction::ClientToServer);
    }
}
