//! # wedge-net — simulated network substrate
//!
//! The Wedge evaluation runs its partitioned servers against real clients on
//! a 1 Gbps LAN and, for the §5.1.2 threat model, against an attacker who
//! can "eavesdrop on, forward, and inject messages" as a man in the middle.
//! This crate provides an in-memory stand-in with exactly those
//! capabilities:
//!
//! * [`Duplex`] / [`duplex_pair`] — a bidirectional, message-oriented link
//!   between two endpoints (the client's socket and the server's accepted
//!   connection). Endpoints are `Send`, so a server compartment running on
//!   its own sthread can own one end.
//! * [`listener::Listener`] / [`listener::SourceAddr`] — the simulated
//!   `accept(2)` loop in front of the serving stack: clients connect with a
//!   source address, accepted links queue in a bounded backlog (full →
//!   refused, like a SYN queue) and carry the source address so placement
//!   layers can hash **source-affinity keys** without protocol help. A
//!   per-source token-bucket rate limiter
//!   ([`listener::Listener::bind_rate_limited`]) sheds flooding hosts
//!   before any link is built.
//! * [`mitm::Mitm`] — an interposer that owns both halves of a split link
//!   and can forward, observe, drop, or inject messages in either direction
//!   — the paper's man-in-the-middle attacker.
//! * [`wiretap::Wiretap`] — a passive eavesdropper that records copies of
//!   every message (the paper's simpler threat model: "the attacker can
//!   eavesdrop on entire SSL connections").
//! * [`reactor::Reactor`] — a readiness-driven event loop over [`Duplex`]
//!   links: one parked sthread drives thousands of idle links (drain-mode
//!   message dispatch or one-shot readiness hand-off) instead of a thread
//!   per link.
//! * [`trace::NetTrace`] — a pcap-like record of messages for debugging and
//!   for the experiment harnesses.
//! * [`cost::LinkCostModel`] — an analytical latency/throughput model used
//!   by the Table 2 harness to translate message counts and byte volumes
//!   into simulated wall-clock time on the paper's 1 Gbps testbed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod duplex;
pub mod listener;
pub mod mitm;
pub mod reactor;
pub mod trace;
pub mod wiretap;

pub use cost::LinkCostModel;
pub use duplex::{duplex_pair, duplex_pair_with_source, Duplex, NetError, RecvTimeout};
pub use listener::{Listener, ListenerStats, RateLimitConfig, SourceAddr};
pub use mitm::{Direction, Mitm};
pub use reactor::{LinkEvent, LinkVerdict, Reactor, ReactorStats};
pub use trace::{NetTrace, TraceEntry};
pub use wiretap::Wiretap;
