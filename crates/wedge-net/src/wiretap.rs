//! Passive eavesdropper.
//!
//! §5.1.1 threat model: "the attacker can eavesdrop on entire SSL
//! connections". A [`Wiretap`] copies every message that flows across a
//! link without being able to modify or inject anything. It is implemented
//! as a tap inserted between the two real endpoints; the test harness pumps
//! it like the [`crate::mitm::Mitm`] but it can only ever forward verbatim.

use crate::duplex::{duplex_pair, Duplex, NetError};
use crate::mitm::Direction;
use crate::trace::{NetTrace, TraceEntry};

/// A passive wiretap on a client↔server path.
#[derive(Debug)]
pub struct Wiretap {
    to_client: Duplex,
    to_server: Duplex,
    capture: NetTrace,
}

impl Wiretap {
    /// Insert a tap on a fresh path. Returns `(client_endpoint, tap,
    /// server_endpoint)`.
    pub fn tap() -> (Duplex, Wiretap, Duplex) {
        let (client_end, tap_client_side) = duplex_pair("client", "tap-facing-client");
        let (tap_server_side, server_end) = duplex_pair("tap-facing-server", "server");
        (
            client_end,
            Wiretap {
                to_client: tap_client_side,
                to_server: tap_server_side,
                capture: NetTrace::new(),
            },
            server_end,
        )
    }

    /// Copy-and-forward every pending message in both directions. Returns
    /// the number of messages relayed.
    pub fn relay_all_pending(&mut self) -> usize {
        let mut count = 0;
        loop {
            let mut progressed = false;
            match self.to_client.try_recv() {
                Ok(msg) => {
                    self.capture
                        .record(TraceEntry::forwarded(Direction::ClientToServer, &msg));
                    let _ = self.to_server.send(&msg);
                    count += 1;
                    progressed = true;
                }
                Err(NetError::WouldBlock) | Err(NetError::Disconnected) => {}
                Err(NetError::Timeout) | Err(NetError::Refused) => {}
            }
            match self.to_server.try_recv() {
                Ok(msg) => {
                    self.capture
                        .record(TraceEntry::forwarded(Direction::ServerToClient, &msg));
                    let _ = self.to_client.send(&msg);
                    count += 1;
                    progressed = true;
                }
                Err(NetError::WouldBlock) | Err(NetError::Disconnected) => {}
                Err(NetError::Timeout) | Err(NetError::Refused) => {}
            }
            if !progressed {
                break;
            }
        }
        count
    }

    /// Everything captured so far.
    pub fn capture(&self) -> &NetTrace {
        &self.capture
    }

    /// Did the eavesdropper ever see `needle` on the wire?
    pub fn saw_bytes(&self, needle: &[u8]) -> bool {
        !needle.is_empty()
            && self
                .capture
                .entries()
                .iter()
                .any(|e| e.payload.windows(needle.len()).any(|w| w == needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relays_and_captures_traffic() {
        let (client, mut tap, server) = Wiretap::tap();
        client.send(b"GET /").unwrap();
        server.send(b"200 OK").unwrap();
        assert_eq!(tap.relay_all_pending(), 2);
        assert_eq!(server.try_recv().unwrap(), b"GET /");
        assert_eq!(client.try_recv().unwrap(), b"200 OK");
        assert!(tap.saw_bytes(b"GET /"));
        assert!(tap.saw_bytes(b"200 OK"));
        assert!(!tap.saw_bytes(b"private-key"));
        assert_eq!(tap.capture().entries().len(), 2);
    }

    #[test]
    fn empty_needle_is_never_seen() {
        let (_c, tap, _s) = Wiretap::tap();
        assert!(!tap.saw_bytes(b""));
    }
}
