//! Property-based tests for the arena allocator and tag cache: live
//! allocations never overlap, the chunk list always tiles the segment, and
//! recycled segments never leak prior contents.

use proptest::prelude::*;
use wedge_alloc::{Arena, TagCache, TagCacheConfig};

/// A randomly generated allocator operation.
#[derive(Debug, Clone)]
enum Op {
    Alloc(usize),
    /// Free the i-th (mod len) live allocation.
    Free(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..512).prop_map(Op::Alloc),
        (0usize..64).prop_map(Op::Free),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arena_never_overlaps_and_stays_consistent(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut arena = Arena::new(64 * 1024).unwrap();
        let mut live: Vec<(usize, usize)> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(sz) => {
                    if let Ok(p) = arena.alloc(sz) {
                        live.push((p, sz));
                    }
                }
                Op::Free(idx) => {
                    if !live.is_empty() {
                        let (p, _) = live.remove(idx % live.len());
                        arena.free(p).unwrap();
                    }
                }
            }

            // The chunk list must always tile the segment exactly.
            arena.check_consistency().unwrap();
            // Every allocation we believe is live must be recognised and
            // large enough.
            for (p, sz) in &live {
                prop_assert!(arena.contains_live_range(*p, *sz));
            }
            // Live ranges reported by the arena must be disjoint and sorted.
            let ranges = arena.live_ranges();
            for w in ranges.windows(2) {
                prop_assert!(w[0].0 + w[0].1 <= w[1].0);
            }
            prop_assert_eq!(ranges.len(), live.len());
        }
    }

    #[test]
    fn freeing_everything_restores_one_free_chunk(sizes in prop::collection::vec(1usize..300, 1..40)) {
        let mut arena = Arena::new(64 * 1024).unwrap();
        let baseline = arena.largest_free();
        let mut ptrs = Vec::new();
        for sz in &sizes {
            ptrs.push(arena.alloc(*sz).unwrap());
        }
        for p in ptrs {
            arena.free(p).unwrap();
        }
        prop_assert_eq!(arena.live_allocations(), 0);
        prop_assert_eq!(arena.largest_free(), baseline);
        prop_assert_eq!(arena.check_consistency().unwrap(), 1);
    }

    #[test]
    fn recycled_segments_never_leak_contents(secret in prop::collection::vec(1u8..255, 8..64)) {
        let mut cache = TagCache::new(TagCacheConfig::default());
        let mut seg = cache.acquire(8192).unwrap();
        let p = seg.arena_mut().alloc(secret.len()).unwrap();
        seg.arena_mut().data_mut()[p..p + secret.len()].copy_from_slice(&secret);
        cache.release(seg);

        let recycled = cache.acquire(8192).unwrap();
        prop_assert!(recycled.generation() > 1, "expected a cache hit");
        // The secret must not survive recycling anywhere in the segment.
        let data = recycled.arena().data();
        prop_assert!(!data.windows(secret.len()).any(|w| w == &secret[..]));
    }

    #[test]
    fn usable_size_at_least_requested(sz in 1usize..2048) {
        let mut arena = Arena::new(16 * 1024).unwrap();
        let p = arena.alloc(sz).unwrap();
        prop_assert!(arena.usable_size(p).unwrap() >= sz);
    }
}
