//! Boundary-tag, first-fit allocator managing the payload space of a single
//! tagged segment.
//!
//! The layout mirrors a classic `dlmalloc`-style design: every chunk is
//! preceded by a fixed-size header holding the chunk size, the size of the
//! previous chunk (so freed chunks can coalesce backwards), an in-use flag
//! and a magic word used to detect corruption and double frees. All
//! bookkeeping lives inside the segment's byte buffer so that a freshly
//! initialised segment can be captured as a *template* and later copied over
//! a reused segment (the paper's scrub-on-reuse optimisation).

use std::fmt;

/// Size in bytes of the per-chunk header.
pub const HEADER_SIZE: usize = 16;

/// Smallest segment a caller may create. Anything smaller cannot hold a
/// header plus a minimal payload.
pub const MIN_SEGMENT_SIZE: usize = 64;

/// Payloads are rounded up to this alignment, like `malloc`'s 16-byte
/// guarantee on 64-bit platforms.
const ALIGN: usize = 16;

/// Magic value stored in every chunk header.
const MAGIC: u32 = 0x57ED_6E01;

const FLAG_IN_USE: u32 = 1;

/// Errors returned by [`Arena`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The segment has no free chunk large enough for the request.
    OutOfMemory {
        /// Bytes requested by the caller.
        requested: usize,
        /// Largest contiguous free payload currently available.
        largest_free: usize,
    },
    /// The requested size was zero.
    ZeroSize,
    /// The segment capacity passed to [`Arena::new`] was too small.
    SegmentTooSmall(usize),
    /// An offset passed to `free`/`usable_size` does not denote a live
    /// allocation (wrong offset, already freed, or corrupted header).
    InvalidPointer(usize),
    /// Header corruption was detected while walking the chunk list.
    Corrupted {
        /// Offset of the corrupt header.
        offset: usize,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                largest_free,
            } => write!(
                f,
                "out of memory: requested {requested} bytes, largest free block {largest_free}"
            ),
            AllocError::ZeroSize => write!(f, "zero-sized allocation"),
            AllocError::SegmentTooSmall(sz) => {
                write!(
                    f,
                    "segment of {sz} bytes is smaller than the {MIN_SEGMENT_SIZE}-byte minimum"
                )
            }
            AllocError::InvalidPointer(off) => write!(f, "invalid pointer at offset {off}"),
            AllocError::Corrupted { offset } => {
                write!(f, "corrupted chunk header at offset {offset}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// A chunk header decoded from the segment bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    /// Total chunk size including the header, in bytes.
    size: u32,
    /// Total size of the physically preceding chunk (0 for the first chunk).
    prev_size: u32,
    flags: u32,
    magic: u32,
}

impl Header {
    fn in_use(&self) -> bool {
        self.flags & FLAG_IN_USE != 0
    }
}

/// Boundary-tag first-fit allocator over a byte buffer.
///
/// Offsets handed out by [`Arena::alloc`] are *payload* offsets into the
/// buffer returned by [`Arena::data`] / [`Arena::data_mut`].
#[derive(Clone)]
pub struct Arena {
    data: Vec<u8>,
    /// Number of live (in-use) allocations.
    live: usize,
    /// Sum of payload bytes currently allocated.
    allocated_bytes: usize,
}

impl fmt::Debug for Arena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arena")
            .field("capacity", &self.data.len())
            .field("live", &self.live)
            .field("allocated_bytes", &self.allocated_bytes)
            .finish()
    }
}

fn round_up(n: usize, to: usize) -> usize {
    n.div_ceil(to) * to
}

impl Arena {
    /// Create an arena managing `capacity` bytes. The whole payload space
    /// starts as a single free chunk.
    pub fn new(capacity: usize) -> Result<Self, AllocError> {
        if capacity < MIN_SEGMENT_SIZE {
            return Err(AllocError::SegmentTooSmall(capacity));
        }
        let capacity = round_up(capacity, ALIGN);
        let mut arena = Arena {
            data: vec![0u8; capacity],
            live: 0,
            allocated_bytes: 0,
        };
        arena.write_header(
            0,
            Header {
                size: capacity as u32,
                prev_size: 0,
                flags: 0,
                magic: MAGIC,
            },
        );
        Ok(arena)
    }

    /// Produce the pristine bookkeeping image for a segment of `capacity`
    /// bytes: the bytes a fresh arena holds before any allocation. Copying
    /// this image over a reused segment both scrubs the previous tenant's
    /// data and re-initialises the allocator state (the paper's
    /// reuse-with-template optimisation).
    pub fn template(capacity: usize) -> Result<Vec<u8>, AllocError> {
        Ok(Arena::new(capacity)?.data)
    }

    /// Reset this arena from a pristine template previously produced by
    /// [`Arena::template`] for the same capacity.
    pub fn reset_from_template(&mut self, template: &[u8]) -> Result<(), AllocError> {
        if template.len() != self.data.len() {
            return Err(AllocError::SegmentTooSmall(template.len()));
        }
        self.data.copy_from_slice(template);
        self.live = 0;
        self.allocated_bytes = 0;
        Ok(())
    }

    /// Scrub the segment by zeroing payload space and rebuilding the initial
    /// free chunk. Slower than [`Arena::reset_from_template`]; used when no
    /// template is available.
    pub fn reset_zeroed(&mut self) {
        let capacity = self.data.len();
        self.data.fill(0);
        self.live = 0;
        self.allocated_bytes = 0;
        self.write_header(
            0,
            Header {
                size: capacity as u32,
                prev_size: 0,
                flags: 0,
                magic: MAGIC,
            },
        );
    }

    /// Total capacity of the managed segment in bytes (headers included).
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.live
    }

    /// Total payload bytes currently allocated.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes
    }

    /// Raw view of the segment bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw view of the segment bytes.
    ///
    /// Callers (the simulated kernel) must confine writes to payload ranges
    /// they obtained from [`Arena::alloc`]; the arena's headers are part of
    /// this buffer.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    fn read_header(&self, offset: usize) -> Result<Header, AllocError> {
        if offset + HEADER_SIZE > self.data.len() {
            return Err(AllocError::Corrupted { offset });
        }
        let b = &self.data[offset..offset + HEADER_SIZE];
        let header = Header {
            size: u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            prev_size: u32::from_le_bytes([b[4], b[5], b[6], b[7]]),
            flags: u32::from_le_bytes([b[8], b[9], b[10], b[11]]),
            magic: u32::from_le_bytes([b[12], b[13], b[14], b[15]]),
        };
        if header.magic != MAGIC
            || (header.size as usize) > self.data.len()
            || (header.size as usize) < HEADER_SIZE
            || offset + header.size as usize > self.data.len()
        {
            return Err(AllocError::Corrupted { offset });
        }
        Ok(header)
    }

    fn write_header(&mut self, offset: usize, header: Header) {
        let b = &mut self.data[offset..offset + HEADER_SIZE];
        b[0..4].copy_from_slice(&header.size.to_le_bytes());
        b[4..8].copy_from_slice(&header.prev_size.to_le_bytes());
        b[8..12].copy_from_slice(&header.flags.to_le_bytes());
        b[12..16].copy_from_slice(&header.magic.to_le_bytes());
    }

    /// Allocate `size` payload bytes. Returns the payload offset.
    pub fn alloc(&mut self, size: usize) -> Result<usize, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let need = round_up(size, ALIGN) + HEADER_SIZE;
        let mut offset = 0usize;
        let mut largest_free = 0usize;
        while offset < self.data.len() {
            let header = self.read_header(offset)?;
            let chunk_size = header.size as usize;
            if !header.in_use() {
                if chunk_size >= need {
                    return self.place(offset, header, need, size);
                }
                largest_free = largest_free.max(chunk_size.saturating_sub(HEADER_SIZE));
            }
            offset += chunk_size;
        }
        Err(AllocError::OutOfMemory {
            requested: size,
            largest_free,
        })
    }

    /// Split (if profitable) and mark the chunk at `offset` as in use.
    fn place(
        &mut self,
        offset: usize,
        header: Header,
        need: usize,
        payload_size: usize,
    ) -> Result<usize, AllocError> {
        let chunk_size = header.size as usize;
        let remainder = chunk_size - need;
        let used_size = if remainder >= HEADER_SIZE + ALIGN {
            // Split: the tail becomes a new free chunk.
            let tail_offset = offset + need;
            self.write_header(
                tail_offset,
                Header {
                    size: remainder as u32,
                    prev_size: need as u32,
                    flags: 0,
                    magic: MAGIC,
                },
            );
            // Fix the prev_size of the chunk after the tail, if any.
            let after = tail_offset + remainder;
            if after < self.data.len() {
                let mut next = self.read_header(after)?;
                next.prev_size = remainder as u32;
                self.write_header(after, next);
            }
            need
        } else {
            chunk_size
        };
        self.write_header(
            offset,
            Header {
                size: used_size as u32,
                prev_size: header.prev_size,
                flags: FLAG_IN_USE,
                magic: MAGIC,
            },
        );
        self.live += 1;
        self.allocated_bytes += payload_size;
        Ok(offset + HEADER_SIZE)
    }

    /// Free the allocation whose payload starts at `payload_offset`,
    /// coalescing with free neighbours.
    pub fn free(&mut self, payload_offset: usize) -> Result<(), AllocError> {
        if payload_offset < HEADER_SIZE || payload_offset > self.data.len() {
            return Err(AllocError::InvalidPointer(payload_offset));
        }
        let offset = payload_offset - HEADER_SIZE;
        let header = self
            .read_header(offset)
            .map_err(|_| AllocError::InvalidPointer(payload_offset))?;
        if !header.in_use() {
            return Err(AllocError::InvalidPointer(payload_offset));
        }

        let mut start = offset;
        let mut total = header.size as usize;
        let mut prev_size = header.prev_size;

        // Coalesce backwards.
        if header.prev_size != 0 {
            let prev_offset = offset - header.prev_size as usize;
            let prev = self.read_header(prev_offset)?;
            if !prev.in_use() {
                start = prev_offset;
                total += prev.size as usize;
                prev_size = prev.prev_size;
            }
        }

        // Coalesce forwards.
        let next_offset = offset + header.size as usize;
        if next_offset < self.data.len() {
            let next = self.read_header(next_offset)?;
            if !next.in_use() {
                total += next.size as usize;
            }
        }

        self.write_header(
            start,
            Header {
                size: total as u32,
                prev_size,
                flags: 0,
                magic: MAGIC,
            },
        );
        // Fix the prev_size of the chunk following the coalesced block.
        let after = start + total;
        if after < self.data.len() {
            let mut next = self.read_header(after)?;
            next.prev_size = total as u32;
            self.write_header(after, next);
        }

        self.live -= 1;
        self.allocated_bytes = self
            .allocated_bytes
            .saturating_sub((header.size as usize).saturating_sub(HEADER_SIZE));
        Ok(())
    }

    /// Usable payload size of a live allocation.
    pub fn usable_size(&self, payload_offset: usize) -> Result<usize, AllocError> {
        if payload_offset < HEADER_SIZE || payload_offset > self.data.len() {
            return Err(AllocError::InvalidPointer(payload_offset));
        }
        let header = self
            .read_header(payload_offset - HEADER_SIZE)
            .map_err(|_| AllocError::InvalidPointer(payload_offset))?;
        if !header.in_use() {
            return Err(AllocError::InvalidPointer(payload_offset));
        }
        Ok(header.size as usize - HEADER_SIZE)
    }

    /// Whether `payload_offset..payload_offset+len` lies entirely inside one
    /// live allocation. Used by the simulated kernel to catch out-of-bounds
    /// accesses within a tagged segment.
    pub fn contains_live_range(&self, payload_offset: usize, len: usize) -> bool {
        match self.usable_size(payload_offset) {
            Ok(usable) => len <= usable,
            Err(_) => false,
        }
    }

    /// Validate that `payload_offset..payload_offset+len` is one live
    /// allocation and return its bytes — the single-pass form of
    /// [`Arena::contains_live_range`] + [`Arena::data`] the kernel's read
    /// fast path uses (one header parse, one bounds check, no re-slicing).
    pub fn live_slice(&self, payload_offset: usize, len: usize) -> Option<&[u8]> {
        let usable = self.usable_size(payload_offset).ok()?;
        if len > usable {
            return None;
        }
        Some(&self.data[payload_offset..payload_offset + len])
    }

    /// Iterate over `(payload_offset, payload_size)` pairs of live
    /// allocations, in address order.
    pub fn live_ranges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut offset = 0usize;
        while offset < self.data.len() {
            let Ok(header) = self.read_header(offset) else {
                break;
            };
            if header.in_use() {
                out.push((offset + HEADER_SIZE, header.size as usize - HEADER_SIZE));
            }
            offset += header.size as usize;
        }
        out
    }

    /// Largest free payload currently available (after coalescing).
    pub fn largest_free(&self) -> usize {
        let mut largest = 0usize;
        let mut offset = 0usize;
        while offset < self.data.len() {
            let Ok(header) = self.read_header(offset) else {
                break;
            };
            if !header.in_use() {
                largest = largest.max(header.size as usize - HEADER_SIZE);
            }
            offset += header.size as usize;
        }
        largest
    }

    /// Validate the whole chunk list: headers parse, sizes tile the segment
    /// exactly, and `prev_size` links are consistent. Returns the number of
    /// chunks on success.
    pub fn check_consistency(&self) -> Result<usize, AllocError> {
        let mut offset = 0usize;
        let mut prev_size = 0usize;
        let mut chunks = 0usize;
        while offset < self.data.len() {
            let header = self.read_header(offset)?;
            if header.prev_size as usize != prev_size {
                return Err(AllocError::Corrupted { offset });
            }
            prev_size = header.size as usize;
            offset += header.size as usize;
            chunks += 1;
        }
        if offset != self.data.len() {
            return Err(AllocError::Corrupted { offset });
        }
        Ok(chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_tiny_segments() {
        assert!(matches!(Arena::new(8), Err(AllocError::SegmentTooSmall(8))));
        assert!(Arena::new(MIN_SEGMENT_SIZE).is_ok());
    }

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut a = Arena::new(4096).unwrap();
        let p = a.alloc(100).unwrap();
        assert!(p >= HEADER_SIZE);
        assert_eq!(a.live_allocations(), 1);
        assert!(a.usable_size(p).unwrap() >= 100);
        a.free(p).unwrap();
        assert_eq!(a.live_allocations(), 0);
        assert_eq!(a.check_consistency().unwrap(), 1);
    }

    #[test]
    fn zero_size_rejected() {
        let mut a = Arena::new(4096).unwrap();
        assert_eq!(a.alloc(0), Err(AllocError::ZeroSize));
    }

    #[test]
    fn out_of_memory_reports_largest_free() {
        let mut a = Arena::new(256).unwrap();
        let err = a.alloc(10_000).unwrap_err();
        match err {
            AllocError::OutOfMemory {
                requested,
                largest_free,
            } => {
                assert_eq!(requested, 10_000);
                assert!(largest_free > 0);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn double_free_detected() {
        let mut a = Arena::new(1024).unwrap();
        let p = a.alloc(32).unwrap();
        a.free(p).unwrap();
        assert_eq!(a.free(p), Err(AllocError::InvalidPointer(p)));
    }

    #[test]
    fn free_of_bogus_offset_detected() {
        let mut a = Arena::new(1024).unwrap();
        let _p = a.alloc(32).unwrap();
        assert!(a.free(5).is_err());
        assert!(a.free(999_999).is_err());
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = Arena::new(8192).unwrap();
        let mut ptrs = Vec::new();
        for i in 1..20 {
            ptrs.push((a.alloc(i * 7).unwrap(), i * 7));
        }
        let ranges = a.live_ranges();
        assert_eq!(ranges.len(), ptrs.len());
        for w in ranges.windows(2) {
            let (off_a, len_a) = w[0];
            let (off_b, _) = w[1];
            assert!(off_a + len_a <= off_b, "allocations overlap");
        }
        for (p, len) in &ptrs {
            assert!(a.contains_live_range(*p, *len));
        }
    }

    #[test]
    fn coalescing_restores_full_capacity() {
        let mut a = Arena::new(2048).unwrap();
        let initial_largest = a.largest_free();
        let p1 = a.alloc(100).unwrap();
        let p2 = a.alloc(200).unwrap();
        let p3 = a.alloc(300).unwrap();
        // Free out of order to exercise both directions of coalescing.
        a.free(p2).unwrap();
        a.free(p1).unwrap();
        a.free(p3).unwrap();
        assert_eq!(a.live_allocations(), 0);
        assert_eq!(a.largest_free(), initial_largest);
        assert_eq!(a.check_consistency().unwrap(), 1);
    }

    #[test]
    fn template_reset_scrubs_previous_contents() {
        let template = Arena::template(1024).unwrap();
        let mut a = Arena::new(1024).unwrap();
        let p = a.alloc(64).unwrap();
        a.data_mut()[p..p + 8].copy_from_slice(b"SECRET!!");
        a.reset_from_template(&template).unwrap();
        assert_eq!(a.live_allocations(), 0);
        assert!(!a.data().windows(8).any(|w| w == b"SECRET!!"));
        // The arena is usable again after reset.
        let p2 = a.alloc(64).unwrap();
        assert!(a.usable_size(p2).unwrap() >= 64);
    }

    #[test]
    fn reset_zeroed_scrubs_previous_contents() {
        let mut a = Arena::new(1024).unwrap();
        let p = a.alloc(64).unwrap();
        a.data_mut()[p..p + 6].copy_from_slice(b"secret");
        a.reset_zeroed();
        assert!(!a.data().windows(6).any(|w| w == b"secret"));
        assert!(a.alloc(64).is_ok());
    }

    #[test]
    fn reset_from_wrong_sized_template_fails() {
        let template = Arena::template(1024).unwrap();
        let mut a = Arena::new(2048).unwrap();
        assert!(a.reset_from_template(&template).is_err());
    }

    #[test]
    fn contains_live_range_respects_bounds() {
        let mut a = Arena::new(1024).unwrap();
        let p = a.alloc(100).unwrap();
        let usable = a.usable_size(p).unwrap();
        assert!(a.contains_live_range(p, usable));
        assert!(!a.contains_live_range(p, usable + 1));
        assert!(!a.contains_live_range(p + 1, usable));
    }

    #[test]
    fn many_alloc_free_cycles_stay_consistent() {
        let mut a = Arena::new(16 * 1024).unwrap();
        let mut live = Vec::new();
        for round in 0..50 {
            for i in 0..10 {
                if let Ok(p) = a.alloc(16 + (round * 13 + i * 7) % 200) {
                    live.push(p);
                }
            }
            // Free every other allocation.
            let mut idx = 0;
            live.retain(|p| {
                idx += 1;
                if idx % 2 == 0 {
                    a.free(*p).unwrap();
                    false
                } else {
                    true
                }
            });
            a.check_consistency().unwrap();
        }
        for p in live {
            a.free(p).unwrap();
        }
        assert_eq!(a.live_allocations(), 0);
        a.check_consistency().unwrap();
    }
}
