//! A [`Segment`] is the memory region behind a single Wedge tag: the
//! backing bytes managed by an [`Arena`] plus identity and bookkeeping used
//! by the tag cache.

use crate::arena::{AllocError, Arena};

/// Identifier of a segment. Segment ids are distinct from Wedge tag ids: a
/// tag is the *security* name, a segment is the physical region currently
/// backing it (a recycled segment may serve many tags over its lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u64);

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// A tag-backing memory region: arena-managed bytes plus identity.
#[derive(Debug, Clone)]
pub struct Segment {
    id: SegmentId,
    arena: Arena,
    /// How many times this physical segment has been handed out by the tag
    /// cache (1 for a freshly "mmapped" segment).
    generation: u64,
}

impl Segment {
    /// Create a fresh segment of `capacity` bytes (the simulated `mmap`).
    pub fn new(id: SegmentId, capacity: usize) -> Result<Self, AllocError> {
        Ok(Segment {
            id,
            arena: Arena::new(capacity)?,
            generation: 1,
        })
    }

    /// This segment's identifier.
    pub fn id(&self) -> SegmentId {
        self.id
    }

    /// Reuse generation (1 = fresh, >1 = recycled by the tag cache).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// The allocator managing this segment.
    pub fn arena(&self) -> &Arena {
        &self.arena
    }

    /// Mutable access to the allocator managing this segment.
    pub fn arena_mut(&mut self) -> &mut Arena {
        &mut self.arena
    }

    /// Scrub the segment from a pristine template and bump the generation;
    /// called by the tag cache when recycling.
    pub(crate) fn recycle_from_template(
        &mut self,
        new_id: SegmentId,
        template: &[u8],
    ) -> Result<(), AllocError> {
        self.arena.reset_from_template(template)?;
        self.id = new_id;
        self.generation += 1;
        Ok(())
    }

    /// Scrub the segment by zeroing and bump the generation.
    pub(crate) fn recycle_zeroed(&mut self, new_id: SegmentId) {
        self.arena.reset_zeroed();
        self.id = new_id;
        self.generation += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_segment_has_generation_one() {
        let s = Segment::new(SegmentId(7), 1024).unwrap();
        assert_eq!(s.id(), SegmentId(7));
        assert_eq!(s.generation(), 1);
        assert!(s.capacity() >= 1024);
    }

    #[test]
    fn recycle_changes_identity_and_scrubs() {
        let mut s = Segment::new(SegmentId(1), 1024).unwrap();
        let p = s.arena_mut().alloc(32).unwrap();
        s.arena_mut().data_mut()[p..p + 4].copy_from_slice(b"key!");
        let template = Arena::template(s.capacity()).unwrap();
        s.recycle_from_template(SegmentId(2), &template).unwrap();
        assert_eq!(s.id(), SegmentId(2));
        assert_eq!(s.generation(), 2);
        assert!(!s.arena().data().windows(4).any(|w| w == b"key!"));
    }

    #[test]
    fn recycle_zeroed_scrubs() {
        let mut s = Segment::new(SegmentId(1), 512).unwrap();
        let p = s.arena_mut().alloc(16).unwrap();
        s.arena_mut().data_mut()[p..p + 4].copy_from_slice(b"pwd1");
        s.recycle_zeroed(SegmentId(9));
        assert_eq!(s.generation(), 2);
        assert!(!s.arena().data().windows(4).any(|w| w == b"pwd1"));
    }

    #[test]
    fn display_formats_id() {
        assert_eq!(SegmentId(42).to_string(), "seg42");
    }
}
