//! Allocation statistics used by benches, tests and the Figure 8 harness.

/// Counters describing allocator and tag-cache activity.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of `tag_new`-style acquisitions satisfied from the reuse cache.
    pub tag_reuse_hits: u64,
    /// Number of acquisitions that had to create a fresh segment.
    pub tag_reuse_misses: u64,
    /// Number of simulated `mmap` calls (fresh segment creations).
    pub mmap_calls: u64,
    /// Number of simulated `munmap` calls (segments actually dropped).
    pub munmap_calls: u64,
    /// Number of tags deleted (released to the cache or dropped).
    pub tags_deleted: u64,
}

impl AllocStats {
    /// Fraction of acquisitions served from the reuse cache, in `[0, 1]`.
    /// Returns `None` if there were no acquisitions.
    pub fn reuse_ratio(&self) -> Option<f64> {
        let total = self.tag_reuse_hits + self.tag_reuse_misses;
        if total == 0 {
            None
        } else {
            Some(self.tag_reuse_hits as f64 / total as f64)
        }
    }

    /// Merge another set of counters into this one.
    pub fn merge(&mut self, other: &AllocStats) {
        self.tag_reuse_hits += other.tag_reuse_hits;
        self.tag_reuse_misses += other.tag_reuse_misses;
        self.mmap_calls += other.mmap_calls;
        self.munmap_calls += other.munmap_calls;
        self.tags_deleted += other.tags_deleted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_ratio_handles_empty_and_nonempty() {
        let mut s = AllocStats::default();
        assert_eq!(s.reuse_ratio(), None);
        s.tag_reuse_hits = 3;
        s.tag_reuse_misses = 1;
        assert!((s.reuse_ratio().unwrap() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = AllocStats {
            tag_reuse_hits: 1,
            tag_reuse_misses: 2,
            mmap_calls: 3,
            munmap_calls: 4,
            tags_deleted: 5,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.tag_reuse_hits, 2);
        assert_eq!(a.tags_deleted, 10);
    }
}
