//! Userland cache of deleted tag segments.
//!
//! §4.1 of the paper: "We mitigate system call overhead by caching a
//! free-list of previously deleted tags (i.e., memory regions) in userland,
//! and reusing them if possible, hence avoiding the system call. To provide
//! secrecy, we scrub a tag's memory contents upon tag reuse. Rather than
//! scrubbing with (say) zeros, we copy cached, pre-initialized smalloc
//! bookkeeping structures into it."
//!
//! [`TagCache`] reproduces exactly that: deleted segments are parked on a
//! per-capacity free list, and `acquire` prefers recycling one of them,
//! scrubbing it by copying a cached pristine [`Arena::template`]. The
//! fresh-allocation path models the `mmap` + bookkeeping-initialisation cost
//! the cache is designed to avoid; the Figure 8 benchmark measures both
//! paths.

use std::collections::HashMap;

use crate::arena::{AllocError, Arena};
use crate::segment::{Segment, SegmentId};
use crate::stats::AllocStats;

/// Configuration for the tag cache.
#[derive(Debug, Clone)]
pub struct TagCacheConfig {
    /// Default segment capacity used when a caller does not request a
    /// specific size (the paper uses one fixed tag segment size).
    pub default_segment_size: usize,
    /// Maximum number of parked segments per capacity class. Beyond this,
    /// released segments are dropped (the simulated `munmap`).
    pub max_cached_per_size: usize,
    /// Whether reuse is enabled at all. Disabling it forces every acquire
    /// down the fresh-"mmap" path — the Figure 8 worst case and the
    /// tag-reuse ablation.
    pub reuse_enabled: bool,
    /// Whether to scrub by template copy (`true`, the paper's optimisation)
    /// or by zeroing (`false`).
    pub scrub_with_template: bool,
}

impl Default for TagCacheConfig {
    fn default() -> Self {
        TagCacheConfig {
            default_segment_size: 64 * 1024,
            max_cached_per_size: 64,
            reuse_enabled: true,
            scrub_with_template: true,
        }
    }
}

/// Free-list cache of deleted tag segments with scrub-on-reuse.
#[derive(Debug)]
pub struct TagCache {
    config: TagCacheConfig,
    /// Parked (deleted) segments keyed by capacity.
    free: HashMap<usize, Vec<Segment>>,
    /// Pristine bookkeeping templates keyed by capacity.
    templates: HashMap<usize, Vec<u8>>,
    next_segment_id: u64,
    stats: AllocStats,
}

impl Default for TagCache {
    fn default() -> Self {
        TagCache::new(TagCacheConfig::default())
    }
}

impl TagCache {
    /// Create a cache with the given configuration.
    pub fn new(config: TagCacheConfig) -> Self {
        TagCache {
            config,
            free: HashMap::new(),
            templates: HashMap::new(),
            next_segment_id: 1,
            stats: AllocStats::default(),
        }
    }

    /// The configured default segment size.
    pub fn default_segment_size(&self) -> usize {
        self.config.default_segment_size
    }

    /// Cache configuration.
    pub fn config(&self) -> &TagCacheConfig {
        &self.config
    }

    /// Allocation statistics accumulated so far.
    pub fn stats(&self) -> &AllocStats {
        &self.stats
    }

    /// Number of segments currently parked in the cache.
    pub fn cached_segments(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }

    fn next_id(&mut self) -> SegmentId {
        let id = SegmentId(self.next_segment_id);
        self.next_segment_id += 1;
        id
    }

    fn template_for(&mut self, capacity: usize) -> Result<&[u8], AllocError> {
        if let std::collections::hash_map::Entry::Vacant(slot) = self.templates.entry(capacity) {
            slot.insert(Arena::template(capacity)?);
        }
        Ok(self.templates.get(&capacity).expect("just inserted"))
    }

    /// Acquire a segment of the default size (the `tag_new()` fast path).
    pub fn acquire_default(&mut self) -> Result<Segment, AllocError> {
        self.acquire(self.config.default_segment_size)
    }

    /// Acquire a segment of `capacity` bytes, recycling a parked one if
    /// possible (scrubbed first), otherwise performing the simulated `mmap`.
    pub fn acquire(&mut self, capacity: usize) -> Result<Segment, AllocError> {
        if self.config.reuse_enabled {
            if let Some(list) = self.free.get_mut(&capacity) {
                if let Some(mut seg) = list.pop() {
                    let new_id = self.next_id();
                    if self.config.scrub_with_template {
                        let template = {
                            // Ensure the template exists, then copy-free borrow.
                            self.template_for(seg.capacity())?.to_vec()
                        };
                        seg.recycle_from_template(new_id, &template)?;
                    } else {
                        seg.recycle_zeroed(new_id);
                    }
                    self.stats.tag_reuse_hits += 1;
                    return Ok(seg);
                }
            }
        }
        self.stats.tag_reuse_misses += 1;
        self.stats.mmap_calls += 1;
        let id = self.next_id();
        Segment::new(id, capacity)
    }

    /// Pre-populate the free list with `count` default-size segments (paying
    /// the simulated `mmap` up front), so a burst of `acquire_default`
    /// callers — e.g. a pooled-worker pre-warm in the sharded kernel — hits
    /// the recycle path instead of faulting in fresh segments one by one.
    /// Returns how many segments were actually parked (bounded by
    /// `max_cached_per_size`; zero when reuse is disabled).
    pub fn prewarm(&mut self, count: usize) -> Result<usize, AllocError> {
        if !self.config.reuse_enabled {
            return Ok(0);
        }
        let capacity = self.config.default_segment_size;
        let parked = self.free.get(&capacity).map(Vec::len).unwrap_or(0);
        let room = self
            .config
            .max_cached_per_size
            .saturating_sub(parked)
            .min(count);
        for _ in 0..room {
            self.stats.mmap_calls += 1;
            let id = self.next_id();
            let segment = Segment::new(id, capacity)?;
            self.free.entry(capacity).or_default().push(segment);
        }
        Ok(room)
    }

    /// Release (delete) a tag's segment back to the cache. If the per-size
    /// cache is full the segment is dropped, which models `munmap`.
    pub fn release(&mut self, segment: Segment) {
        self.stats.tags_deleted += 1;
        if !self.config.reuse_enabled {
            self.stats.munmap_calls += 1;
            return;
        }
        let entry = self.free.entry(segment.capacity()).or_default();
        if entry.len() < self.config.max_cached_per_size {
            entry.push(segment);
        } else {
            self.stats.munmap_calls += 1;
        }
    }

    /// Drop all parked segments and cached templates.
    pub fn clear(&mut self) {
        let parked = self.cached_segments();
        self.stats.munmap_calls += parked as u64;
        self.free.clear();
        self.templates.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_without_history_is_a_miss() {
        let mut cache = TagCache::default();
        let seg = cache.acquire(4096).unwrap();
        assert_eq!(seg.generation(), 1);
        assert_eq!(cache.stats().tag_reuse_misses, 1);
        assert_eq!(cache.stats().tag_reuse_hits, 0);
        assert_eq!(cache.stats().mmap_calls, 1);
    }

    #[test]
    fn release_then_acquire_reuses_and_scrubs() {
        let mut cache = TagCache::default();
        let mut seg = cache.acquire(4096).unwrap();
        let p = seg.arena_mut().alloc(64).unwrap();
        seg.arena_mut().data_mut()[p..p + 7].copy_from_slice(b"privkey");
        let old_id = seg.id();
        cache.release(seg);

        let seg2 = cache.acquire(4096).unwrap();
        assert_ne!(
            seg2.id(),
            old_id,
            "recycled segment must get a fresh identity"
        );
        assert_eq!(seg2.generation(), 2);
        assert!(
            !seg2.arena().data().windows(7).any(|w| w == b"privkey"),
            "recycled segment must be scrubbed"
        );
        assert_eq!(cache.stats().tag_reuse_hits, 1);
    }

    #[test]
    fn different_capacities_do_not_share_free_lists() {
        let mut cache = TagCache::default();
        let seg = cache.acquire(4096).unwrap();
        cache.release(seg);
        let seg2 = cache.acquire(8192).unwrap();
        assert_eq!(seg2.generation(), 1, "different capacity must not reuse");
        assert_eq!(cache.cached_segments(), 1);
    }

    #[test]
    fn reuse_disabled_always_takes_mmap_path() {
        let mut cache = TagCache::new(TagCacheConfig {
            reuse_enabled: false,
            ..TagCacheConfig::default()
        });
        let seg = cache.acquire(4096).unwrap();
        cache.release(seg);
        let seg2 = cache.acquire(4096).unwrap();
        assert_eq!(seg2.generation(), 1);
        assert_eq!(cache.stats().tag_reuse_hits, 0);
        assert_eq!(cache.stats().mmap_calls, 2);
        assert_eq!(cache.stats().munmap_calls, 1);
    }

    #[test]
    fn zero_scrub_mode_also_scrubs() {
        let mut cache = TagCache::new(TagCacheConfig {
            scrub_with_template: false,
            ..TagCacheConfig::default()
        });
        let mut seg = cache.acquire(2048).unwrap();
        let p = seg.arena_mut().alloc(16).unwrap();
        seg.arena_mut().data_mut()[p..p + 6].copy_from_slice(b"secret");
        cache.release(seg);
        let seg2 = cache.acquire(2048).unwrap();
        assert!(!seg2.arena().data().windows(6).any(|w| w == b"secret"));
    }

    #[test]
    fn cache_overflow_drops_segments() {
        let mut cache = TagCache::new(TagCacheConfig {
            max_cached_per_size: 2,
            ..TagCacheConfig::default()
        });
        for _ in 0..4 {
            let seg = cache.acquire(1024).unwrap();
            cache.release(seg);
            // Immediately re-acquire so the free list refills each round.
        }
        // Park more than the limit.
        let segs: Vec<_> = (0..4).map(|_| cache.acquire(1024).unwrap()).collect();
        for s in segs {
            cache.release(s);
        }
        assert!(cache.cached_segments() <= 2);
        assert!(cache.stats().munmap_calls >= 2);
    }

    #[test]
    fn prewarm_fills_the_free_list_and_acquires_recycle() {
        let mut cache = TagCache::default();
        assert_eq!(cache.prewarm(3).unwrap(), 3);
        assert_eq!(cache.cached_segments(), 3);
        let seg = cache.acquire_default().unwrap();
        assert_eq!(seg.generation(), 2, "prewarmed segment is recycled");
        assert_eq!(cache.stats().tag_reuse_hits, 1);

        // Prewarm respects the per-size cap and the reuse switch.
        let mut capped = TagCache::new(TagCacheConfig {
            max_cached_per_size: 2,
            ..TagCacheConfig::default()
        });
        assert_eq!(capped.prewarm(10).unwrap(), 2);
        let mut disabled = TagCache::new(TagCacheConfig {
            reuse_enabled: false,
            ..TagCacheConfig::default()
        });
        assert_eq!(disabled.prewarm(5).unwrap(), 0);
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut cache = TagCache::default();
        let seg = cache.acquire(1024).unwrap();
        cache.release(seg);
        assert_eq!(cache.cached_segments(), 1);
        cache.clear();
        assert_eq!(cache.cached_segments(), 0);
    }

    #[test]
    fn acquire_default_uses_configured_size() {
        let mut cache = TagCache::new(TagCacheConfig {
            default_segment_size: 8192,
            ..TagCacheConfig::default()
        });
        let seg = cache.acquire_default().unwrap();
        assert!(seg.capacity() >= 8192);
    }
}
