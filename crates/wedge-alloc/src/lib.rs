//! # wedge-alloc — tag-segment allocator substrate
//!
//! The Wedge paper allocates *tagged memory* in two steps: `tag_new()`
//! creates a memory segment (an anonymous `mmap` plus dlmalloc bookkeeping
//! initialisation) and `smalloc(size, tag)` carves buffers out of that
//! segment. Deleted tags are cached in userland and reused — scrubbed by
//! copying pre-initialised bookkeeping structures rather than zeroing — to
//! avoid the system-call cost of a fresh `mmap` (§4.1 of the paper).
//!
//! This crate provides that substrate for the Rust reproduction:
//!
//! * [`Arena`] — a boundary-tag, first-fit allocator (in the spirit of Doug
//!   Lea's `dlmalloc`, which the paper's `smalloc` derives from) that manages
//!   a single segment's payload space. Bookkeeping lives *inside* the
//!   segment so that the paper's "scrub by template" reuse trick is
//!   expressible.
//! * [`Segment`] — a tag-sized memory region: backing bytes plus its arena.
//! * [`TagCache`] — the userland free-list of deleted segments with
//!   scrub-by-template reuse and reuse statistics.
//! * [`AllocStats`] — counters used by the Figure 8 benchmark and by tests.
//!
//! The allocator is deliberately simple (first-fit with immediate
//! coalescing); the evaluation cares about the *relative* cost of
//! `malloc`-style allocation versus `tag_new` with and without reuse, and
//! those cost drivers (header writes vs. full-segment initialisation) are
//! preserved.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod segment;
pub mod stats;
pub mod tagcache;

pub use arena::{AllocError, Arena, HEADER_SIZE, MIN_SEGMENT_SIZE};
pub use segment::{Segment, SegmentId};
pub use stats::AllocStats;
pub use tagcache::{TagCache, TagCacheConfig};
