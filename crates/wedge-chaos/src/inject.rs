//! The injector: walks a [`ChaosSchedule`] in real time against a
//! [`ChaosTarget`], emitting one [`TelemetryEvent::FaultInjected`] audit
//! event per fault so every latency artifact in the same telemetry
//! snapshot is attributable to the fault that caused it.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use wedge_telemetry::{Telemetry, TelemetryEvent};

use crate::schedule::{ChaosSchedule, Fault, ScheduledFault};

/// What a system must expose for chaos to break it. Implemented by the
/// wedge-bench load harness over the full serving stack (every
/// front-end's shards, the cachenet nodes, the listeners' rate
/// limiters); tests implement it with mocks.
///
/// Victim indices are the implementor's to interpret: `shard` spans the
/// target's aggregate shard space, `node` its cache ring, `source` an
/// ordinal the target maps to a hostile address.
pub trait ChaosTarget: Send + Sync {
    /// Total shard-victim space.
    fn shards(&self) -> usize;
    /// Total cache-node-victim space.
    fn cache_nodes(&self) -> usize;
    /// Kill shard `shard` (queued links re-route, supervisors revive).
    fn kill_shard(&self, shard: usize);
    /// Whether shard `shard` currently serves.
    fn shard_healthy(&self, shard: usize) -> bool;
    /// Cumulative supervisor storm count across the target (the
    /// [`Fault::RestartStorm`] loop stops once this increments).
    fn storms(&self) -> u64;
    /// Kill cache node `node`.
    fn kill_cache_node(&self, node: usize);
    /// Restart cache node `node` (epoch bump if it was down).
    fn restart_cache_node(&self, node: usize);
    /// Burst `connections` connect attempts from hostile source ordinal
    /// `source` as fast as the caller can issue them.
    fn flood(&self, source: usize, connections: u32);
}

/// Outcome of one injector pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosRun {
    /// Every fault injected, in injection order, stamped with its
    /// **scheduled** offset — so the log is a pure function of the
    /// schedule and two same-seed runs compare equal (the replay
    /// contract the determinism tests assert).
    pub injected: Vec<ScheduledFault>,
    /// Wall time the pass took.
    pub elapsed: Duration,
}

/// Walk `schedule` against `target`, sleeping until each fault is due.
///
/// Blocks until the last fault has been applied ([`Fault::Brownout`]
/// holds its node down inline; [`Fault::RestartStorm`] waits out each
/// revival). Every fault emits [`TelemetryEvent::FaultInjected`] through
/// `telemetry` at the moment it is applied, stamped with the scheduled
/// offset.
pub fn inject(
    schedule: &ChaosSchedule,
    target: &dyn ChaosTarget,
    telemetry: &Telemetry,
) -> ChaosRun {
    let started = Instant::now();
    let mut injected = Vec::with_capacity(schedule.len());
    for entry in &schedule.entries {
        let due = started + entry.at;
        let now = Instant::now();
        if due > now {
            thread::sleep(due - now);
        }
        telemetry.emit_with(|| TelemetryEvent::FaultInjected {
            fault: entry.fault.name().to_string(),
            victim: entry.fault.victim(),
            at_ms: entry.at.as_millis() as u64,
            // The injector thread owns no request, so this is `None`
            // here; targets that re-emit a fault from a serving thread
            // stamp the live context.
            trace: wedge_telemetry::trace::current().map(|active| active.ctx),
        });
        // Open the tail sampler's fault window: traces overlapping an
        // injected fault are retained even when fast and successful.
        if let Some(tracer) = telemetry.tracer() {
            tracer.note_fault();
        }
        apply(&entry.fault, target);
        injected.push(entry.clone());
    }
    ChaosRun {
        injected,
        elapsed: started.elapsed(),
    }
}

/// [`inject`] on its own thread: the load harness runs offered load on
/// the caller's threads while chaos unfolds concurrently.
pub fn spawn(
    schedule: ChaosSchedule,
    target: Arc<dyn ChaosTarget>,
    telemetry: Telemetry,
) -> thread::JoinHandle<ChaosRun> {
    thread::Builder::new()
        .name("wedge-chaos".to_string())
        .spawn(move || inject(&schedule, target.as_ref(), &telemetry))
        .expect("spawn chaos injector")
}

fn apply(fault: &Fault, target: &dyn ChaosTarget) {
    match fault {
        Fault::KillShard { shard } => target.kill_shard(*shard),
        Fault::CacheKill { node } => target.kill_cache_node(*node),
        Fault::CacheRestart { node } => target.restart_cache_node(*node),
        Fault::Flood {
            source,
            connections,
        } => target.flood(*source, *connections),
        Fault::Brownout { node, hold } => {
            target.kill_cache_node(*node);
            thread::sleep(*hold);
            target.restart_cache_node(*node);
        }
        Fault::RestartStorm { shard, kills } => {
            // Kill the victim every time its supervisor revives it, until
            // the storm detector trips (observable as the target's storm
            // count incrementing) or the kill budget runs out.
            let baseline = target.storms();
            for _ in 0..*kills {
                if target.storms() > baseline {
                    break;
                }
                if !await_healthy(target, *shard, Duration::from_secs(5)) {
                    break;
                }
                target.kill_shard(*shard);
            }
        }
    }
}

fn await_healthy(target: &dyn ChaosTarget, shard: usize, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if target.shard_healthy(shard) {
            return true;
        }
        thread::sleep(Duration::from_millis(1));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ChaosPlan;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU64, Ordering};
    use wedge_telemetry::RecordingSink;

    /// A mock stack: records every call, trips a "storm" after 3 kills
    /// of the same shard.
    #[derive(Default)]
    struct MockStack {
        calls: Mutex<Vec<String>>,
        kills_by_shard: Mutex<std::collections::HashMap<usize, u32>>,
        storms: AtomicU64,
    }

    impl ChaosTarget for MockStack {
        fn shards(&self) -> usize {
            4
        }
        fn cache_nodes(&self) -> usize {
            3
        }
        fn kill_shard(&self, shard: usize) {
            self.calls.lock().push(format!("kill_shard:{shard}"));
            let mut kills = self.kills_by_shard.lock();
            let n = kills.entry(shard).or_insert(0);
            *n += 1;
            if *n >= 3 {
                self.storms.fetch_add(1, Ordering::SeqCst);
                *n = 0;
            }
        }
        fn shard_healthy(&self, _shard: usize) -> bool {
            true
        }
        fn storms(&self) -> u64 {
            self.storms.load(Ordering::SeqCst)
        }
        fn kill_cache_node(&self, node: usize) {
            self.calls.lock().push(format!("cache_kill:{node}"));
        }
        fn restart_cache_node(&self, node: usize) {
            self.calls.lock().push(format!("cache_restart:{node}"));
        }
        fn flood(&self, source: usize, connections: u32) {
            self.calls
                .lock()
                .push(format!("flood:{source}x{connections}"));
        }
    }

    fn quick_plan(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            horizon: Duration::from_millis(200),
            shards: 4,
            cache_nodes: 3,
            flood_sources: 4,
            shard_kills: 2,
            cache_restarts: 1,
            floods: 1,
            storms: 1,
            storm_kills: 4,
            brownouts: 1,
            brownout_hold: Duration::from_millis(5),
            ..ChaosPlan::default()
        }
    }

    /// The satellite gate: one seed, two full injector passes → the
    /// identical injected log (faults, order, victims) and the identical
    /// FaultInjected audit-event sequence.
    #[test]
    fn same_seed_replays_the_identical_fault_sequence() {
        let run_once = || {
            let schedule = ChaosSchedule::generate(&quick_plan(31337));
            let telemetry = Telemetry::new();
            let sink = Arc::new(RecordingSink::default());
            telemetry.install_sink(sink.clone());
            let target = MockStack::default();
            let run = inject(&schedule, &target, &telemetry);
            let calls = target.calls.lock().clone();
            (run.injected, sink.events(), calls)
        };
        let (log_a, events_a, calls_a) = run_once();
        let (log_b, events_b, calls_b) = run_once();
        assert_eq!(log_a, log_b, "identical injected logs");
        assert_eq!(events_a, events_b, "identical audit event streams");
        assert_eq!(calls_a, calls_b, "identical calls on the target");
        assert!(!log_a.is_empty());
        // And a different seed really does produce a different sequence.
        let schedule = ChaosSchedule::generate(&quick_plan(404));
        let telemetry = Telemetry::new();
        let target = MockStack::default();
        let run = inject(&schedule, &target, &telemetry);
        assert_ne!(log_a, run.injected);
    }

    #[test]
    fn every_fault_is_applied_and_audited() {
        let schedule = ChaosSchedule::generate(&quick_plan(11));
        let telemetry = Telemetry::new();
        let sink = Arc::new(RecordingSink::default());
        telemetry.install_sink(sink.clone());
        let target = MockStack::default();
        let run = inject(&schedule, &target, &telemetry);
        assert_eq!(run.injected.len(), schedule.len());
        let events = sink.events();
        assert_eq!(events.len(), schedule.len(), "one audit event per fault");
        for (event, entry) in events.iter().zip(&schedule.entries) {
            match event {
                TelemetryEvent::FaultInjected {
                    fault,
                    victim,
                    at_ms,
                    trace,
                } => {
                    assert!(event.is_audit());
                    assert_eq!(fault, entry.fault.name());
                    assert_eq!(*victim, entry.fault.victim());
                    assert_eq!(*at_ms, entry.at.as_millis() as u64);
                    assert_eq!(*trace, None, "the injector thread serves no request");
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        // The storm loop killed its victim until the mock's detector
        // tripped.
        assert!(target.storms() >= 1, "the storm fault tripped the guard");
        let calls = target.calls.lock();
        assert!(calls.iter().any(|c| c.starts_with("flood:")));
        assert!(calls.iter().any(|c| c.starts_with("cache_kill:")));
        assert!(calls.iter().any(|c| c.starts_with("cache_restart:")));
    }

    #[test]
    fn spawned_injector_runs_concurrently() {
        let schedule = ChaosSchedule::explicit(
            1,
            vec![ScheduledFault {
                at: Duration::from_millis(30),
                fault: Fault::KillShard { shard: 2 },
            }],
        );
        let target = Arc::new(MockStack::default());
        let handle = spawn(schedule, target.clone(), Telemetry::new());
        assert!(
            target.calls.lock().is_empty(),
            "nothing injected before the offset"
        );
        let run = handle.join().expect("injector");
        assert_eq!(run.injected.len(), 1);
        assert!(run.elapsed >= Duration::from_millis(30), "offset honoured");
        assert_eq!(target.calls.lock().as_slice(), ["kill_shard:2"]);
    }
}
