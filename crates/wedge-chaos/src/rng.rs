//! Deterministic randomness for replayable chaos: a seeded splitmix64
//! stream and a Zipf sampler.
//!
//! The vendored `rand` shim only exposes an OS-entropy `thread_rng()`,
//! which is exactly what a chaos schedule must **not** use: the whole
//! contract of [`crate::ChaosSchedule`] is that one seed replays one
//! fault sequence bit-for-bit. [`ChaosRng`] is the self-contained seeded
//! generator every piece of wedge-chaos (and the wedge-bench load
//! harness) draws from instead.

/// A seeded splitmix64 generator: tiny state, full 64-bit period over the
/// counter, and — the property everything here leans on — **identical
/// output for identical seeds**, forever, on every platform.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A generator whose entire future output is determined by `seed`.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` (53 bits of mantissa).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, bound)`; 0 when `bound` is 0.
    pub fn pick(&mut self, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift keeps the draw unbiased enough for scheduling
        // (bound ≪ 2^32 everywhere chaos uses it).
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// A uniform draw in `[lo, hi)` milliseconds-style ranges; `lo` when
    /// the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + ((u128::from(self.next_u64()) * u128::from(hi - lo)) >> 64) as u64
    }

    /// Fork a child stream: deterministic in (parent seed, label), and
    /// decorrelated from the parent's own draws — the load harness gives
    /// each worker its own labelled stream so the arrival schedule and
    /// the per-connection draws never contend on one state.
    pub fn fork(&self, label: u64) -> ChaosRng {
        let mut child = ChaosRng::new(self.state ^ label.wrapping_mul(0xA24B_AED4_963E_E407));
        child.next_u64();
        ChaosRng {
            state: child.next_u64(),
        }
    }
}

/// A Zipf(`exponent`) sampler over ranks `0..n`: rank 0 is the hottest.
///
/// This is the session-reuse distribution of the load harness — a few
/// hot client hosts reconnect constantly (exercising TLS resumption and
/// the cachenet ring on every reconnect) while a long tail of hosts is
/// seen once or twice (full handshakes, cache inserts). Sampling is a
/// binary search over the precomputed CDF: O(log n) per draw, exact.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks (clamped to ≥ 1) with skew `exponent`
    /// (1.0 is the classic Zipf; 0.0 degenerates to uniform).
    pub fn new(n: usize, exponent: f64) -> Zipf {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for weight in &mut cdf {
            *weight /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank in `[0, n)` using `rng`.
    pub fn sample(&self, rng: &mut ChaosRng) -> usize {
        let u = rng.next_f64();
        self.cdf
            .partition_point(|&cum| cum < u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge_and_forks_decorrelate() {
        let mut a = ChaosRng::new(1);
        let mut b = ChaosRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
        let parent = ChaosRng::new(7);
        let mut f1 = parent.fork(0);
        let mut f2 = parent.fork(1);
        let mut f1b = parent.fork(0);
        assert_eq!(f1.next_u64(), f1b.next_u64(), "forks are deterministic");
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn pick_and_range_stay_in_bounds() {
        let mut rng = ChaosRng::new(99);
        for _ in 0..10_000 {
            assert!(rng.pick(7) < 7);
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(rng.pick(0), 0);
        assert_eq!(rng.range_u64(5, 5), 5);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = ChaosRng::new(4242);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[500..].iter().sum();
        assert!(
            head > tail,
            "the 10 hottest ranks must out-draw the coldest 500: {head} vs {tail}"
        );
        assert!(counts[0] > counts[100], "rank 0 is the hottest");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = ChaosRng::new(1);
        let mut counts = vec![0u32; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform-ish: {counts:?}");
        }
    }
}
