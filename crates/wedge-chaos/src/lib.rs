//! # wedge-chaos — seeded fault schedules for the Wedge serving stack
//!
//! The ROADMAP's north star is "millions of users" served **under
//! failure**; this crate is the failure half of that claim. It turns the
//! stack's fault-injection hooks — shard kills (`ShardSet::kill_shard`),
//! cache-node `kill()`/`restart()` epoch bumps, supervisor restart
//! storms, listener rate-limit floods — into a **deterministic, seeded,
//! replayable timeline**:
//!
//! * [`ChaosRng`] / [`Zipf`] — a seeded splitmix64 stream and a Zipf
//!   sampler (the vendored `rand` shim only has OS entropy, which is
//!   exactly wrong for replay). The wedge-bench load harness draws its
//!   arrival schedule and skewed session reuse from the same generator.
//! * [`ChaosSchedule::generate`] — a pure function from [`ChaosPlan`]
//!   (seed, horizon, fault counts, victim spaces) to a sorted timeline of
//!   [`ScheduledFault`]s. Same plan, same schedule, bit for bit.
//! * [`inject`] / [`spawn`] — walk the timeline against any
//!   [`ChaosTarget`] (the load harness implements it over the full
//!   Apache + SSH + POP3 stack), emitting one
//!   [`wedge_telemetry::TelemetryEvent::FaultInjected`] audit event per
//!   fault so a latency spike in the snapshot is attributable to the
//!   fault that caused it.
//!
//! The replay contract: a latency cliff found under seed N is reproduced
//! by re-running seed N — same faults, same order, same victims, same
//! audit stream. `tests` assert this end to end.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod inject;
pub mod rng;
pub mod schedule;

pub use inject::{inject, spawn, ChaosRun, ChaosTarget};
pub use rng::{ChaosRng, Zipf};
pub use schedule::{ChaosPlan, ChaosSchedule, Fault, ScheduledFault};
