//! Seeded fault schedules: what breaks, when, and whom it hits.
//!
//! A [`ChaosSchedule`] is a plain, inspectable list of [`ScheduledFault`]s
//! — offsets from run start plus a [`Fault`] — generated deterministically
//! from a [`ChaosPlan`] by a [`crate::ChaosRng`] seeded with
//! [`ChaosPlan::seed`]. The replay contract: the same plan (seed
//! included) always generates the identical schedule, so a latency cliff
//! found in run N is reproduced exactly by re-running with run N's seed.

use std::time::Duration;

use crate::rng::ChaosRng;

/// One injectable fault. Victim indices are interpreted by the
/// [`crate::ChaosTarget`] the schedule runs against (shard indices span
/// every front-end the target aggregates, node indices its cache ring).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Kill one shard (queued links re-route; a supervisor revives it).
    KillShard {
        /// Victim shard index.
        shard: usize,
    },
    /// Kill one cache node (its keys re-route; lookups brown out until
    /// the breaker opens).
    CacheKill {
        /// Victim node index.
        node: usize,
    },
    /// Restart one cache node — a no-op if it is up, an epoch bump if a
    /// prior [`Fault::CacheKill`] left it down.
    CacheRestart {
        /// Victim node index.
        node: usize,
    },
    /// Kill one shard every time it comes back, `kills` times or until
    /// the supervisor's storm detector trips and abandons it.
    RestartStorm {
        /// Victim shard index.
        shard: usize,
        /// Upper bound on kills before the storm is called off.
        kills: u32,
    },
    /// A hostile source hammers a listener with `connections` connect
    /// attempts as fast as it can — the token-bucket rate limiter must
    /// absorb it.
    Flood {
        /// Hostile-source ordinal (the target maps it to an address).
        source: usize,
        /// Connect attempts in the burst.
        connections: u32,
    },
    /// Cachenet brownout: kill a node, hold it down for `hold`, then
    /// restart it (epoch bump) — long enough under load to trip the
    /// ring's circuit breaker and exercise the half-open probe path.
    Brownout {
        /// Victim node index.
        node: usize,
        /// How long the node stays down.
        hold: Duration,
    },
}

impl Fault {
    /// Short stable name, used in telemetry audit events and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::KillShard { .. } => "kill_shard",
            Fault::CacheKill { .. } => "cache_kill",
            Fault::CacheRestart { .. } => "cache_restart",
            Fault::RestartStorm { .. } => "restart_storm",
            Fault::Flood { .. } => "flood",
            Fault::Brownout { .. } => "brownout",
        }
    }

    /// The victim index this fault targets.
    pub fn victim(&self) -> usize {
        match self {
            Fault::KillShard { shard } | Fault::RestartStorm { shard, .. } => *shard,
            Fault::CacheKill { node }
            | Fault::CacheRestart { node }
            | Fault::Brownout { node, .. } => *node,
            Fault::Flood { source, .. } => *source,
        }
    }
}

/// A fault plus when (offset from run start) to inject it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Offset from schedule start.
    pub at: Duration,
    /// What breaks.
    pub fault: Fault,
}

/// The generator recipe for a [`ChaosSchedule`]: how many of each fault
/// over what horizon, against how many victims — plus the seed that
/// makes the draw replayable.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPlan {
    /// The replay seed. Same plan + same seed = same schedule, always.
    pub seed: u64,
    /// Schedule horizon; every fault lands inside `[10%, 90%]` of it so
    /// the run has clean warm-up and drain windows.
    pub horizon: Duration,
    /// Shard-victim space (across every front-end the target serves).
    pub shards: usize,
    /// Cache-node-victim space.
    pub cache_nodes: usize,
    /// Hostile-source ordinal space for floods.
    pub flood_sources: usize,
    /// Plain shard kills to schedule.
    pub shard_kills: usize,
    /// Cache-node kill→restart pairs to schedule (each kill is followed
    /// by its restart ~10% of the horizon later: a guaranteed epoch bump).
    pub cache_restarts: usize,
    /// Rate-limit floods to schedule.
    pub floods: usize,
    /// Connect attempts per flood burst.
    pub flood_connections: u32,
    /// Restart storms to schedule.
    pub storms: usize,
    /// Kill budget per storm (must exceed the supervisor's
    /// `storm_threshold` to actually trip the detector).
    pub storm_kills: u32,
    /// Cachenet brownouts to schedule.
    pub brownouts: usize,
    /// How long each brownout holds its node down.
    pub brownout_hold: Duration,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan {
            seed: 0xC4A05,
            horizon: Duration::from_secs(10),
            shards: 2,
            cache_nodes: 3,
            flood_sources: 4,
            shard_kills: 1,
            cache_restarts: 1,
            floods: 1,
            flood_connections: 64,
            storms: 0,
            storm_kills: 8,
            brownouts: 0,
            brownout_hold: Duration::from_millis(300),
        }
    }
}

/// A deterministic, seeded timeline of fault injections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// The seed the schedule was generated from (recorded for replay).
    pub seed: u64,
    /// The faults, sorted by offset.
    pub entries: Vec<ScheduledFault>,
}

impl ChaosSchedule {
    /// Generate the schedule `plan` describes. Pure function of `plan`:
    /// calling this twice with equal plans yields equal schedules.
    pub fn generate(plan: &ChaosPlan) -> ChaosSchedule {
        let mut rng = ChaosRng::new(plan.seed);
        let horizon_ms = plan.horizon.as_millis().max(10) as u64;
        let (lo, hi) = (horizon_ms / 10, horizon_ms * 9 / 10);
        let at = |rng: &mut ChaosRng| Duration::from_millis(rng.range_u64(lo, hi.max(lo + 1)));
        let mut entries = Vec::new();
        for _ in 0..plan.shard_kills {
            entries.push(ScheduledFault {
                at: at(&mut rng),
                fault: Fault::KillShard {
                    shard: rng.pick(plan.shards),
                },
            });
        }
        for _ in 0..plan.cache_restarts {
            let node = rng.pick(plan.cache_nodes);
            let kill_at = at(&mut rng);
            entries.push(ScheduledFault {
                at: kill_at,
                fault: Fault::CacheKill { node },
            });
            entries.push(ScheduledFault {
                at: kill_at + Duration::from_millis(horizon_ms / 10),
                fault: Fault::CacheRestart { node },
            });
        }
        for _ in 0..plan.floods {
            entries.push(ScheduledFault {
                at: at(&mut rng),
                fault: Fault::Flood {
                    source: rng.pick(plan.flood_sources),
                    connections: plan.flood_connections,
                },
            });
        }
        for _ in 0..plan.storms {
            entries.push(ScheduledFault {
                at: at(&mut rng),
                fault: Fault::RestartStorm {
                    shard: rng.pick(plan.shards),
                    kills: plan.storm_kills,
                },
            });
        }
        for _ in 0..plan.brownouts {
            entries.push(ScheduledFault {
                at: at(&mut rng),
                fault: Fault::Brownout {
                    node: rng.pick(plan.cache_nodes),
                    hold: plan.brownout_hold,
                },
            });
        }
        // Stable order: by offset, ties broken by insertion order.
        entries.sort_by_key(|entry| entry.at);
        ChaosSchedule {
            seed: plan.seed,
            entries,
        }
    }

    /// A hand-written schedule (tests, targeted repros).
    pub fn explicit(seed: u64, mut entries: Vec<ScheduledFault>) -> ChaosSchedule {
        entries.sort_by_key(|entry| entry.at);
        ChaosSchedule { seed, entries }
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many scheduled faults carry this [`Fault::name`].
    pub fn count_of(&self, name: &str) -> usize {
        self.entries
            .iter()
            .filter(|entry| entry.fault.name() == name)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ChaosPlan {
        ChaosPlan {
            seed: 7,
            horizon: Duration::from_secs(4),
            shards: 6,
            cache_nodes: 3,
            flood_sources: 8,
            shard_kills: 2,
            cache_restarts: 2,
            floods: 2,
            storms: 1,
            brownouts: 1,
            ..ChaosPlan::default()
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = ChaosSchedule::generate(&plan());
        let b = ChaosSchedule::generate(&plan());
        assert_eq!(a, b, "same plan, same schedule — bit for bit");
        let c = ChaosSchedule::generate(&ChaosPlan { seed: 8, ..plan() });
        assert_ne!(a.entries, c.entries, "a different seed reshuffles");
    }

    #[test]
    fn schedule_is_sorted_inside_the_horizon_and_counts_add_up() {
        let schedule = ChaosSchedule::generate(&plan());
        assert_eq!(schedule.len(), 2 + 2 * 2 + 2 + 1 + 1);
        assert_eq!(schedule.count_of("kill_shard"), 2);
        assert_eq!(schedule.count_of("cache_kill"), 2);
        assert_eq!(schedule.count_of("cache_restart"), 2);
        assert_eq!(schedule.count_of("flood"), 2);
        assert_eq!(schedule.count_of("restart_storm"), 1);
        assert_eq!(schedule.count_of("brownout"), 1);
        let horizon = Duration::from_secs(4);
        let mut last = Duration::ZERO;
        for entry in &schedule.entries {
            assert!(entry.at >= last, "sorted by offset");
            assert!(entry.at <= horizon, "inside the horizon");
            last = entry.at;
        }
    }

    #[test]
    fn every_cache_kill_gets_a_later_restart_of_the_same_node() {
        let schedule = ChaosSchedule::generate(&plan());
        for entry in &schedule.entries {
            if let Fault::CacheKill { node } = entry.fault {
                assert!(
                    schedule.entries.iter().any(|other| other.at > entry.at
                        && other.fault == (Fault::CacheRestart { node })),
                    "kill of node {node} must be paired with a restart"
                );
            }
        }
    }

    #[test]
    fn victims_stay_in_range() {
        let schedule = ChaosSchedule::generate(&ChaosPlan {
            shard_kills: 50,
            cache_restarts: 50,
            floods: 50,
            ..plan()
        });
        for entry in &schedule.entries {
            let bound = match entry.fault {
                Fault::KillShard { .. } | Fault::RestartStorm { .. } => 6,
                Fault::CacheKill { .. } | Fault::CacheRestart { .. } | Fault::Brownout { .. } => 3,
                Fault::Flood { .. } => 8,
            };
            assert!(entry.fault.victim() < bound, "victim in range: {entry:?}");
        }
    }
}
