//! The second half of the fast-path acceptance criterion: a single-threaded
//! `mem_read` performs **zero heap allocations** when no tracer is
//! installed.
//!
//! A counting global allocator wraps the system allocator; this file holds
//! exactly one `#[test]` so no concurrent test thread can pollute the
//! counter while tracking is enabled.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to the system allocator; the counter update
// performs no allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_untraced_mem_read_does_zero_heap_allocations() {
    let wedge = wedge_core::Wedge::init();
    let root = wedge.root();
    let tag = root.tag_new().expect("tag");
    let payload: Vec<u8> = (0..64u8).collect();
    let buf = root.smalloc_init(tag, &payload).expect("buf");
    let mut dst = vec![0u8; payload.len()];

    // Warm the permission cache (first read binds the epoch handle and
    // inserts the grant), then measure.
    root.read_into(&buf, 0, &mut dst).expect("warm read");
    assert_eq!(dst, payload);

    dst.fill(0);
    ALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    for _ in 0..1_000 {
        root.read_into(&buf, 0, &mut dst).expect("hot read");
    }
    TRACKING.store(false, Ordering::SeqCst);

    assert_eq!(dst, payload);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "warm, untraced mem_read must not allocate (saw {allocs} allocations over 1000 reads)"
    );

    // Telemetry variant: instrument the kernel on a registry with no sink
    // installed. Kernel counters are pulled at snapshot time, so the warm
    // read path must stay allocation-free with telemetry registered.
    let telemetry = wedge_telemetry::Telemetry::new();
    wedge.kernel().instrument(&telemetry);
    ALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    for _ in 0..1_000 {
        root.read_into(&buf, 0, &mut dst)
            .expect("instrumented read");
    }
    TRACKING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "telemetry-registered (no sink) mem_read must not allocate \
         (saw {allocs} allocations over 1000 reads)"
    );
    assert!(
        telemetry.snapshot().counter("kernel.read") >= 1_000,
        "the pull-model collector must still see the reads"
    );

    // Control: with a tracer installed the same path *does* allocate (it
    // builds the access event), proving the counter actually observes the
    // read path.
    let sink = std::sync::Arc::new(wedge_core::trace::CountingSink::default());
    wedge.kernel().set_tracer(Some(sink));
    ALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    root.read_into(&buf, 0, &mut dst).expect("traced read");
    TRACKING.store(false, Ordering::SeqCst);
    assert!(
        ALLOCS.load(Ordering::SeqCst) > 0,
        "tracer-on control should allocate event state"
    );
}
