//! The kernel fast-path experiment: concurrent tagged reads across the
//! three kernel ablation tiers — legacy global lock, PR 2 sharded-epoch
//! caches, and op-log replicated state — plus the mutation-heavy mixed
//! workload and the shard-boot strategy comparison.
//!
//! Expected shape: the legacy profile flatlines (every reader serialises on
//! one mutex and allocates per read); the sharded and op-log tiers tie on
//! pure reads (same warm path shape: one atomic load, a cache hit, a shard
//! read lock); and the **mixed** workload splits them — per-mutation epoch
//! flushes stampede the sharded tier's readers over the compartments lock,
//! while op-log readers fold the log suffix into their caches
//! replica-locally. The companion assertions
//! (`cargo test --release -p wedge-bench fast_path`) pin the ≥3× legacy
//! criterion, the ≥1.5× mixed-workload criterion and the replay-boot
//! criterion.
//!
//! Alongside the criterion timing groups, the run emits
//! `BENCH_fast_path.json` (via `wedge_bench::report`) carrying all three
//! tiers, the mixed workload, the boot comparison and the op-log counters.
//!
//! Set `WEDGE_FAST_PATH_SMOKE=1` to run a tiny workload — the CI smoke mode
//! that keeps the harness compiling, running and emitting the artifact
//! without burning minutes.

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};

use wedge_bench::fast_path::{
    compare_boot_cost, compare_traced_overhead, run_concurrent_reads,
    run_concurrent_reads_telemetered, run_mixed_reads, FastPathWorkload, KernelProfile,
};
use wedge_bench::report::{artifact_path, bench_artifact, micros, millis};

const TIERS: [KernelProfile; 3] = [
    KernelProfile::Legacy,
    KernelProfile::Sharded,
    KernelProfile::OpLog,
];

fn smoke() -> bool {
    std::env::var_os("WEDGE_FAST_PATH_SMOKE").is_some()
}

fn workload(workers: usize) -> FastPathWorkload {
    FastPathWorkload {
        workers,
        iters_per_worker: if smoke() { 200 } else { 5_000 },
        payload: 64,
    }
}

fn fast_path_timing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast_path");
    if smoke() {
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(10));
        group.measurement_time(Duration::from_millis(50));
    } else {
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(200));
        group.measurement_time(Duration::from_millis(1500));
    }

    for workers in [1usize, 2, 4, 8] {
        for profile in TIERS {
            group.bench_with_input(
                BenchmarkId::new(profile.label(), workers),
                &workers,
                |b, workers| {
                    b.iter(|| run_concurrent_reads(profile, workload(*workers)));
                },
            );
        }
    }
    group.finish();

    let mut mixed = c.benchmark_group("fast_path_mixed");
    if smoke() {
        mixed.sample_size(2);
        mixed.warm_up_time(Duration::from_millis(10));
        mixed.measurement_time(Duration::from_millis(50));
    } else {
        mixed.sample_size(10);
        mixed.warm_up_time(Duration::from_millis(200));
        mixed.measurement_time(Duration::from_millis(1500));
    }
    for profile in [KernelProfile::Sharded, KernelProfile::OpLog] {
        mixed.bench_function(profile.label(), |b| {
            b.iter(|| run_mixed_reads(profile, workload(4)).elapsed);
        });
    }
    mixed.finish();
}

/// Min-over-rounds: scheduler noise only ever adds wall time, so the
/// minimum is the best estimate of the true cost.
fn min_over(rounds: usize, mut run: impl FnMut() -> Duration) -> Duration {
    (0..rounds.max(1)).map(|_| run()).min().expect("rounds")
}

fn emit_json() {
    let rounds = if smoke() { 1 } else { 3 };
    let wl = workload(4);

    // Pure-read wall time for each tier.
    let pure: Vec<(KernelProfile, Duration)> = TIERS
        .iter()
        .map(|&p| (p, min_over(rounds, || run_concurrent_reads(p, wl))))
        .collect();

    // Mutation-heavy mixed workload: the epoch tier vs the op-log tier.
    let mut mixed_mutations = [0u64; 2];
    let mixed: Vec<(KernelProfile, Duration)> = [KernelProfile::Sharded, KernelProfile::OpLog]
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let elapsed = min_over(rounds, || {
                let outcome = run_mixed_reads(p, wl);
                mixed_mutations[i] = mixed_mutations[i].max(outcome.mutations);
                outcome.elapsed
            });
            (p, elapsed)
        })
        .collect();

    // Boot strategies, over 4 shards. Boot rounds are cheap and the
    // min-over-rounds estimator needs several to shake scheduler noise
    // out of the µs-scale boots, so don't thin them in smoke mode.
    let boot = compare_boot_cost(4, 8);

    // One instrumented op-log run for the kernel's own counters.
    let (_, snapshot) = run_concurrent_reads_telemetered(wl);

    // Untriggered-tracing overhead: tracer installed, no trace started.
    // The release gate asserts ≤1.1×; the artifact pins the measured
    // ratio so drift is visible between releases.
    let (trace_baseline, trace_traced) = compare_traced_overhead(wl, rounds.max(3));

    let ratio =
        |num: Duration, den: Duration| num.as_secs_f64() / den.as_secs_f64().max(f64::EPSILON);
    let pure_of = |p: KernelProfile| pure.iter().find(|(q, _)| *q == p).expect("tier").1;
    let mixed_of = |p: KernelProfile| mixed.iter().find(|(q, _)| *q == p).expect("tier").1;

    let json = bench_artifact("fast_path", |w| {
        w.field_bool("smoke", smoke());
        w.nested("workload", |w| {
            w.field_u64("workers", wl.workers as u64);
            w.field_u64("iters_per_worker", wl.iters_per_worker as u64);
            w.field_u64("payload", wl.payload as u64);
        });
        w.nested("pure_read", |w| {
            for (profile, elapsed) in &pure {
                w.field_f64(&format!("{}_ms", profile.label()), millis(*elapsed));
            }
            w.field_f64(
                "sharded_over_legacy",
                ratio(
                    pure_of(KernelProfile::Legacy),
                    pure_of(KernelProfile::Sharded),
                ),
            );
            w.field_f64(
                "oplog_over_sharded",
                ratio(
                    pure_of(KernelProfile::Sharded),
                    pure_of(KernelProfile::OpLog),
                ),
            );
        });
        w.nested("mixed", |w| {
            for (profile, elapsed) in &mixed {
                w.field_f64(&format!("{}_ms", profile.label()), millis(*elapsed));
            }
            w.field_u64("sharded_mutations", mixed_mutations[0]);
            w.field_u64("oplog_mutations", mixed_mutations[1]);
            w.field_f64(
                "oplog_over_sharded",
                ratio(
                    mixed_of(KernelProfile::Sharded),
                    mixed_of(KernelProfile::OpLog),
                ),
            );
        });
        w.nested("boot", |w| {
            w.field_f64("image_copy_us", micros(boot.image_copy));
            w.field_f64("log_replay_us", micros(boot.log_replay));
            w.field_f64("replay_over_copy", ratio(boot.log_replay, boot.image_copy));
        });
        w.nested("oplog", |w| {
            w.field_u64("appended", snapshot.counter("kernel.oplog.appended"));
            w.field_u64("combined", snapshot.counter("kernel.oplog.combined"));
            w.field_u64("replays", snapshot.counter("kernel.oplog.replays"));
        });
        w.nested("tracing", |w| {
            w.field_f64("baseline_ms", millis(trace_baseline));
            w.field_f64("traced_untriggered_ms", millis(trace_traced));
            w.field_f64("traced_over_baseline", ratio(trace_traced, trace_baseline));
        });
    });

    let path = artifact_path("fast_path");
    std::fs::write(&path, &json).expect("write BENCH_fast_path.json");
    println!("wrote {path}");
    println!("{json}");
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    fast_path_timing(&mut criterion);
    emit_json();
}
