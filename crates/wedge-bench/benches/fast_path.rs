//! The kernel fast-path experiment: concurrent tagged reads on the sharded,
//! permission-cached kernel vs. the pre-refactor global-lock baseline.
//!
//! Expected shape: the legacy profile flatlines (every reader serialises on
//! one mutex and allocates per read), while the sharded kernel's aggregate
//! throughput holds as workers are added — its warm path is an epoch load,
//! a cache hit and a shard read lock. The companion assertion
//! (`cargo test -p wedge-bench fast_path`) pins the ≥3× criterion at 4
//! workers.
//!
//! Set `WEDGE_FAST_PATH_SMOKE=1` to run a tiny workload — the CI smoke mode
//! that keeps the harness compiling and running without burning minutes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wedge_bench::fast_path::{run_concurrent_reads, FastPathWorkload, KernelProfile};

fn smoke() -> bool {
    std::env::var_os("WEDGE_FAST_PATH_SMOKE").is_some()
}

fn workload(workers: usize) -> FastPathWorkload {
    FastPathWorkload {
        workers,
        iters_per_worker: if smoke() { 200 } else { 5_000 },
        payload: 64,
    }
}

fn fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast_path");
    if smoke() {
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(10));
        group.measurement_time(Duration::from_millis(50));
    } else {
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(200));
        group.measurement_time(Duration::from_millis(1500));
    }

    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("legacy", workers),
            &workers,
            |b, workers| {
                b.iter(|| run_concurrent_reads(KernelProfile::Legacy, workload(*workers)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sharded", workers),
            &workers,
            |b, workers| {
                b.iter(|| run_concurrent_reads(KernelProfile::Sharded, workload(*workers)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fast_path);
criterion_main!(benches);
