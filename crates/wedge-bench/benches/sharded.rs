//! Shard-count scaling of the forked-shard front-end: the same
//! handshake + GET workload served through 1, 2, 4 and 8 shards.
//!
//! Expected shape: wall time falls (aggregate connections/sec rises)
//! roughly with shard count while think time dominates, flattening once
//! per-connection CPU serialises on the 1-core box. The companion
//! assertion (`cargo test --release -p wedge-bench -q sharded`) pins the
//! ≥1.8× criterion at 4 shards.
//!
//! Set `WEDGE_SHARDED_SMOKE=1` to run a tiny workload — the CI smoke mode
//! that keeps the harness compiling and running without burning minutes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wedge_bench::sharded::{run_sharded, ShardedWorkload};

fn smoke() -> bool {
    std::env::var_os("WEDGE_SHARDED_SMOKE").is_some()
}

fn workload() -> ShardedWorkload {
    ShardedWorkload {
        connections: if smoke() { 4 } else { 16 },
        think_time: Duration::from_millis(if smoke() { 2 } else { 10 }),
        seed: 91,
    }
}

fn sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded");
    if smoke() {
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(10));
        group.measurement_time(Duration::from_millis(50));
    } else {
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(200));
        group.measurement_time(Duration::from_millis(2000));
    }

    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("connections", shards),
            &shards,
            |b, shards| {
                b.iter(|| run_sharded(workload(), *shards));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, sharded);
criterion_main!(benches);
