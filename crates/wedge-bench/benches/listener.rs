//! Listener-front-end scaling and restart latency: the same POP3
//! think-time workload accepted through a `wedge_net::Listener` and
//! served by 1, 2 and 4 supervised shards.
//!
//! Besides the Criterion timings this bench emits the machine-readable
//! artifact **`BENCH_listener.json`** — connections/sec at 1 vs 4 shards
//! and the supervisor's kill-to-healthy restart latency — to the path in
//! `WEDGE_BENCH_JSON` (default: `BENCH_listener.json` at the workspace
//! root), so CI can trend the serving stack without scraping logs.
//!
//! Set `WEDGE_LISTENER_SMOKE=1` to run a tiny workload — the CI smoke
//! mode that keeps the harness compiling and running without burning
//! minutes.

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};

use wedge_bench::listener::{
    listener_bench_json, measure_restart_latency, run_listener_pop3, ListenerWorkload,
};

fn smoke() -> bool {
    std::env::var_os("WEDGE_LISTENER_SMOKE").is_some()
}

fn workload() -> ListenerWorkload {
    ListenerWorkload {
        connections: if smoke() { 6 } else { 32 },
        think_time: Duration::from_millis(if smoke() { 2 } else { 10 }),
        accept_batch: 8,
    }
}

fn listener_scaling(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("listener");
    if smoke() {
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(10));
        group.measurement_time(Duration::from_millis(50));
    } else {
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(200));
        group.measurement_time(Duration::from_millis(2000));
    }
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("connections", shards),
            &shards,
            |b, shards| {
                b.iter(|| run_listener_pop3(workload(), *shards));
            },
        );
    }
    group.finish();
}

fn emit_json() {
    let workload = workload();
    let single = run_listener_pop3(workload, 1);
    let sharded = run_listener_pop3(workload, 4);
    let restart = measure_restart_latency(4);
    let json = listener_bench_json(workload, 4, &single, &sharded, &restart);
    let path = wedge_bench::report::artifact_path("listener");
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}:\n{json}");
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    listener_scaling(&mut criterion);
    emit_json();
}
