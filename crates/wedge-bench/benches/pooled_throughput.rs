//! The wedge-sched experiment: sequential vs. pooled connection service on
//! the simulated Apache workload (full TLS handshake + one GET per
//! connection, 5 ms client think time).
//!
//! Expected shape: the sequential server pays every client's think time
//! serially; the pooled front-end overlaps them, so wall time per batch
//! drops roughly linearly with worker count until workers exceed the
//! batch's parallelism. The companion assertion (`cargo test -p
//! wedge-bench pooled`) pins the ≥2× criterion at 4 workers.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wedge_bench::pooled::{run_pooled, run_sequential, PooledWorkload};

fn workload() -> PooledWorkload {
    PooledWorkload {
        connections: 12,
        think_time: Duration::from_millis(5),
        seed: 77,
    }
}

fn pooled_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pooled_throughput");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1500));

    group.bench_function("sequential", |b| {
        b.iter(|| run_sequential(workload()));
    });

    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("pooled", workers),
            &workers,
            |b, workers| {
                b.iter(|| run_pooled(workload(), *workers));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, pooled_throughput);
criterion_main!(benches);
