//! Table 2 (bottom half): OpenSSH interactive latency — login delay and a
//! 10 MB scp upload, vanilla vs Wedge-partitioned.
//!
//! The paper's finding: Wedge's primitives add negligible latency to the
//! interactive application (0.145 s vs 0.148 s login; 0.376 s vs 0.370 s
//! scp). The expected shape here is the same: the two variants should be
//! within a few percent of each other, because the per-login cost of a
//! handful of sthreads/callgates is small compared with the protocol work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wedge_bench::{ssh_login, ssh_scp};

fn table2_ssh(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_ssh");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));

    for (label, wedged) in [("vanilla", false), ("wedge", true)] {
        group.bench_with_input(
            BenchmarkId::new("login_delay", label),
            &wedged,
            |b, &wedged| b.iter(|| ssh_login(wedged)),
        );
    }

    // 10 MB upload, as in the paper. The in-memory link is much faster than
    // the paper's LAN, so EXPERIMENTS.md adds the LinkCostModel network time
    // when comparing absolute numbers; the vanilla-vs-wedge *ratio* is what
    // this bench establishes.
    const SCP_BYTES: usize = 10 * 1024 * 1024;
    for (label, wedged) in [("vanilla", false), ("wedge", true)] {
        group.bench_with_input(
            BenchmarkId::new("scp_10mb", label),
            &wedged,
            |b, &wedged| b.iter(|| ssh_scp(wedged, SCP_BYTES)),
        );
    }

    group.finish();
}

criterion_group!(benches, table2_ssh);
criterion_main!(benches);
