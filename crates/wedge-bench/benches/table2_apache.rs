//! Table 2 (top half): Apache throughput — Vanilla vs Wedge vs Recycled,
//! with and without SSL session caching.
//!
//! The paper reports requests/second over a 1 Gbps LAN; this bench measures
//! the per-request service time of each variant over the in-memory link
//! (throughput is its reciprocal plus the [`wedge_net::LinkCostModel`]
//! network time — see EXPERIMENTS.md). The expected *shape*: Vanilla is
//! fastest; the Wedge partitioning pays per-request sthread/callgate costs
//! and the gap is widest when session caching removes the RSA handshake
//! work; recycled callgates claw part of the gap back.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wedge_bench::{ApacheBed, ApacheVariant};

fn table2_apache(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_apache");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));

    let variants = [
        ("vanilla", ApacheVariant::Vanilla),
        ("simple", ApacheVariant::Simple),
        ("wedge", ApacheVariant::Wedge),
        ("recycled", ApacheVariant::Recycled),
    ];

    for (label, variant) in variants {
        // Sessions cached: every measured connection resumes, so the server
        // never performs the RSA key exchange.
        group.bench_with_input(
            BenchmarkId::new("sessions_cached", label),
            &variant,
            |b, &variant| {
                let mut bed = ApacheBed::new(variant, 31);
                bed.warm();
                b.iter(|| bed.request("/index.html"))
            },
        );

        // Sessions not cached: every measured connection performs the full
        // handshake including the RSA decryption of the premaster secret.
        group.bench_with_input(
            BenchmarkId::new("sessions_not_cached", label),
            &variant,
            |b, &variant| {
                let mut bed = ApacheBed::new(variant, 32);
                b.iter(|| {
                    bed.forget_session();
                    bed.request("/index.html")
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, table2_apache);
criterion_main!(benches);
