//! Ablations of the design choices the paper calls out in §3.3/§4.1/§6:
//!
//! * tag-reuse cache on vs off ("this mechanism improved the throughput of
//!   our partitioned Apache server by 20%"),
//! * standard vs recycled callgate invocation (the 8× of Figure 7),
//! * scrub-by-template vs scrub-by-zeroing on tag reuse,
//! * enforcement vs emulation mode (the cost of the Crowbar workflow's
//!   "grant everything, log violations" library),
//! * copy-on-write vs read-write grants on the write path,
//! * bare context vs the resource-quota wrapper (the DoS-mitigation
//!   extension of `wedge_core::resource`, not part of the published system).

use criterion::{criterion_group, criterion_main, Criterion};
use crossbeam::channel::unbounded;

use wedge_alloc::{TagCache, TagCacheConfig};
use wedge_core::callgate::typed_entry;
use wedge_core::{LimitedCtx, MemProt, ResourceLimits, SecurityPolicy, Wedge};

fn ablation_tag_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tag_reuse");
    group.sample_size(40);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for (label, reuse, template) in [
        ("reuse_template_scrub", true, true),
        ("reuse_zero_scrub", true, false),
        ("no_reuse", false, true),
    ] {
        group.bench_function(label, |b| {
            let mut cache = TagCache::new(TagCacheConfig {
                reuse_enabled: reuse,
                scrub_with_template: template,
                ..TagCacheConfig::default()
            });
            // Warm the cache so the reuse configurations can hit.
            let seg = cache.acquire(64 * 1024).expect("segment");
            cache.release(seg);
            b.iter(|| {
                let segment = cache.acquire(64 * 1024).expect("segment");
                cache.release(segment);
            })
        });
    }
    group.finish();
}

fn ablation_callgate_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_callgate_modes");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));

    let wedge = Wedge::init();
    let root = wedge.root();
    let entry = wedge
        .kernel()
        .cgate_register("ablation_noop", typed_entry(|_ctx, _t, n: u64| Ok(n * 2)));
    let mut caller_policy = SecurityPolicy::deny_all();
    caller_policy.sc_cgate_add(entry, SecurityPolicy::deny_all(), None);

    for (label, recycled) in [("standard_callgate", false), ("recycled_callgate", true)] {
        let (cmd_tx, cmd_rx) = unbounded::<()>();
        let (done_tx, done_rx) = unbounded::<u64>();
        let _caller = root
            .sthread_create("ablation-caller", &caller_policy, move |ctx| {
                while cmd_rx.recv().is_ok() {
                    let value = if recycled {
                        ctx.cgate_recycled_expect::<u64>(
                            entry,
                            &SecurityPolicy::deny_all(),
                            Box::new(3u64),
                        )
                    } else {
                        ctx.cgate_expect::<u64>(entry, &SecurityPolicy::deny_all(), Box::new(3u64))
                    }
                    .unwrap_or(0);
                    if done_tx.send(value).is_err() {
                        break;
                    }
                }
            })
            .expect("caller");
        group.bench_function(label, |b| {
            b.iter(|| {
                cmd_tx.send(()).expect("cmd");
                done_rx.recv().expect("reply")
            })
        });
    }
    group.finish();
}

fn ablation_enforcement_vs_emulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_enforcement");
    group.sample_size(40);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for (label, emulation) in [("enforcing", false), ("emulation_mode", true)] {
        group.bench_function(label, |b| {
            let wedge = Wedge::init();
            wedge.kernel().set_emulation(emulation);
            let root = wedge.root();
            let tag = root.tag_new().expect("tag");
            let buf = root.smalloc_init(tag, &[0u8; 256]).expect("buf");
            b.iter(|| {
                root.write(&buf, 0, &[1u8; 64]).expect("write");
                root.read(&buf, 0, 64).expect("read")
            })
        });
    }
    group.finish();
}

fn ablation_cow_vs_rw(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cow_write_path");
    group.sample_size(40);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for (label, prot) in [
        ("read_write_grant", MemProt::ReadWrite),
        ("cow_grant", MemProt::CopyOnWrite),
    ] {
        group.bench_function(label, |b| {
            let wedge = Wedge::init();
            let root = wedge.root();
            let tag = root.tag_new().expect("tag");
            let buf = root.smalloc_init(tag, &[0u8; 1024]).expect("buf");
            let mut policy = SecurityPolicy::deny_all();
            policy.sc_mem_add(tag, prot);
            let (cmd_tx, cmd_rx) = unbounded::<()>();
            let (done_tx, done_rx) = unbounded::<()>();
            let _writer = root
                .sthread_create("cow-writer", &policy, move |ctx| {
                    while cmd_rx.recv().is_ok() {
                        ctx.write(&buf, 0, &[7u8; 128]).expect("write");
                        if done_tx.send(()).is_err() {
                            break;
                        }
                    }
                })
                .expect("writer");
            b.iter(|| {
                cmd_tx.send(()).expect("cmd");
                done_rx.recv().expect("done")
            })
        });
    }
    group.finish();
}

fn ablation_resource_quota(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_resource_quota");
    group.sample_size(40);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));

    // Allocate/write/read/free cycle through the bare context vs through the
    // quota wrapper: the accounting cost of the DoS-mitigation extension.
    group.bench_function("bare_ctx", |b| {
        let wedge = Wedge::init();
        let root = wedge.root();
        let tag = root.tag_new().expect("tag");
        b.iter(|| {
            let buf = root.smalloc(256, tag).expect("smalloc");
            root.write(&buf, 0, &[1u8; 128]).expect("write");
            root.read(&buf, 0, 128).expect("read");
            root.sfree(&buf).expect("sfree");
        })
    });
    group.bench_function("quota_wrapped_ctx", |b| {
        let wedge = Wedge::init();
        let limited = LimitedCtx::new(
            wedge.root(),
            ResourceLimits::unlimited()
                .with_tagged_bytes(1 << 30)
                .with_cpu_ticks(u64::MAX / 2),
        );
        let tag = limited.tag_new().expect("tag");
        b.iter(|| {
            let buf = limited.smalloc(256, tag).expect("smalloc");
            limited.write(&buf, 0, &[1u8; 128]).expect("write");
            limited.read(&buf, 0, 128).expect("read");
            limited.sfree(&buf).expect("sfree");
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_tag_reuse,
    ablation_callgate_modes,
    ablation_enforcement_vs_emulation,
    ablation_cow_vs_rw,
    ablation_resource_quota
);
criterion_main!(benches);
