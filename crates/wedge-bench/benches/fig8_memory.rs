//! Figure 8: memory-call latency — `malloc` vs `tag_new` (best case, with
//! reuse) vs `mmap` (the fresh-segment path).
//!
//! The paper's finding: smalloc/malloc are essentially identical; creating a
//! tag costs ≈4× malloc when a deleted tag can be reused (scrub by copying
//! pre-initialised bookkeeping) and ≈mmap cost (≈22× malloc) when it cannot.

use criterion::{criterion_group, criterion_main, Criterion};

use wedge_alloc::{Arena, Segment, SegmentId, TagCache, TagCacheConfig};
use wedge_core::Wedge;

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_memory");
    group.sample_size(60);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));

    // malloc: a plain allocate + free inside an existing segment (the
    // dlmalloc-equivalent path smalloc shares).
    let mut arena = Arena::new(256 * 1024).expect("arena");
    group.bench_function("malloc", |b| {
        b.iter(|| {
            let p = arena.alloc(64).expect("alloc");
            arena.free(p).expect("free");
        })
    });

    // smalloc through the kernel (policy check + arena allocation).
    let wedge = Wedge::init();
    let root = wedge.root();
    let tag = root.tag_new().expect("tag");
    group.bench_function("smalloc", |b| {
        b.iter(|| {
            let buf = root.smalloc(64, tag).expect("smalloc");
            root.sfree(&buf).expect("sfree");
        })
    });

    // tag_new with reuse: acquire/release against a warm cache.
    let mut cache = TagCache::new(TagCacheConfig::default());
    let warm = cache.acquire(64 * 1024).expect("segment");
    cache.release(warm);
    group.bench_function("tag_new_reuse", |b| {
        b.iter(|| {
            let segment = cache.acquire(64 * 1024).expect("segment");
            cache.release(segment);
        })
    });

    // mmap path: a fresh segment every time (no reuse possible).
    let mut fresh_id = 0u64;
    group.bench_function("mmap_fresh_segment", |b| {
        b.iter(|| {
            fresh_id += 1;
            Segment::new(SegmentId(fresh_id), 64 * 1024).expect("segment")
        })
    });

    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
