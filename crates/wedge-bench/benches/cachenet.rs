//! Distributed session-cache benchmarks: remote lookup latency against a
//! 3-node ring, and cross-machine resumption at 1 vs 3 cache nodes with
//! a node killed between the phases.
//!
//! Besides the Criterion timings this bench emits the machine-readable
//! artifact **`BENCH_cachenet.json`** — local-vs-remote lookup latency
//! (and their ratio), the wire-v2 `batched` ablation (per-key remote
//! latency at batch 1/4/16 and the pipelined-vs-serial depth sweep),
//! plus the resumption rates under a node kill — to the path in
//! `WEDGE_BENCH_JSON` (default: `BENCH_cachenet.json` at the workspace
//! root), so CI can trend the cache protocol without scraping logs.
//!
//! Set `WEDGE_CACHENET_SMOKE=1` to run a tiny workload — the CI smoke
//! mode that keeps the harness compiling and running without burning
//! minutes.

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};

use wedge_bench::cachenet::{
    cachenet_bench_json, measure_batched, measure_lookup_latency, ring_for, run_cross_machine,
    spawn_nodes, CachenetWorkload, BATCH_SIZES,
};
use wedge_tls::{SessionId, SessionStore};

fn smoke() -> bool {
    std::env::var_os("WEDGE_CACHENET_SMOKE").is_some()
}

fn workload() -> CachenetWorkload {
    CachenetWorkload {
        sessions: if smoke() { 8 } else { 30 },
        lookups: if smoke() { 64 } else { 512 },
    }
}

fn ring_lookup_latency(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("cachenet");
    if smoke() {
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(10));
        group.measurement_time(Duration::from_millis(50));
    } else {
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(200));
        group.measurement_time(Duration::from_millis(1000));
    }
    for node_count in [1usize, 3] {
        let nodes = spawn_nodes(node_count);
        let ring = ring_for(&nodes, 1);
        let id = SessionId::from_bytes(&[7u8; 16]).expect("id");
        ring.insert(id, b"premaster-secret".to_vec());
        group.bench_with_input(
            BenchmarkId::new("remote_lookup", node_count),
            &node_count,
            |b, _| {
                b.iter(|| ring.lookup(&id).expect("hit"));
            },
        );
    }
    // Per-key cost of coalesced LookupBatch frames at each batch size
    // (one node: the whole batch rides one wire frame).
    let nodes = spawn_nodes(1);
    let ring = ring_for(&nodes, 1);
    let keys: Vec<SessionId> = (0..16u8)
        .map(|n| SessionId::from_bytes(&[n | 0x40; 16]).expect("id"))
        .collect();
    for key in &keys {
        ring.insert(*key, b"premaster-secret".to_vec());
    }
    for batch in BATCH_SIZES {
        let chunk: Vec<SessionId> = keys.iter().copied().take(batch).collect();
        group.bench_with_input(BenchmarkId::new("batched_lookup", batch), &batch, |b, _| {
            b.iter(|| {
                let results = ring.lookup_batch(&chunk);
                assert!(results.iter().all(Option::is_some));
            });
        });
    }
    group.finish();
}

fn emit_json() {
    let workload = workload();
    let latency = measure_lookup_latency(workload.lookups);
    let batched = if smoke() {
        measure_batched(2, 32)
    } else {
        measure_batched(5, 128)
    };
    let single = run_cross_machine(workload.sessions, 1, true);
    let three = run_cross_machine(workload.sessions, 3, true);
    let json = cachenet_bench_json(workload, &latency, &batched, &single, &three);
    let path = wedge_bench::report::artifact_path("cachenet");
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}:\n{json}");
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    ring_lookup_latency(&mut criterion);
    emit_json();
}
