//! Open-loop load + chaos: offered connections/sec ramped over the whole
//! serving stack (Apache + SSH + POP3 behind rate-limited listeners,
//! TLS resumption through the cachenet ring) while a seeded
//! `ChaosSchedule` kills shards, bounces cache nodes and floods the rate
//! limiters mid-run.
//!
//! Emits the machine-readable artifact **`BENCH_load.json`** — per-phase
//! p50/p99/p999 completion latency (measured from the *scheduled*
//! arrival, so queueing under faults counts), achieved connections/sec,
//! the injected fault timeline and per-front accounting — to the path in
//! `WEDGE_BENCH_JSON` (default: `BENCH_load.json` at the workspace
//! root).
//!
//! Set `WEDGE_LOAD_SMOKE=1` for the tiny CI workload.

use std::time::Duration;

use criterion::Criterion;

use wedge_bench::load::{
    load_bench_json, probe_idle_link_memory, run_load, LoadPhase, LoadProfile,
};
use wedge_chaos::{ChaosPlan, ChaosSchedule};

fn smoke() -> bool {
    std::env::var_os("WEDGE_LOAD_SMOKE").is_some()
}

fn profile() -> LoadProfile {
    if smoke() {
        LoadProfile {
            hosts: 12,
            phases: vec![
                LoadPhase::new("warm", 25.0, Duration::from_millis(300)),
                LoadPhase::new("peak", 75.0, Duration::from_millis(300)),
            ],
            workers: 6,
            ..LoadProfile::default()
        }
    } else {
        LoadProfile {
            hosts: 256,
            phases: vec![
                LoadPhase::new("warm", 40.0, Duration::from_millis(1_000)),
                LoadPhase::new("ramp", 150.0, Duration::from_millis(1_000)),
                LoadPhase::new("peak", 400.0, Duration::from_millis(1_000)),
            ],
            workers: 16,
            ..LoadProfile::default()
        }
    }
}

fn schedule(profile: &LoadProfile) -> ChaosSchedule {
    let horizon: Duration = profile.phases.iter().map(|p| p.duration).sum();
    ChaosSchedule::generate(&ChaosPlan {
        seed: 0xC4A05,
        horizon,
        shards: 3 * profile.shards_per_front,
        cache_nodes: 3,
        flood_sources: 4,
        shard_kills: 1,
        cache_restarts: 1,
        floods: 1,
        flood_connections: if smoke() { 64 } else { 256 },
        ..ChaosPlan::default()
    })
}

fn load_timing(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("load");
    group.sample_size(2);
    group.warm_up_time(Duration::from_millis(10));
    group.measurement_time(Duration::from_millis(50));
    // One timed fault-free baseline pass at the warm-phase rate: the
    // Criterion number tracks harness overhead drift, the JSON artifact
    // below carries the real latency distributions.
    let baseline = LoadProfile {
        phases: vec![LoadPhase::new(
            "baseline",
            25.0,
            Duration::from_millis(if smoke() { 150 } else { 400 }),
        )],
        ..profile()
    };
    group.bench_function("baseline", |b| {
        b.iter(|| run_load(&baseline, &ChaosSchedule::explicit(0, Vec::new())));
    });
    group.finish();
}

fn emit_json() {
    let profile = profile();
    let schedule = schedule(&profile);
    let report = run_load(&profile, &schedule);
    assert!(
        report.accounts_balance(),
        "every front-end must balance submitted == completed + rejected"
    );
    assert_eq!(
        report.fault_events,
        report.faults.len(),
        "every injected fault must be audited in telemetry"
    );
    // Idle-link memory ceiling: park the host population (silent links)
    // on a deferred-accept front and record RSS per parked link.
    let idle_links = if smoke() { 256 } else { 2_048 };
    let idle = probe_idle_link_memory(&profile, idle_links);
    let json = load_bench_json(&profile, &report, idle.as_ref());
    let path = wedge_bench::report::artifact_path("load");
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}:\n{json}");
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    load_timing(&mut criterion);
    emit_json();
}
