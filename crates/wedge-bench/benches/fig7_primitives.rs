//! Figure 7: creation/invocation latency of the isolation and concurrency
//! primitives — pthread, recycled callgate, sthread, callgate, fork.
//!
//! The paper's finding: sthreads and callgates cost about as much as fork,
//! recycled callgates cost about as much as a pthread (≈8× cheaper than a
//! standard callgate), and pthreads are the cheapest.

use criterion::{criterion_group, criterion_main, Criterion};
use crossbeam::channel::unbounded;

use wedge_core::callgate::typed_entry;
use wedge_core::procsim::{ForkSim, PthreadSim};
use wedge_core::{SecurityPolicy, Wedge};

fn fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_primitives");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));

    // pthread: bare thread create + join.
    group.bench_function("pthread", |b| {
        b.iter(|| PthreadSim::spawn_and_join(|| std::hint::black_box(1 + 1)))
    });

    // fork: thread create + full address-space image copy (4 MiB parent).
    let parent = ForkSim::new(4 * 1024 * 1024, 32);
    group.bench_function("fork", |b| {
        b.iter(|| parent.fork_and_wait(|image, fds| std::hint::black_box(image.len() + fds.len())))
    });

    // sthread: default-deny compartment create + join.
    let wedge = Wedge::init();
    let root = wedge.root();
    group.bench_function("sthread", |b| {
        b.iter(|| {
            let handle = root
                .sthread_create("bench-sthread", &SecurityPolicy::deny_all(), |_ctx| 1u32)
                .expect("sthread");
            handle.join().expect("join")
        })
    });

    // callgate and recycled callgate: invoked from a persistent caller
    // sthread so only the invocation itself is measured.
    let entry = wedge
        .kernel()
        .cgate_register("bench_noop", typed_entry(|_ctx, _t, n: u64| Ok(n + 1)));
    let mut caller_policy = SecurityPolicy::deny_all();
    caller_policy.sc_cgate_add(entry, SecurityPolicy::deny_all(), None);

    for (label, recycled) in [("callgate", false), ("recycled_callgate", true)] {
        let (cmd_tx, cmd_rx) = unbounded::<()>();
        let (done_tx, done_rx) = unbounded::<u64>();
        let _caller = root
            .sthread_create("bench-caller", &caller_policy, move |ctx| {
                while cmd_rx.recv().is_ok() {
                    let result = if recycled {
                        ctx.cgate_recycled_expect::<u64>(
                            entry,
                            &SecurityPolicy::deny_all(),
                            Box::new(1u64),
                        )
                    } else {
                        ctx.cgate_expect::<u64>(entry, &SecurityPolicy::deny_all(), Box::new(1u64))
                    }
                    .unwrap_or(0);
                    if done_tx.send(result).is_err() {
                        break;
                    }
                }
            })
            .expect("caller sthread");
        group.bench_function(label, |b| {
            b.iter(|| {
                cmd_tx.send(()).expect("command");
                done_rx.recv().expect("reply")
            })
        });
    }

    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
