//! Figure 9: run-time overhead of Crowbar's `cb-log` instrumentation.
//!
//! Each workload (an SSH login, an Apache request, and the synthetic
//! SPEC-like kernels) runs three times: *native* (no tracer installed),
//! *pin* (the [`crowbar::PinSim`] per-event tax, modelling Pin with no
//! instrumentation), and *crowbar* (the full [`crowbar::CbLog`] tracer).
//! The paper's finding: cb-log ≈96× native and ≈27× Pin-only on average,
//! with much smaller ratios for OpenSSH and Apache than for the SPEC codes.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use crowbar::{CbLog, PinSim};
use wedge_bench::spec::{run_spec, spec_workloads};
use wedge_bench::ApacheVariant;
use wedge_core::{AccessSink, Wedge};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Native,
    Pin,
    Crowbar,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Native => "native",
            Mode::Pin => "pin",
            Mode::Crowbar => "crowbar",
        }
    }

    fn all() -> [Mode; 3] {
        [Mode::Native, Mode::Pin, Mode::Crowbar]
    }
}

fn install(wedge: &Wedge, mode: Mode) -> Option<Arc<CbLog>> {
    match mode {
        Mode::Native => {
            wedge.kernel().set_tracer(None);
            None
        }
        Mode::Pin => {
            wedge.kernel().set_tracer(Some(Arc::new(PinSim::new())));
            None
        }
        Mode::Crowbar => {
            let log = CbLog::new();
            log.install(wedge.kernel());
            Some(log)
        }
    }
}

fn fig9_spec(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_crowbar_spec");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for workload in spec_workloads() {
        for mode in Mode::all() {
            group.bench_with_input(
                BenchmarkId::new(workload.name, mode.label()),
                &mode,
                |b, &mode| {
                    let wedge = Wedge::init();
                    let log = install(&wedge, mode);
                    let root = wedge.root();
                    b.iter(|| run_spec(&root, workload).expect("workload"));
                    if let Some(log) = log {
                        // Keep the trace alive so the work is not elided.
                        std::hint::black_box(log.record_count());
                    }
                },
            );
        }
    }
    group.finish();
}

fn install_on_kernel(kernel: &wedge_core::Kernel, mode: Mode) {
    match mode {
        Mode::Native => kernel.set_tracer(None),
        Mode::Pin => kernel.set_tracer(Some(Arc::new(PinSim::new()))),
        Mode::Crowbar => {
            let log = CbLog::new();
            kernel.set_tracer(Some(log as Arc<dyn AccessSink>));
        }
    }
}

fn fig9_applications(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_crowbar_apps");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));

    // OpenSSH login under each instrumentation mode: the tracer is installed
    // on the *server's* kernel, so every compartment of the Wedge-partitioned
    // sshd runs instrumented (the client is uninstrumented, as in the paper).
    for mode in Mode::all() {
        group.bench_with_input(
            BenchmarkId::new("ssh_login", mode.label()),
            &mode,
            |b, &mode| {
                let bed = wedge_bench::SshBed::new(21);
                install_on_kernel(&bed.kernel(), mode);
                b.iter(|| bed.login())
            },
        );
    }

    // Apache request under each instrumentation mode.
    for mode in Mode::all() {
        group.bench_with_input(
            BenchmarkId::new("apache_request", mode.label()),
            &mode,
            |b, &mode| {
                let mut bed = wedge_bench::ApacheBed::new(ApacheVariant::Wedge, 22);
                install_on_kernel(&bed.kernel(), mode);
                bed.forget_session();
                b.iter(|| bed.request("/index.html"))
            },
        );
    }

    group.finish();
}

criterion_group!(benches, fig9_spec, fig9_applications);
criterion_main!(benches);
