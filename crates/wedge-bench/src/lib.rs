//! # wedge-bench — shared harness code for the evaluation benchmarks
//!
//! Each Criterion bench target under `benches/` regenerates one figure or
//! table of the paper's evaluation (§6); this library holds the pieces they
//! share: synthetic SPEC-like workloads for the Crowbar overhead experiment
//! (Figure 9) and end-to-end drivers for the Apache and OpenSSH case
//! studies (Table 2).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cachenet;
pub mod fast_path;
pub mod harness;
pub mod listener;
pub mod load;
pub mod pooled;
pub mod report;
pub mod sharded;
pub mod spec;

pub use cachenet::{
    cachenet_bench_json, measure_lookup_latency, run_cross_machine, CachenetWorkload,
    LatencyComparison, ResumptionRun,
};
pub use fast_path::{
    compare_fast_path, run_concurrent_reads, FastPathComparison, FastPathWorkload, KernelProfile,
};
pub use harness::{apache_request, ssh_login, ssh_scp, ApacheBed, ApacheVariant, SshBed};
pub use listener::{
    listener_bench_json, measure_restart_latency, run_listener_pop3, ListenerRun, ListenerWorkload,
    RestartMeasurement,
};
pub use load::{
    load_bench_json, probe_idle_link_memory, run_load, run_load_with_plan, FrontReport,
    IdleLinkProbe, LoadPhase, LoadProfile, LoadRunReport, LoadStack, PhaseReport, ProtocolMix,
};
pub use pooled::{compare, run_pooled, run_sequential, PooledWorkload, ThroughputComparison};
pub use sharded::{
    compare_sharded, run_sharded, ShardScalingComparison, ShardedRun, ShardedWorkload,
};
pub use spec::{spec_workloads, SpecWorkload};
