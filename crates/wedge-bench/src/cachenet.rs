//! Distributed session-cache measurements: remote lookup latency vs the
//! in-process cache, and cross-machine resumption rates at 1 vs 3 cache
//! nodes when a node dies mid-run.
//!
//! The companion bench target (`benches/cachenet.rs`) emits the
//! machine-readable artifact `BENCH_cachenet.json` for CI trend
//! tracking, mirroring `BENCH_listener.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wedge_apache::partitioned::ConnectionReport;
use wedge_apache::{ConcurrentApache, ConcurrentApacheConfig, PageStore};
use wedge_cachenet::{CacheNode, CacheNodeConfig, CacheRing, CacheRingConfig};
use wedge_crypto::{RsaKeyPair, WedgeRng};
use wedge_net::{duplex_pair, SourceAddr};
use wedge_tls::{SessionId, SessionStore, SharedSessionCache, TlsClient};

/// Sizing of the cachenet measurements.
#[derive(Debug, Clone, Copy)]
pub struct CachenetWorkload {
    /// Sessions driven through the cross-machine resumption runs.
    pub sessions: usize,
    /// Lookups timed for the latency comparison.
    pub lookups: usize,
}

impl Default for CachenetWorkload {
    fn default() -> Self {
        CachenetWorkload {
            sessions: 30,
            lookups: 512,
        }
    }
}

fn test_id(n: usize) -> SessionId {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&(n as u64).to_le_bytes());
    bytes[8] = 0xBE;
    SessionId::from_bytes(&bytes).expect("16 bytes")
}

/// Spin up `count` cache nodes.
pub fn spawn_nodes(count: usize) -> Vec<CacheNode> {
    (0..count)
        .map(|n| CacheNode::spawn(CacheNodeConfig::named(&format!("bench-cache-{n}"))))
        .collect()
}

/// A quick ring client over `nodes` for simulated machine `machine`.
pub fn ring_for(nodes: &[CacheNode], machine: u8) -> Arc<CacheRing> {
    Arc::new(CacheRing::new(
        nodes.iter().map(CacheNode::endpoint).collect(),
        CacheRingConfig {
            source: SourceAddr::new([10, 70, 0, machine], 45_000),
            op_timeout: Duration::from_millis(200),
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(100),
            ..CacheRingConfig::default()
        },
    ))
}

/// Local-vs-remote lookup cost.
#[derive(Debug, Clone, Copy)]
pub struct LatencyComparison {
    /// Mean in-process `SharedSessionCache` lookup (the PR 3 baseline).
    pub local_avg: Duration,
    /// Mean `CacheRing` lookup answered remotely by a cache node (dial
    /// amortised over a persistent link, one protocol round trip each).
    pub remote_avg: Duration,
    /// `remote_avg / local_avg` — what crossing the simulated wire costs
    /// over touching process memory.
    pub overhead: f64,
}

/// Time `lookups` hits against the in-process cache and against a
/// 3-node ring (every ring lookup is a remote round trip — the local
/// tier is only a fallback, so the measurement isolates the protocol).
pub fn measure_lookup_latency(lookups: usize) -> LatencyComparison {
    let lookups = lookups.max(1);
    let keys: Vec<SessionId> = (0..64).map(test_id).collect();

    let local = SharedSessionCache::with_capacity(256);
    for key in &keys {
        local.insert(*key, b"premaster-secret".to_vec());
    }
    let started = Instant::now();
    for n in 0..lookups {
        assert!(local.lookup(&keys[n % keys.len()]).is_some());
    }
    let local_avg = started.elapsed() / lookups as u32;

    let nodes = spawn_nodes(3);
    // A deliberately *lenient* ring for the latency measurement: a long
    // op timeout and an effectively-disabled breaker, so one OS
    // scheduling stall on a loaded 1-core CI box cannot open a circuit
    // and silently reroute the timed lookups to the local tier (the
    // assertion below pins that every timed lookup stayed remote).
    let ring = CacheRing::new(
        nodes.iter().map(CacheNode::endpoint).collect(),
        CacheRingConfig {
            source: SourceAddr::new([10, 70, 0, 1], 45_000),
            op_timeout: Duration::from_secs(5),
            breaker_threshold: u32::MAX,
            breaker_cooldown: Duration::from_millis(100),
            ..CacheRingConfig::default()
        },
    );
    for key in &keys {
        ring.insert(*key, b"premaster-secret".to_vec());
    }
    let started = Instant::now();
    for n in 0..lookups {
        assert!(ring.lookup(&keys[n % keys.len()]).is_some());
    }
    let remote_avg = started.elapsed() / lookups as u32;
    assert!(
        ring.stats().remote_hits >= lookups as u64,
        "every timed ring lookup must be served remotely"
    );

    LatencyComparison {
        local_avg,
        remote_avg,
        overhead: remote_avg.as_secs_f64() / local_avg.as_secs_f64().max(f64::EPSILON),
    }
}

/// Batch sizes of the per-key latency ablation (and the depths of the
/// pipelined-vs-serial sweep).
pub const BATCH_SIZES: [usize; 3] = [1, 4, 16];

/// Wire-v2 economics against one cache node: what batching and
/// pipelining buy over serial single-op round trips.
#[derive(Debug, Clone, Copy)]
pub struct BatchedComparison {
    /// Per-**key** wall cost of a remote `lookup_batch` at
    /// [`BATCH_SIZES`] keys per frame (min over rounds — scheduler noise
    /// only adds time). `per_key[0]` is the single-op baseline the batch
    /// sizes amortise against.
    pub per_key: [Duration; 3],
    /// Wall per op with [`BATCH_SIZES`]`[i]` callers pipelining
    /// concurrently on the node's one persistent link.
    pub pipelined_per_op: [Duration; 3],
    /// Wall per op for the same op totals issued serially (the v1
    /// one-in-flight discipline).
    pub serial_per_op: [Duration; 3],
}

/// Measure [`BatchedComparison`] over `rounds` interleaved rounds with
/// `ops` remote lookups per configuration per round. Uses one node and a
/// breaker-disabled, long-timeout ring so every timed op is a genuine
/// remote round trip (asserted), never a local-tier fallback.
pub fn measure_batched(rounds: usize, ops: usize) -> BatchedComparison {
    let rounds = rounds.max(1);
    let ops = ops.max(BATCH_SIZES[2]);
    let nodes = spawn_nodes(1);
    let ring = CacheRing::new(
        nodes.iter().map(CacheNode::endpoint).collect(),
        CacheRingConfig {
            source: SourceAddr::new([10, 70, 0, 9], 45_100),
            op_timeout: Duration::from_secs(5),
            breaker_threshold: u32::MAX,
            breaker_cooldown: Duration::from_millis(100),
            ..CacheRingConfig::default()
        },
    );
    let keys: Vec<SessionId> = (0..64).map(test_id).collect();
    for key in &keys {
        ring.insert(*key, b"premaster-secret".to_vec());
    }
    // Warm the persistent link so no configuration pays the dial.
    assert!(ring.lookup(&keys[0]).is_some());

    let mut per_key = [Duration::MAX; 3];
    let mut pipelined_per_op = [Duration::MAX; 3];
    let mut serial_per_op = [Duration::MAX; 3];
    for _ in 0..rounds {
        for (slot, &batch) in BATCH_SIZES.iter().enumerate() {
            let reps = (ops / batch).max(1);
            let started = Instant::now();
            for rep in 0..reps {
                let chunk: Vec<SessionId> = (0..batch)
                    .map(|i| keys[(rep * batch + i) % keys.len()])
                    .collect();
                let results = ring.lookup_batch(&chunk);
                assert!(results.iter().all(Option::is_some), "warm keys must hit");
            }
            per_key[slot] = per_key[slot].min(started.elapsed() / (reps * batch) as u32);
        }
        for (slot, &depth) in BATCH_SIZES.iter().enumerate() {
            let per_thread = (ops / depth).max(1);
            let total = (per_thread * depth) as u32;
            let started = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..depth {
                    let ring = &ring;
                    let keys = &keys;
                    scope.spawn(move || {
                        for n in 0..per_thread {
                            assert!(ring
                                .lookup(&keys[(t * per_thread + n) % keys.len()])
                                .is_some());
                        }
                    });
                }
            });
            pipelined_per_op[slot] = pipelined_per_op[slot].min(started.elapsed() / total);
            let started = Instant::now();
            for n in 0..total {
                assert!(ring.lookup(&keys[n as usize % keys.len()]).is_some());
            }
            serial_per_op[slot] = serial_per_op[slot].min(started.elapsed() / total);
        }
    }
    assert_eq!(
        ring.stats().local_hits,
        0,
        "every timed op must be served remotely, not by the local tier"
    );
    BatchedComparison {
        per_key,
        pipelined_per_op,
        serial_per_op,
    }
}

/// Outcome of one cross-machine resumption run.
#[derive(Debug, Clone, Copy)]
pub struct ResumptionRun {
    /// Cache nodes in the ring.
    pub cache_nodes: usize,
    /// Sessions driven (handshake on machine A, reconnect on machine B).
    pub sessions: usize,
    /// Reconnects served with the abbreviated handshake.
    pub resumed: usize,
    /// `resumed / sessions`.
    pub rate: f64,
    /// Wall time for the reconnect phase.
    pub elapsed: Duration,
}

fn drive(front: &ConcurrentApache, client: &mut TlsClient) -> ConnectionReport {
    let (client_link, server_link) = duplex_pair("bench-client", "server");
    let handle = front.serve(server_link).expect("submit");
    let conn = client.connect(&client_link).expect("handshake");
    drop(client_link);
    let report = handle.join().expect("serve");
    assert!(report.handshake_ok);
    assert_eq!(report.key_fingerprint, conn.keys.fingerprint());
    report
}

/// Handshake `sessions` clients through machine A, then reconnect each
/// through machine B — with `cache_nodes` in the ring, and (when
/// `kill_one`) one cache node killed between the phases. The resumption
/// rate is the fraction of reconnects machine B served abbreviated;
/// every connection must complete either way (a dead cache node degrades
/// to full handshakes, never to failures).
pub fn run_cross_machine(sessions: usize, cache_nodes: usize, kill_one: bool) -> ResumptionRun {
    let sessions = sessions.max(1);
    let nodes = spawn_nodes(cache_nodes.max(1));
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(4242));
    let machine_a = ConcurrentApache::with_session_store(
        keypair,
        PageStore::sample(),
        ConcurrentApacheConfig {
            shards: 2,
            ..ConcurrentApacheConfig::default()
        },
        ring_for(&nodes, 1),
    )
    .expect("machine A");
    let machine_b = ConcurrentApache::with_session_store(
        keypair,
        PageStore::sample(),
        ConcurrentApacheConfig {
            shards: 2,
            ..ConcurrentApacheConfig::default()
        },
        ring_for(&nodes, 2),
    )
    .expect("machine B");

    let mut clients: Vec<TlsClient> = (0..sessions)
        .map(|i| {
            TlsClient::new(
                machine_a.public_key(),
                WedgeRng::from_seed(5_000 + i as u64),
            )
        })
        .collect();
    for client in &mut clients {
        let report = drive(&machine_a, client);
        assert!(!report.resumed);
    }
    if kill_one {
        nodes[0].kill();
    }
    let started = Instant::now();
    let mut resumed = 0usize;
    for client in &mut clients {
        if drive(&machine_b, client).resumed {
            resumed += 1;
        }
    }
    let elapsed = started.elapsed();
    ResumptionRun {
        cache_nodes: nodes.len(),
        sessions,
        resumed,
        rate: resumed as f64 / sessions as f64,
        elapsed,
    }
}

/// The `BENCH_cachenet.json` artifact, emitted through the shared
/// [`crate::report`] writer (the offline build has no serde).
pub fn cachenet_bench_json(
    workload: CachenetWorkload,
    latency: &LatencyComparison,
    batched: &BatchedComparison,
    single_node: &ResumptionRun,
    three_node: &ResumptionRun,
) -> String {
    let resumption = |w: &mut wedge_telemetry::JsonWriter, run: &ResumptionRun| {
        w.field_u64("nodes", run.cache_nodes as u64);
        w.field_u64("resumed", run.resumed as u64);
        w.field_f64("rate", run.rate);
    };
    crate::report::bench_artifact("cachenet", |w| {
        w.nested("workload", |w| {
            w.field_u64("sessions", workload.sessions as u64);
            w.field_u64("lookups", workload.lookups as u64);
        });
        w.nested("lookup_latency", |w| {
            w.field_f64("local_us", crate::report::micros(latency.local_avg));
            w.field_f64("remote_us", crate::report::micros(latency.remote_avg));
            w.field_f64("remote_over_local", latency.overhead);
        });
        w.nested("batched", |w| {
            for (slot, &batch) in BATCH_SIZES.iter().enumerate() {
                w.field_f64(
                    &format!("per_key_us_batch{batch}"),
                    crate::report::micros(batched.per_key[slot]),
                );
            }
            w.field_f64(
                "batch16_speedup",
                batched.per_key[0].as_secs_f64()
                    / batched.per_key[2].as_secs_f64().max(f64::EPSILON),
            );
            w.nested("pipeline_sweep", |w| {
                for (slot, &depth) in BATCH_SIZES.iter().enumerate() {
                    w.nested(&format!("depth{depth}"), |w| {
                        w.field_f64(
                            "pipelined_us_per_op",
                            crate::report::micros(batched.pipelined_per_op[slot]),
                        );
                        w.field_f64(
                            "serial_us_per_op",
                            crate::report::micros(batched.serial_per_op[slot]),
                        );
                    });
                }
            });
        });
        w.nested("resumption_under_node_kill", |w| {
            w.nested("single_node", |w| resumption(w, single_node));
            w.nested("three_node", |w| resumption(w, three_node));
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_comparison_is_sane() {
        let comparison = measure_lookup_latency(64);
        assert!(comparison.local_avg > Duration::ZERO);
        assert!(comparison.remote_avg > Duration::ZERO);
        assert!(
            comparison.remote_avg >= comparison.local_avg,
            "a protocol round trip cannot beat a process-local lookup: {comparison:?}"
        );
        assert!(comparison.overhead >= 1.0);
    }

    /// The ISSUE acceptance criterion for wire v2: amortising framing
    /// and round trips over a 16-key batch must cut per-key remote
    /// latency to at most a quarter of the single-op cost. Min over
    /// interleaved rounds, like the fast-path gate — scheduler noise on
    /// a loaded 1-core runner only adds time. Release-only: a debug
    /// build's fixed interpreter-grade overhead dilutes the per-frame
    /// costs batching removes.
    #[cfg(not(debug_assertions))]
    #[test]
    fn batch16_per_key_is_at_most_a_quarter_of_single_op() {
        let batched = measure_batched(5, 64);
        let single = batched.per_key[0];
        let batch16 = batched.per_key[2];
        assert!(
            batch16 * 4 <= single,
            "batch-16 per-key cost must be ≤ 1/4 of single-op remote latency: {batched:?}"
        );
    }

    /// Debug-build sanity bound on the same measurement, so plain
    /// `cargo test` still guards the batching win.
    #[cfg(debug_assertions)]
    #[test]
    fn batching_amortises_per_key_cost_even_unoptimised() {
        let batched = measure_batched(3, 32);
        assert!(
            batched.per_key[2] < batched.per_key[0],
            "a 16-key frame must beat 16 single-op frames per key: {batched:?}"
        );
    }

    #[test]
    fn cross_machine_run_accounts_every_session() {
        let run = run_cross_machine(6, 3, false);
        assert_eq!(run.sessions, 6);
        assert_eq!(
            run.resumed, 6,
            "with every node healthy every reconnect resumes"
        );
        assert!((run.rate - 1.0).abs() < f64::EPSILON);
    }

    /// The distribution argument, asserted: with the only cache node
    /// dead, cross-machine resumption collapses; with 3 nodes, killing
    /// one leaves roughly two-thirds of the sessions resumable. Release
    /// bound (`cargo test --release -p wedge-bench -q cachenet`); the
    /// debug build only orders the two rates.
    #[test]
    fn three_nodes_survive_a_kill_where_one_node_cannot() {
        let sessions = if cfg!(debug_assertions) { 10 } else { 30 };
        let single = run_cross_machine(sessions, 1, true);
        let three = run_cross_machine(sessions, 3, true);
        assert_eq!(
            single.resumed, 0,
            "sole node dead ⇒ no remote resumption possible"
        );
        assert!(
            three.rate > single.rate,
            "distribution must help: {three:?} vs {single:?}"
        );
        #[cfg(not(debug_assertions))]
        assert!(
            three.rate >= 0.35,
            "≈2/3 of sessions live on surviving nodes; got {three:?}"
        );
    }

    #[test]
    fn bench_json_is_well_formed() {
        let workload = CachenetWorkload {
            sessions: 4,
            lookups: 8,
        };
        let latency = LatencyComparison {
            local_avg: Duration::from_micros(2),
            remote_avg: Duration::from_micros(40),
            overhead: 20.0,
        };
        let run = ResumptionRun {
            cache_nodes: 3,
            sessions: 4,
            resumed: 3,
            rate: 0.75,
            elapsed: Duration::from_millis(10),
        };
        let batched = BatchedComparison {
            per_key: [
                Duration::from_micros(40),
                Duration::from_micros(15),
                Duration::from_micros(5),
            ],
            pipelined_per_op: [Duration::from_micros(40); 3],
            serial_per_op: [Duration::from_micros(40); 3],
        };
        let json = cachenet_bench_json(workload, &latency, &batched, &run, &run);
        for key in [
            "\"bench\":\"cachenet\"",
            "\"lookup_latency\"",
            "\"remote_over_local\"",
            "\"batched\"",
            "\"per_key_us_batch1\"",
            "\"per_key_us_batch16\"",
            "\"batch16_speedup\"",
            "\"pipeline_sweep\"",
            "\"depth16\"",
            "\"resumption_under_node_kill\"",
            "\"single_node\"",
            "\"three_node\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
