//! Synthetic SPECint-like workloads for the Figure 9 (Crowbar overhead)
//! experiment.
//!
//! The paper runs most of the C-language SPECint2006 benchmarks under
//! `cb-log`; the binaries and inputs are not redistributable, so each
//! workload here is a small kernel with the same *instrumentation-relevant*
//! character: it performs many memory accesses through the mediated
//! tagged-memory layer (so the tracer sees every one of them) in access
//! patterns loosely modelled on the original program (pointer chasing for
//! `mcf`, block transforms for `bzip2`/`h264ref`, table lookups for `gobmk`,
//! and so on). Absolute times are meaningless; the native / Pin-only /
//! cb-log *ratios* are what Figure 9 compares.

use wedge_core::{SthreadCtx, Tag, WedgeError};

/// One synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecWorkload {
    /// The SPEC benchmark this stands in for.
    pub name: &'static str,
    /// Scale factor (number of inner iterations).
    pub scale: usize,
}

/// The workload list used by Figure 9 (the paper omits three SPEC members
/// for brevity; so do we).
pub fn spec_workloads() -> Vec<SpecWorkload> {
    vec![
        SpecWorkload {
            name: "mcf",
            scale: 200,
        },
        SpecWorkload {
            name: "gobmk",
            scale: 150,
        },
        SpecWorkload {
            name: "quantum",
            scale: 200,
        },
        SpecWorkload {
            name: "hmmer",
            scale: 150,
        },
        SpecWorkload {
            name: "sjeng",
            scale: 150,
        },
        SpecWorkload {
            name: "bzip2",
            scale: 120,
        },
        SpecWorkload {
            name: "h264ref",
            scale: 120,
        },
    ]
}

/// Run a synthetic workload inside a compartment, touching tagged memory so
/// the installed tracer (if any) observes every access.
pub fn run_spec(ctx: &SthreadCtx, workload: SpecWorkload) -> Result<u64, WedgeError> {
    let _frame = ctx.trace_fn(workload.name);
    let tag = ctx.tag_new()?;
    let checksum = match workload.name {
        "mcf" => pointer_chase(ctx, tag, workload.scale)?,
        "gobmk" | "sjeng" => table_lookup(ctx, tag, workload.scale)?,
        "quantum" | "hmmer" => streaming_scan(ctx, tag, workload.scale)?,
        _ => block_transform(ctx, tag, workload.scale)?,
    };
    ctx.tag_delete(tag)?;
    Ok(checksum)
}

/// `mcf`-like: follow a linked structure laid out in a tagged buffer.
fn pointer_chase(ctx: &SthreadCtx, tag: Tag, scale: usize) -> Result<u64, WedgeError> {
    let _frame = ctx.trace_fn("pointer_chase");
    let nodes = 64usize;
    let buf = ctx.smalloc(nodes * 8, tag)?;
    for i in 0..nodes {
        let next = ((i * 31 + 7) % nodes) as u64;
        ctx.write(&buf, i * 8, &next.to_le_bytes())?;
    }
    let mut cursor = 0u64;
    let mut checksum = 0u64;
    for _ in 0..scale {
        let bytes = ctx.read(&buf, cursor as usize * 8, 8)?;
        cursor = u64::from_le_bytes(bytes.try_into().expect("8 bytes")) % nodes as u64;
        checksum = checksum.wrapping_add(cursor);
    }
    Ok(checksum)
}

/// `gobmk`/`sjeng`-like: board/table lookups with occasional updates.
fn table_lookup(ctx: &SthreadCtx, tag: Tag, scale: usize) -> Result<u64, WedgeError> {
    let _frame = ctx.trace_fn("table_lookup");
    let buf = ctx.smalloc(1024, tag)?;
    let mut checksum = 0u64;
    for i in 0..scale {
        let index = (i * 97) % 1000;
        let value = ctx.read(&buf, index, 4)?;
        checksum =
            checksum.wrapping_add(u32::from_le_bytes(value.try_into().expect("4 bytes")) as u64);
        if i % 7 == 0 {
            ctx.write(&buf, index, &(i as u32).to_le_bytes())?;
        }
    }
    Ok(checksum)
}

/// `libquantum`/`hmmer`-like: sequential scans over a larger buffer.
fn streaming_scan(ctx: &SthreadCtx, tag: Tag, scale: usize) -> Result<u64, WedgeError> {
    let _frame = ctx.trace_fn("streaming_scan");
    let len = 4096usize;
    let buf = ctx.smalloc(len, tag)?;
    let mut checksum = 0u64;
    for round in 0..scale / 8 {
        let chunk = ctx.read(&buf, 0, len)?;
        checksum =
            checksum.wrapping_add(chunk.iter().map(|&b| b as u64).sum::<u64>() + round as u64);
        ctx.write(&buf, (round * 13) % (len - 8), &checksum.to_le_bytes())?;
    }
    Ok(checksum)
}

/// `bzip2`/`h264ref`-like: read a block, transform it, write it back.
fn block_transform(ctx: &SthreadCtx, tag: Tag, scale: usize) -> Result<u64, WedgeError> {
    let _frame = ctx.trace_fn("block_transform");
    let len = 1024usize;
    let buf = ctx.smalloc(len, tag)?;
    let mut checksum = 0u64;
    for round in 0..scale / 4 {
        let mut block = ctx.read(&buf, 0, len)?;
        for (i, byte) in block.iter_mut().enumerate() {
            *byte = byte.wrapping_add((i as u8).wrapping_mul(round as u8 | 1));
        }
        checksum = checksum.wrapping_add(block.iter().map(|&b| b as u64).sum::<u64>());
        ctx.write(&buf, 0, &block)?;
    }
    Ok(checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_core::Wedge;

    #[test]
    fn all_workloads_run_and_are_deterministic() {
        let wedge = Wedge::init();
        let root = wedge.root();
        for workload in spec_workloads() {
            let a = run_spec(&root, workload).unwrap();
            let b = run_spec(&root, workload).unwrap();
            assert_eq!(a, b, "workload {} must be deterministic", workload.name);
        }
    }

    #[test]
    fn workloads_generate_tracer_visible_accesses() {
        let wedge = Wedge::init();
        let sink = std::sync::Arc::new(wedge_core::trace::CountingSink::default());
        wedge.kernel().set_tracer(Some(sink.clone()));
        let root = wedge.root();
        run_spec(
            &root,
            SpecWorkload {
                name: "mcf",
                scale: 50,
            },
        )
        .unwrap();
        assert!(
            sink.accesses.load(std::sync::atomic::Ordering::Relaxed) > 50,
            "the tracer must observe the workload's memory accesses"
        );
    }
}
