//! Open-loop load harness over the whole serving stack, with scheduled
//! chaos.
//!
//! The generator is **open-loop**: arrivals are precomputed from each
//! phase's offered connections/sec and a worker picks each one up *when
//! it is due*, not when the previous connection finished — and latency is
//! measured from the **scheduled** arrival time, so queueing delay under
//! a fault shows up in p99/p999 instead of being silently absorbed
//! (the classic coordinated-omission trap of closed-loop drivers).
//!
//! The stack under load is everything the repo has: a cachenet ring of
//! [`CacheNode`]s backing TLS resumption, a supervised
//! [`ConcurrentApache`] + [`PooledWedgeSsh`] + [`ShardedPop3`] front-end
//! trio, each fed by its own rate-limited [`Listener`] accept loop, all
//! reporting into one [`Telemetry`] registry. Traffic comes from
//! [`LoadProfile::hosts`] distinct source addresses with Zipf-skewed
//! reuse — hot hosts reconnect constantly (abbreviated handshakes via
//! the ring), the long tail handshakes cold.
//!
//! Chaos rides along: [`LoadStack`] implements
//! [`wedge_chaos::ChaosTarget`], so a seeded [`ChaosSchedule`] can kill
//! shards, bounce cache nodes (epoch bumps), trip restart storms and
//! flood the rate limiters *while the offered load keeps arriving* —
//! every fault audited as a `FaultInjected` telemetry event, every
//! latency artifact attributable. `benches/load.rs` emits the
//! machine-readable `BENCH_load.json` artifact from a [`LoadRunReport`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use wedge_apache::{ConcurrentApache, ConcurrentApacheConfig, PageStore};
use wedge_cachenet::{CacheNode, CacheNodeConfig, CacheRing, CacheRingConfig};
use wedge_chaos::{
    ChaosPlan, ChaosRng, ChaosRun, ChaosSchedule, ChaosTarget, ScheduledFault, Zipf,
};
use wedge_core::WedgeError;
use wedge_crypto::{RsaKeyPair, WedgeRng};
use wedge_net::{
    Duplex, Listener, ListenerStats, RateLimitConfig, Reactor, RecvTimeout, SourceAddr,
};
use wedge_pop3::{MailDb, ShardedPop3, ShardedPop3Config};
use wedge_sched::{AcceptPolicy, RestartStats, SchedStats, SupervisorConfig};
use wedge_ssh::authdb::ServerConfig;
use wedge_ssh::{AuthDb, PooledSshConfig, PooledWedgeSsh, SshClient};
use wedge_telemetry::{
    Histogram, HistogramSummary, RecordingSink, Telemetry, TelemetryEvent, TelemetrySnapshot,
};
use wedge_tls::TlsClient;

/// Relative traffic weights per protocol front-end (0 disables one).
#[derive(Debug, Clone, Copy)]
pub struct ProtocolMix {
    /// Weight of HTTPS (TLS handshake, resumption via the ring).
    pub apache: u32,
    /// Weight of SSH (hello + password auth + disconnect).
    pub ssh: u32,
    /// Weight of POP3 (login + STAT + QUIT).
    pub pop3: u32,
}

impl Default for ProtocolMix {
    fn default() -> Self {
        // TLS is the expensive protocol; POP3 the cheap filler.
        ProtocolMix {
            apache: 1,
            ssh: 1,
            pop3: 2,
        }
    }
}

/// One constant-rate segment of the offered-load timeline.
#[derive(Debug, Clone)]
pub struct LoadPhase {
    /// Label carried into the report ("warm", "peak", ...).
    pub name: String,
    /// Offered arrivals per second (open-loop: scheduled, not reactive).
    pub offered_cps: f64,
    /// How long the phase lasts.
    pub duration: Duration,
}

impl LoadPhase {
    /// A named constant-rate phase.
    pub fn new(name: &str, offered_cps: f64, duration: Duration) -> LoadPhase {
        LoadPhase {
            name: name.to_string(),
            offered_cps,
            duration,
        }
    }

    /// Arrivals this phase schedules (at least 1).
    pub fn arrivals(&self) -> usize {
        ((self.offered_cps * self.duration.as_secs_f64()).round() as usize).max(1)
    }
}

/// The full load recipe: who connects, how often, through what stack.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    /// Seed for the arrival schedule, host draws and protocol mix —
    /// same seed, same offered-load timeline, always.
    pub seed: u64,
    /// Distinct client hosts (each its own source address + TLS client).
    pub hosts: usize,
    /// Zipf exponent of host reuse (1.0 classic skew, 0.0 uniform).
    pub zipf_exponent: f64,
    /// Protocol weights.
    pub mix: ProtocolMix,
    /// The offered-load timeline, run back to back.
    pub phases: Vec<LoadPhase>,
    /// Concurrent connection workers draining the arrival queue.
    pub workers: usize,
    /// Shards per protocol front-end (3 front-ends run).
    pub shards_per_front: usize,
    /// Links each accept loop drains per wakeup.
    pub accept_batch: usize,
    /// Per-source token bucket on every listener. Size it so organic
    /// hosts never trip it and flood bursts always do.
    pub rate_limit: RateLimitConfig,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile {
            seed: 0xBEEF,
            hosts: 64,
            zipf_exponent: 1.0,
            mix: ProtocolMix::default(),
            phases: vec![
                LoadPhase::new("warm", 40.0, Duration::from_millis(500)),
                LoadPhase::new("peak", 120.0, Duration::from_millis(500)),
            ],
            workers: 8,
            shards_per_front: 2,
            accept_batch: 8,
            rate_limit: RateLimitConfig {
                burst: 32,
                refill_per_sec: 200.0,
            },
        }
    }
}

const APACHE: usize = 0;
const SSH: usize = 1;
const POP3: usize = 2;
const FRONT_NAMES: [&str; 3] = ["apache", "ssh", "pop3"];

/// The full serving stack assembled for one load run: cachenet ring,
/// three supervised front-ends, three rate-limited listeners, one
/// telemetry registry with a [`RecordingSink`] retaining every audit
/// event. Implements [`ChaosTarget`] so a chaos schedule can break it
/// while load flows: the shard-victim space is the three front-ends
/// concatenated (`0..s` Apache, `s..2s` SSH, `2s..3s` POP3).
pub struct LoadStack {
    telemetry: Telemetry,
    sink: Arc<RecordingSink>,
    nodes: Vec<CacheNode>,
    apache: Arc<ConcurrentApache>,
    ssh: Arc<PooledWedgeSsh>,
    pop3: Arc<ShardedPop3>,
    listeners: [Arc<Listener>; 3],
    shards_per_front: usize,
}

impl std::fmt::Debug for LoadStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadStack")
            .field("shards_per_front", &self.shards_per_front)
            .field("cache_nodes", &self.nodes.len())
            .finish()
    }
}

impl LoadStack {
    /// Boot the stack: 3 cache nodes, a ring, the three front-ends
    /// (supervised, session-affinity placement, Apache resuming through
    /// the ring), a rate-limited listener per front — everything
    /// instrumented on one fresh registry.
    pub fn spawn(profile: &LoadProfile) -> LoadStack {
        let telemetry = Telemetry::new();
        let sink = Arc::new(RecordingSink::default());
        telemetry.install_sink(sink.clone());
        // Causal tracing over the whole stack: roots minted at the
        // listeners, spans recorded through shard serve, kernel applies,
        // handshakes and cachenet ops. The flight recorder retains only
        // slow/erroneous/fault-window traces; the trace.* histograms
        // feed the span-level latency breakdown in BENCH_load.json.
        telemetry.install_tracer(wedge_telemetry::Tracer::new(
            wedge_telemetry::TracerConfig::default(),
        ));

        let nodes: Vec<CacheNode> = (0..3)
            .map(|n| CacheNode::spawn(CacheNodeConfig::named(&format!("load-cache-{n}"))))
            .collect();
        for node in &nodes {
            node.instrument(&telemetry);
        }
        let ring = Arc::new(CacheRing::new(
            nodes.iter().map(CacheNode::endpoint).collect(),
            CacheRingConfig {
                source: SourceAddr::new([10, 99, 0, 1], 45_000),
                op_timeout: Duration::from_millis(200),
                breaker_threshold: 2,
                breaker_cooldown: Duration::from_millis(100),
                ..CacheRingConfig::default()
            },
        ));
        ring.instrument(&telemetry);

        let supervisor = Some(SupervisorConfig {
            poll_interval: Duration::from_millis(1),
            backoff_base: Duration::from_millis(1),
            ..SupervisorConfig::default()
        });
        let shards = profile.shards_per_front.max(1);
        let queue = (profile.hosts * 2).max(64);
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(0x10AD));
        let apache = Arc::new(
            ConcurrentApache::with_session_store(
                keypair,
                PageStore::sample(),
                ConcurrentApacheConfig {
                    shards,
                    queue_capacity: queue,
                    policy: AcceptPolicy::SessionAffinity,
                    supervisor,
                    ..ConcurrentApacheConfig::default()
                },
                ring,
            )
            .expect("apache front-end"),
        );
        apache.instrument(&telemetry);
        let host_keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(0x55D));
        let ssh = Arc::new(
            PooledWedgeSsh::new(
                host_keypair,
                &AuthDb::sample(),
                &ServerConfig::default(),
                PooledSshConfig {
                    shards,
                    queue_capacity: queue,
                    policy: AcceptPolicy::SessionAffinity,
                    supervisor,
                    ..PooledSshConfig::default()
                },
            )
            .expect("ssh front-end"),
        );
        ssh.instrument(&telemetry);
        let pop3 = Arc::new(
            ShardedPop3::new(
                &MailDb::sample(),
                ShardedPop3Config {
                    shards,
                    queue_capacity: queue,
                    policy: AcceptPolicy::SessionAffinity,
                    supervisor,
                    ..ShardedPop3Config::default()
                },
            )
            .expect("pop3 front-end"),
        );
        pop3.instrument(&telemetry);

        let listeners = [APACHE, SSH, POP3].map(|front| {
            let listener = Listener::bind_rate_limited(
                &format!("load-{}", FRONT_NAMES[front]),
                queue,
                profile.rate_limit,
            );
            listener.instrument(&telemetry);
            listener
        });

        LoadStack {
            telemetry,
            sink,
            nodes,
            apache,
            ssh,
            pop3,
            listeners,
            shards_per_front: shards,
        }
    }

    /// The registry the whole stack reports into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The audit-event recorder installed on the registry.
    pub fn sink(&self) -> &Arc<RecordingSink> {
        &self.sink
    }

    /// The listener feeding front `front` (0 Apache, 1 SSH, 2 POP3).
    pub fn listener(&self, front: usize) -> &Arc<Listener> {
        &self.listeners[front]
    }

    /// A [`ChaosPlan`] sized to this stack's victim spaces (the caller
    /// picks seed, horizon and fault counts on top).
    pub fn plan(&self, seed: u64, horizon: Duration) -> ChaosPlan {
        ChaosPlan {
            seed,
            horizon,
            shards: self.shards(),
            cache_nodes: self.cache_nodes(),
            flood_sources: 4,
            ..ChaosPlan::default()
        }
    }

    /// Map a global shard index to (front-end ordinal, local shard).
    fn locate(&self, shard: usize) -> (usize, usize) {
        (
            (shard / self.shards_per_front).min(2),
            shard % self.shards_per_front,
        )
    }

    fn restart_stats(&self, front: usize) -> Option<RestartStats> {
        match front {
            APACHE => self.apache.restart_stats(),
            SSH => self.ssh.restart_stats(),
            _ => self.pop3.restart_stats(),
        }
    }

    fn sched_stats(&self, front: usize) -> SchedStats {
        match front {
            APACHE => self.apache.sched_stats(),
            SSH => self.ssh.sched_stats(),
            _ => self.pop3.sched_stats(),
        }
    }
}

impl ChaosTarget for LoadStack {
    fn shards(&self) -> usize {
        3 * self.shards_per_front
    }

    fn cache_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn kill_shard(&self, shard: usize) {
        let (front, local) = self.locate(shard);
        match front {
            APACHE => drop(self.apache.kill_shard(local)),
            SSH => drop(self.ssh.kill_shard(local)),
            _ => drop(self.pop3.kill_shard(local)),
        }
    }

    fn shard_healthy(&self, shard: usize) -> bool {
        let (front, local) = self.locate(shard);
        let stats = match front {
            APACHE => self.apache.shard_stats(),
            SSH => self.ssh.shard_stats(),
            _ => self.pop3.shard_stats(),
        };
        stats.get(local).is_some_and(|s| s.healthy)
    }

    fn storms(&self) -> u64 {
        (0..3)
            .filter_map(|front| self.restart_stats(front))
            .map(|stats| stats.storms)
            .sum()
    }

    fn kill_cache_node(&self, node: usize) {
        if let Some(node) = self.nodes.get(node) {
            node.kill();
        }
    }

    fn restart_cache_node(&self, node: usize) {
        if let Some(node) = self.nodes.get(node) {
            node.restart();
        }
    }

    fn flood(&self, source: usize, connections: u32) {
        // One hostile host hammers one listener as fast as it can. The
        // burst tokens admit a few dead links (dropped immediately, so
        // their serves fail fast on EOF); the emptied bucket then refuses
        // the rest before any link is built — that refusal count is the
        // rate limiter doing its job, visible as `listener.rate_limited`.
        let listener = &self.listeners[source % self.listeners.len()];
        let hostile = SourceAddr::new([66, 6, (source >> 8) as u8, source as u8], 50_000);
        for _ in 0..connections {
            drop(listener.connect(hostile));
        }
    }
}

/// Which front-end one arrival targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Protocol {
    Apache,
    Ssh,
    Pop3,
}

/// One precomputed open-loop arrival.
struct Arrival {
    phase: usize,
    host: usize,
    ordinal: usize,
    protocol: Protocol,
    due: Duration,
}

/// Precompute the whole arrival timeline: a pure function of the
/// profile (evenly spaced within each phase, hosts Zipf-drawn, protocol
/// weighted) — the open-loop half of the replay contract.
fn arrivals(profile: &LoadProfile) -> Vec<Arrival> {
    let mut rng = ChaosRng::new(profile.seed);
    let zipf = Zipf::new(profile.hosts.max(1), profile.zipf_exponent);
    let weights = [profile.mix.apache, profile.mix.ssh, profile.mix.pop3];
    let total_weight: u32 = weights.iter().sum::<u32>().max(1);
    let mut timeline = Vec::new();
    let mut phase_start = Duration::ZERO;
    let mut ordinal = 0usize;
    for (phase, spec) in profile.phases.iter().enumerate() {
        let n = spec.arrivals();
        let spacing = spec.duration / n as u32;
        for i in 0..n {
            let mut draw = rng.pick(total_weight as usize) as u32;
            let protocol = if draw < weights[0] {
                Protocol::Apache
            } else {
                draw -= weights[0];
                if draw < weights[1] {
                    Protocol::Ssh
                } else {
                    Protocol::Pop3
                }
            };
            timeline.push(Arrival {
                phase,
                host: zipf.sample(&mut rng),
                ordinal,
                protocol,
                due: phase_start + spacing * i as u32,
            });
            ordinal += 1;
        }
        phase_start += spec.duration;
    }
    timeline
}

/// Per-phase accumulators the workers write into.
struct PhaseTracker {
    latency: Histogram,
    completed: AtomicU64,
    errors: AtomicU64,
    resumed: AtomicU64,
    arrivals: AtomicU64,
}

impl PhaseTracker {
    fn new() -> PhaseTracker {
        PhaseTracker {
            latency: Histogram::new(),
            completed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            arrivals: AtomicU64::new(0),
        }
    }
}

/// What one phase did under load.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// The phase's label.
    pub name: String,
    /// Offered arrivals/sec (what the schedule demanded).
    pub offered_cps: f64,
    /// Arrivals dispatched.
    pub arrivals: u64,
    /// Connections that completed their protocol script.
    pub completed: u64,
    /// Connections that failed anywhere (refused, reset, bad reply).
    pub errors: u64,
    /// Completed TLS connections that resumed (abbreviated handshake).
    pub resumed: u64,
    /// Completion latency measured from the **scheduled** arrival.
    pub latency: HistogramSummary,
    /// Completions/sec actually achieved over the phase's window.
    pub achieved_cps: f64,
}

/// Scheduler + supervisor counters for one front-end after the run.
#[derive(Debug, Clone)]
pub struct FrontReport {
    /// "apache" / "ssh" / "pop3".
    pub name: String,
    /// Front-end accounting (`submitted == completed + rejected`).
    pub sched: SchedStats,
    /// Supervisor counters (restarts, storms, abandoned shards).
    pub restarts: Option<RestartStats>,
    /// Accepted links whose serve resolved with an error (flood links,
    /// shed links) — still accounted, never dropped.
    pub serve_errors: u64,
}

/// Everything one load run produced.
#[derive(Debug, Clone)]
pub struct LoadRunReport {
    /// The profile seed (replays the arrival timeline).
    pub seed: u64,
    /// The chaos seed (replays the fault timeline).
    pub chaos_seed: u64,
    /// Wall time of the whole run.
    pub elapsed: Duration,
    /// Per-phase outcomes.
    pub phases: Vec<PhaseReport>,
    /// Every fault injected, at its scheduled offset.
    pub faults: Vec<ScheduledFault>,
    /// Per-front-end accounting.
    pub fronts: Vec<FrontReport>,
    /// Listener counters summed across the three accept loops.
    pub listener: ListenerStats,
    /// The Apache ring's resumption hit rate, if any lookups ran.
    pub resumption_hit_rate: Option<f64>,
    /// `FaultInjected` audit events the sink retained (one per fault).
    pub fault_events: usize,
    /// The final whole-stack telemetry snapshot.
    pub snapshot: TelemetrySnapshot,
}

impl LoadRunReport {
    /// Whether every front-end's books balance: each submitted link
    /// resolved into exactly one of completed / rejected.
    pub fn accounts_balance(&self) -> bool {
        self.fronts
            .iter()
            .all(|front| front.sched.submitted == front.sched.completed + front.sched.rejected)
    }

    /// Total completed connections across all phases.
    pub fn completed(&self) -> u64 {
        self.phases.iter().map(|p| p.completed).sum()
    }

    /// Total errored connections across all phases.
    pub fn errors(&self) -> u64 {
        self.phases.iter().map(|p| p.errors).sum()
    }

    /// How many injected faults carry the given [`wedge_chaos::Fault::name`].
    pub fn fault_count(&self, name: &str) -> usize {
        self.faults
            .iter()
            .filter(|entry| entry.fault.name() == name)
            .count()
    }
}

/// Run `profile`'s offered load against a fresh [`LoadStack`] while
/// injecting `schedule` (pass an empty schedule for a fault-free
/// baseline). Open-loop: arrivals fire on time regardless of how the
/// stack is coping, and latency counts from the scheduled arrival.
pub fn run_load(profile: &LoadProfile, schedule: &ChaosSchedule) -> LoadRunReport {
    let stack = Arc::new(LoadStack::spawn(profile));

    // Accept loops: one per front-end, drained until the listener closes.
    let batch = profile.accept_batch.max(1);
    let serve_apache = {
        let (stack, listener) = (stack.clone(), stack.listeners[APACHE].clone());
        std::thread::spawn(move || count_errors(stack.apache.serve_listener(&listener, batch)))
    };
    let serve_ssh = {
        let (stack, listener) = (stack.clone(), stack.listeners[SSH].clone());
        std::thread::spawn(move || count_errors(stack.ssh.serve_listener(&listener, batch)))
    };
    let serve_pop3 = {
        let (stack, listener) = (stack.clone(), stack.listeners[POP3].clone());
        std::thread::spawn(move || count_errors(stack.pop3.serve_listener(&listener, batch)))
    };

    let timeline = arrivals(profile);
    let trackers: Arc<Vec<PhaseTracker>> =
        Arc::new(profile.phases.iter().map(|_| PhaseTracker::new()).collect());
    // One persistent TLS client per host: resumption needs the client to
    // remember its session across reconnects, exactly like a browser.
    let tls_clients: Arc<Vec<Mutex<Option<TlsClient>>>> = Arc::new(
        (0..profile.hosts.max(1))
            .map(|_| Mutex::new(None))
            .collect(),
    );

    let started = Instant::now();
    let chaos = wedge_chaos::spawn(
        schedule.clone(),
        stack.clone() as Arc<dyn ChaosTarget>,
        stack.telemetry.clone(),
    );

    // Dispatcher: fires each arrival at its due time into the worker
    // queue. Workers block on the shared receiver; a slow stack backs up
    // the queue, not the clock.
    let (tx, rx) = mpsc::channel::<Arrival>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<_> = (0..profile.workers.max(1))
        .map(|_| {
            let (rx, stack, trackers, tls_clients) = (
                rx.clone(),
                stack.clone(),
                trackers.clone(),
                tls_clients.clone(),
            );
            std::thread::spawn(move || {
                loop {
                    let job = { rx.lock().recv() };
                    let Ok(job) = job else { break };
                    let tracker = &trackers[job.phase];
                    tracker.arrivals.fetch_add(1, Ordering::Relaxed);
                    let due = started + job.due;
                    match drive(&stack, &tls_clients, &job) {
                        Ok(resumed) => {
                            tracker.completed.fetch_add(1, Ordering::Relaxed);
                            if resumed {
                                tracker.resumed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(()) => {
                            tracker.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Latency from the *scheduled* arrival: dispatch lag
                    // and queueing under faults are part of the number.
                    tracker
                        .latency
                        .record_duration(Instant::now().saturating_duration_since(due));
                }
            })
        })
        .collect();
    for arrival in timeline {
        let due = started + arrival.due;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        if tx.send(arrival).is_err() {
            break;
        }
    }
    drop(tx);
    for worker in workers {
        worker.join().expect("load worker");
    }
    let chaos_run: ChaosRun = chaos.join().expect("chaos injector");

    // Teardown: close the listeners, drain the accept loops, snapshot.
    for listener in &stack.listeners {
        listener.close();
    }
    let serve_errors = [
        serve_apache.join().expect("apache accept loop"),
        serve_ssh.join().expect("ssh accept loop"),
        serve_pop3.join().expect("pop3 accept loop"),
    ];
    let elapsed = started.elapsed();

    let phases = profile
        .phases
        .iter()
        .zip(trackers.iter())
        .map(|(spec, tracker)| {
            let completed = tracker.completed.load(Ordering::Relaxed);
            PhaseReport {
                name: spec.name.clone(),
                offered_cps: spec.offered_cps,
                arrivals: tracker.arrivals.load(Ordering::Relaxed),
                completed,
                errors: tracker.errors.load(Ordering::Relaxed),
                resumed: tracker.resumed.load(Ordering::Relaxed),
                latency: tracker.latency.summary(),
                achieved_cps: completed as f64 / spec.duration.as_secs_f64().max(f64::EPSILON),
            }
        })
        .collect();
    let fronts = (0..3)
        .map(|front| FrontReport {
            name: FRONT_NAMES[front].to_string(),
            sched: stack.sched_stats(front),
            restarts: stack.restart_stats(front),
            serve_errors: serve_errors[front],
        })
        .collect();
    let mut listener = ListenerStats::default();
    for l in &stack.listeners {
        listener += &l.stats();
    }
    let fault_events = stack
        .sink
        .events()
        .iter()
        .filter(|event| matches!(event, TelemetryEvent::FaultInjected { .. }))
        .count();
    LoadRunReport {
        seed: profile.seed,
        chaos_seed: schedule.seed,
        elapsed,
        phases,
        faults: chaos_run.injected,
        fronts,
        listener,
        resumption_hit_rate: stack.apache.resumption_hit_rate(),
        fault_events,
        snapshot: stack.telemetry.snapshot(),
    }
}

/// [`run_load`] with a schedule generated from `plan`.
pub fn run_load_with_plan(profile: &LoadProfile, plan: &ChaosPlan) -> LoadRunReport {
    run_load(profile, &ChaosSchedule::generate(plan))
}

fn count_errors<R>(outcomes: Vec<Result<R, WedgeError>>) -> u64 {
    outcomes.iter().filter(|o| o.is_err()).count() as u64
}

/// Drive one client connection through its protocol's front door.
fn drive(
    stack: &LoadStack,
    tls_clients: &[Mutex<Option<TlsClient>>],
    job: &Arrival,
) -> Result<bool, ()> {
    let source = SourceAddr::new(
        [11, 0, (job.host >> 8) as u8, job.host as u8],
        40_000 + (job.ordinal % 20_000) as u16,
    );
    match job.protocol {
        Protocol::Apache => {
            // Per-host client lock first: serializes a hot host's
            // reconnects so its session state is coherent, like a real
            // client would be.
            let mut slot = tls_clients[job.host].lock();
            let client = slot.get_or_insert_with(|| {
                TlsClient::new(
                    stack.apache.public_key(),
                    WedgeRng::from_seed(7_000 + job.host as u64),
                )
            });
            let link = stack.listeners[APACHE].connect(source).map_err(drop)?;
            let conn = client.connect(&link).map_err(drop)?;
            Ok(conn.resumed)
        }
        Protocol::Ssh => {
            let link = stack.listeners[SSH].connect(source).map_err(drop)?;
            let mut client = SshClient::new();
            client.connect(&link).map_err(drop)?;
            let (authed, _, _) = client
                .auth_password(&link, "alice", "correct horse battery")
                .map_err(drop)?;
            let _ = client.disconnect(&link);
            if authed {
                Ok(false)
            } else {
                Err(())
            }
        }
        Protocol::Pop3 => {
            let link = stack.listeners[POP3].connect(source).map_err(drop)?;
            let greeting = recv_ok(&link)?;
            if !greeting.starts_with(b"+OK") {
                return Err(());
            }
            for cmd in ["USER alice", "PASS wonderland", "STAT", "QUIT"] {
                link.send(cmd.as_bytes()).map_err(drop)?;
                if !recv_ok(&link)?.starts_with(b"+OK") {
                    return Err(());
                }
            }
            Ok(false)
        }
    }
}

fn recv_ok(link: &Duplex) -> Result<Vec<u8>, ()> {
    link.recv(RecvTimeout::After(Duration::from_secs(10)))
        .map_err(drop)
}

/// Outcome of the idle-link memory probe: the RSS ceiling of parking
/// accepted-but-silent connections on a readiness [`Reactor`] — the
/// deferred-accept path every front-end's `serve_listener` uses before a
/// link's first byte arrives — instead of giving each one a shard slot.
#[derive(Debug, Clone, Copy)]
pub struct IdleLinkProbe {
    /// Links parked on the reactor when the after-sample was taken.
    pub links: usize,
    /// `VmRSS` before any link was built (KiB).
    pub rss_before_kib: u64,
    /// `VmRSS` with every link parked (KiB).
    pub rss_after_kib: u64,
}

impl IdleLinkProbe {
    /// Memory ceiling one parked link costs (bytes; RSS-page granular,
    /// so small populations round up).
    pub fn per_link_bytes(&self) -> f64 {
        (self.rss_after_kib.saturating_sub(self.rss_before_kib) * 1024) as f64
            / self.links.max(1) as f64
    }
}

fn vm_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Park `links` idle connections drawn from `profile`'s host population
/// on a deferred-accept front (listener + readiness reactor, exactly the
/// parking path of `serve_listener` before a first byte) and measure the
/// resident-memory ceiling. The clients never send, so every accepted
/// link stays parked — no shard slot, no serving thread — and the RSS
/// delta divided by the population is the per-parked-link cost recorded
/// in `BENCH_load.json`. Returns `None` where `/proc/self/status` is
/// unavailable (non-Linux).
pub fn probe_idle_link_memory(profile: &LoadProfile, links: usize) -> Option<IdleLinkProbe> {
    let rss_before = vm_rss_kib()?;
    let listener = Listener::bind("idle-probe", links.max(1) + 8);
    let reactor = Reactor::spawn("idle-probe");
    let mut clients = Vec::with_capacity(links);
    for i in 0..links {
        let host = i % profile.hosts.max(1);
        let source = SourceAddr::new(
            [12, 0, (host >> 8) as u8, host as u8],
            30_000 + (i % 20_000) as u16,
        );
        let client = listener.connect(source).ok()?;
        let parked = listener
            .accept(RecvTimeout::After(Duration::from_secs(5)))
            .ok()?;
        reactor.watch(parked, |_link| {});
        clients.push(client);
    }
    let parked = reactor.links();
    let rss_after = vm_rss_kib()?;
    reactor.shutdown();
    listener.close();
    drop(clients);
    Some(IdleLinkProbe {
        links: parked,
        rss_before_kib: rss_before,
        rss_after_kib: rss_after,
    })
}

/// The `BENCH_load.json` artifact: per-phase p50/p99/p999 +
/// connections/sec, the injected fault timeline, per-front accounting,
/// and (when the probe ran) the idle-link memory ceiling — emitted
/// through the shared [`crate::report`] writer.
pub fn load_bench_json(
    profile: &LoadProfile,
    report: &LoadRunReport,
    idle_links: Option<&IdleLinkProbe>,
) -> String {
    crate::report::bench_artifact("load", |w| {
        w.field_u64("seed", report.seed);
        w.field_u64("chaos_seed", report.chaos_seed);
        w.field_u64("hosts", profile.hosts as u64);
        w.field_u64("shards_per_front", profile.shards_per_front as u64);
        w.field_f64("elapsed_ms", crate::report::millis(report.elapsed));
        w.field_bool("accounts_balance", report.accounts_balance());
        w.nested("phases", |w| {
            for phase in &report.phases {
                w.nested(&phase.name, |w| {
                    w.field_f64("offered_cps", phase.offered_cps);
                    w.field_f64("achieved_cps", phase.achieved_cps);
                    w.field_u64("arrivals", phase.arrivals);
                    w.field_u64("completed", phase.completed);
                    w.field_u64("errors", phase.errors);
                    w.field_u64("resumed", phase.resumed);
                    w.field_u64("latency_p50_us", phase.latency.p50_nanos / 1_000);
                    w.field_u64("latency_p99_us", phase.latency.p99_nanos / 1_000);
                    w.field_u64("latency_p999_us", phase.latency.p999_nanos / 1_000);
                    w.field_u64("latency_max_us", phase.latency.max_nanos / 1_000);
                });
            }
        });
        w.nested("faults", |w| {
            for (idx, entry) in report.faults.iter().enumerate() {
                w.nested(&format!("f{idx}"), |w| {
                    w.field_str("fault", entry.fault.name());
                    w.field_u64("victim", entry.fault.victim() as u64);
                    w.field_u64("at_ms", entry.at.as_millis() as u64);
                });
            }
        });
        w.nested("fronts", |w| {
            for front in &report.fronts {
                w.nested(&front.name, |w| {
                    w.field_u64("submitted", front.sched.submitted);
                    w.field_u64("completed", front.sched.completed);
                    w.field_u64("rejected", front.sched.rejected);
                    w.field_u64("serve_errors", front.serve_errors);
                    if let Some(restarts) = &front.restarts {
                        w.field_u64("restarts", restarts.restarts);
                        w.field_u64("storms", restarts.storms);
                    }
                });
            }
        });
        w.nested("listener", |w| {
            w.field_u64("accepted", report.listener.accepted);
            w.field_u64("refused", report.listener.refused);
            w.field_u64("rate_limited", report.listener.rate_limited);
        });
        if let Some(rate) = report.resumption_hit_rate {
            w.field_f64("resumption_hit_rate", rate);
        }
        // Span-level latency breakdown: where a request's time went —
        // accept (backlog → accepted), queue (submit → dequeue), serve
        // (dequeue → done) and the remote cachenet slice — beside the
        // end-to-end percentiles above.
        w.nested("spans", |w| {
            for phase in ["accept", "queue", "serve", "handshake", "cachenet"] {
                if let Some(summary) = report.snapshot.histogram(&format!("trace.{phase}")) {
                    if summary.count == 0 {
                        continue;
                    }
                    w.nested(phase, |w| {
                        w.field_u64("count", summary.count);
                        w.field_u64("p50_us", summary.p50_nanos / 1_000);
                        w.field_u64("p99_us", summary.p99_nanos / 1_000);
                        w.field_u64("p999_us", summary.p999_nanos / 1_000);
                        w.field_u64("max_us", summary.max_nanos / 1_000);
                    });
                }
            }
        });
        w.field_u64("fault_events", report.fault_events as u64);
        if let Some(idle) = idle_links {
            w.nested("idle_links", |w| {
                w.field_u64("links", idle.links as u64);
                w.field_u64("rss_before_kib", idle.rss_before_kib);
                w.field_u64("rss_after_kib", idle.rss_after_kib);
                w.field_f64("per_link_bytes", idle.per_link_bytes());
            });
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_chaos::Fault;

    fn tiny_profile() -> LoadProfile {
        LoadProfile {
            hosts: 12,
            phases: vec![
                LoadPhase::new("warm", 30.0, Duration::from_millis(300)),
                LoadPhase::new("peak", 60.0, Duration::from_millis(300)),
            ],
            workers: 6,
            ..LoadProfile::default()
        }
    }

    #[test]
    fn arrival_timeline_is_deterministic_and_paced() {
        let profile = tiny_profile();
        let a = arrivals(&profile);
        let b = arrivals(&profile);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 9 + 18, "offered rate times duration per phase");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.host, y.host);
            assert_eq!(x.protocol, y.protocol);
            assert_eq!(x.due, y.due);
        }
        assert!(
            a.windows(2).all(|w| w[0].due <= w[1].due),
            "arrivals are time-ordered"
        );
        assert!(a.iter().any(|x| x.protocol == Protocol::Apache));
        assert!(a.iter().any(|x| x.protocol == Protocol::Ssh));
        assert!(a.iter().any(|x| x.protocol == Protocol::Pop3));
    }

    #[test]
    fn fault_free_load_completes_everything_and_resumes_hot_hosts() {
        let profile = tiny_profile();
        let report = run_load(&profile, &ChaosSchedule::explicit(0, Vec::new()));
        assert!(report.accounts_balance(), "books balance on every front");
        assert_eq!(report.errors(), 0, "no faults, no errors");
        assert_eq!(
            report.completed(),
            report.phases.iter().map(|p| p.arrivals).sum::<u64>()
        );
        assert!(report.faults.is_empty());
        assert_eq!(report.fault_events, 0);
        let resumed: u64 = report.phases.iter().map(|p| p.resumed).sum();
        assert!(
            resumed > 0,
            "Zipf-hot hosts reconnect and resume through the ring"
        );
        for phase in &report.phases {
            assert!(phase.latency.p999_nanos >= phase.latency.p99_nanos);
            assert!(phase.latency.p99_nanos >= phase.latency.p50_nanos);
            assert!(phase.achieved_cps > 0.0);
        }
        assert_eq!(report.listener.rate_limited, 0, "organic load never trips");
        let serve = report.snapshot.histogram("shard.serve").expect("serve");
        assert!(serve.count > 0);
    }

    /// The satellite gate: a hostile flood arrives mid-run while
    /// well-behaved open-loop traffic keeps flowing — the limiter
    /// refuses the flood, the organic phases stay clean and bounded.
    #[test]
    fn rate_limit_flood_under_open_loop_load_only_hurts_the_hostile_source() {
        let profile = tiny_profile();
        let schedule = ChaosSchedule::explicit(
            99,
            vec![ScheduledFault {
                at: Duration::from_millis(250),
                fault: Fault::Flood {
                    source: 1,
                    connections: 200,
                },
            }],
        );
        let report = run_load(&profile, &schedule);
        assert!(report.accounts_balance());
        assert_eq!(report.fault_count("flood"), 1);
        assert_eq!(report.fault_events, 1, "the flood is audited");
        assert!(
            report.listener.rate_limited > 100,
            "the bucket refuses most of the 200-connect burst: {:?}",
            report.listener
        );
        assert_eq!(report.errors(), 0, "no well-behaved connection fails");
        assert_eq!(
            report.completed(),
            report.phases.iter().map(|p| p.arrivals).sum::<u64>()
        );
        for phase in &report.phases {
            assert!(
                phase.latency.p99_nanos < Duration::from_secs(2).as_nanos() as u64,
                "well-behaved p99 stays bounded through the flood: {:?}",
                phase.latency
            );
        }
    }

    #[test]
    fn chaos_under_load_keeps_the_books_balanced() {
        let profile = LoadProfile {
            phases: vec![LoadPhase::new("steady", 50.0, Duration::from_millis(900))],
            ..tiny_profile()
        };
        let schedule = ChaosSchedule::explicit(
            7,
            vec![
                ScheduledFault {
                    at: Duration::from_millis(200),
                    fault: Fault::KillShard { shard: 0 },
                },
                ScheduledFault {
                    at: Duration::from_millis(350),
                    fault: Fault::CacheKill { node: 0 },
                },
                ScheduledFault {
                    at: Duration::from_millis(550),
                    fault: Fault::CacheRestart { node: 0 },
                },
            ],
        );
        let report = run_load(&profile, &schedule);
        assert!(report.accounts_balance(), "kills never leak a link");
        assert_eq!(report.faults.len(), 3);
        assert_eq!(report.fault_events, 3, "every fault audited");
        let apache = &report.fronts[APACHE];
        assert!(
            apache.restarts.as_ref().expect("supervised").restarts >= 1,
            "the supervisor revived the killed shard"
        );
        // The killed cache node bumped its epoch on restart.
        assert!(report.completed() > 0);
    }

    #[test]
    fn bench_json_is_well_formed() {
        let profile = LoadProfile {
            hosts: 8,
            phases: vec![LoadPhase::new("smoke", 25.0, Duration::from_millis(200))],
            ..tiny_profile()
        };
        let schedule = ChaosSchedule::explicit(
            3,
            vec![ScheduledFault {
                at: Duration::from_millis(100),
                fault: Fault::KillShard { shard: 2 },
            }],
        );
        let report = run_load(&profile, &schedule);
        let probe = IdleLinkProbe {
            links: 64,
            rss_before_kib: 10_000,
            rss_after_kib: 10_256,
        };
        let json = load_bench_json(&profile, &report, Some(&probe));
        for key in [
            "\"bench\":\"load\"",
            "\"phases\"",
            "\"smoke\"",
            "\"latency_p999_us\"",
            "\"achieved_cps\"",
            "\"faults\"",
            "\"kill_shard\"",
            "\"accounts_balance\":true",
            "\"fronts\"",
            "\"rate_limited\"",
            "\"idle_links\"",
            "\"per_link_bytes\":4096",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn idle_link_probe_parks_the_whole_population() {
        let profile = tiny_profile();
        let Some(probe) = probe_idle_link_memory(&profile, 128) else {
            // /proc/self/status unavailable (non-Linux): the probe is
            // allowed to opt out, and the artifact simply omits the
            // "idle_links" section.
            return;
        };
        assert_eq!(probe.links, 128, "every idle link parks on the reactor");
        assert!(probe.rss_before_kib > 0);
        assert!(probe.rss_after_kib >= probe.rss_before_kib);
        assert!(probe.per_link_bytes() >= 0.0);
    }
}
