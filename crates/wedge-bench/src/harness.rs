//! End-to-end drivers for the Table 2 experiments: one HTTPS request against
//! each Apache variant, and one SSH login / scp transfer against each SSH
//! variant.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wedge_apache::{ApacheConfig, PageStore, SimpleApache, VanillaApache, WedgeApache};
use wedge_core::{Kernel, Wedge};
use wedge_crypto::{RsaKeyPair, WedgeRng};
use wedge_net::duplex_pair;
use wedge_ssh::authdb::ServerConfig;
use wedge_ssh::{AuthDb, SshClient, VanillaSsh, WedgeSsh};
use wedge_tls::TlsClient;

/// Which Apache server implementation to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApacheVariant {
    /// The monolithic baseline.
    Vanilla,
    /// The §5.1.1 partitioning (per-connection worker + key callgate).
    Simple,
    /// The §5.1.2 partitioning with standard callgates.
    Wedge,
    /// The §5.1.2 partitioning with recycled callgates.
    Recycled,
}

/// A reusable Apache test bed: one server plus a client that may or may not
/// hold a cached session.
pub struct ApacheBed {
    variant: ApacheVariant,
    vanilla: Option<VanillaApache>,
    simple: Option<SimpleApache>,
    partitioned: Option<WedgeApache>,
    client: TlsClient,
}

impl ApacheBed {
    /// Build a server of the requested variant plus a fresh client.
    pub fn new(variant: ApacheVariant, seed: u64) -> ApacheBed {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(seed));
        let pages = PageStore::sample();
        let (vanilla, simple, partitioned) = match variant {
            ApacheVariant::Vanilla => (
                Some(VanillaApache::new(Wedge::init(), keypair, pages).expect("vanilla server")),
                None,
                None,
            ),
            ApacheVariant::Simple => (
                None,
                Some(SimpleApache::new(Wedge::init(), keypair, pages).expect("simple server")),
                None,
            ),
            ApacheVariant::Wedge => (
                None,
                None,
                Some(
                    WedgeApache::new(
                        Wedge::init(),
                        keypair,
                        pages,
                        ApacheConfig { recycled: false },
                    )
                    .expect("wedge server"),
                ),
            ),
            ApacheVariant::Recycled => (
                None,
                None,
                Some(
                    WedgeApache::new(
                        Wedge::init(),
                        keypair,
                        pages,
                        ApacheConfig { recycled: true },
                    )
                    .expect("recycled server"),
                ),
            ),
        };
        let client = TlsClient::new(keypair.public, WedgeRng::from_seed(seed.wrapping_add(1)));
        ApacheBed {
            variant,
            vanilla,
            simple,
            partitioned,
            client,
        }
    }

    /// The simulated kernel of whichever server variant backs this bed
    /// (used by the Figure 9 bench to install a tracer on the server side).
    pub fn kernel(&self) -> Arc<Kernel> {
        if let Some(server) = &self.vanilla {
            server.wedge().kernel().clone()
        } else if let Some(server) = &self.simple {
            server.wedge().kernel().clone()
        } else {
            self.partitioned
                .as_ref()
                .expect("some server exists")
                .wedge()
                .kernel()
                .clone()
        }
    }

    /// Drop the client's cached session so the next request performs a full
    /// handshake (the "not cached" workload of Table 2).
    pub fn forget_session(&mut self) {
        self.client.cached_session = None;
    }

    /// Warm the session cache (run one request and keep the ticket).
    pub fn warm(&mut self) {
        let _ = self.request("/index.html");
    }

    /// Serve one full connection (handshake + one request) and return the
    /// elapsed wall-clock time.
    pub fn request(&mut self, path: &str) -> Duration {
        let (client_link, server_link) = duplex_pair("bench-client", "bench-server");
        let started = Instant::now();
        std::thread::scope(|scope| {
            let variant = self.variant;
            let vanilla = self.vanilla.as_ref();
            let simple = self.simple.as_ref();
            let partitioned = self.partitioned.as_ref();
            let server = scope.spawn(move || match variant {
                ApacheVariant::Vanilla => {
                    let _ = vanilla.expect("vanilla").serve_connection(&server_link);
                }
                ApacheVariant::Simple => {
                    let handle = simple
                        .expect("simple")
                        .serve_connection(server_link)
                        .expect("spawn worker");
                    let _ = handle.join();
                }
                ApacheVariant::Wedge | ApacheVariant::Recycled => {
                    let _ = partitioned
                        .expect("partitioned")
                        .serve_connection(server_link);
                }
            });
            let mut conn = self.client.connect(&client_link).expect("handshake");
            conn.send(
                &client_link,
                format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes(),
            )
            .expect("send request");
            let response = conn.recv(&client_link).expect("response");
            assert!(
                response.starts_with(b"HTTP/1.0 200"),
                "request must succeed"
            );
            drop(conn);
            drop(client_link);
            server.join().expect("server thread");
        });
        started.elapsed()
    }
}

/// A reusable Wedge-partitioned SSH test bed (login + scp against one
/// long-lived server), used by the Figure 9 and Table 2 benches.
pub struct SshBed {
    server: WedgeSsh,
}

impl SshBed {
    /// Build the bed.
    pub fn new(seed: u64) -> SshBed {
        let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(seed));
        let server = WedgeSsh::new(
            Wedge::init(),
            keypair,
            &AuthDb::sample(),
            &ServerConfig::default(),
        )
        .expect("wedge sshd");
        SshBed { server }
    }

    /// The server-side kernel (for installing tracers).
    pub fn kernel(&self) -> Arc<Kernel> {
        self.server.wedge().kernel().clone()
    }

    /// One password login; returns the elapsed time.
    pub fn login(&self) -> Duration {
        let (client_link, server_link) = duplex_pair("ssh-client", "sshd");
        let started = Instant::now();
        let handle = self.server.serve_connection(server_link).expect("worker");
        let mut client = SshClient::new();
        client.connect(&client_link).expect("hello");
        let (ok, _, _) = client
            .auth_password(&client_link, "alice", "correct horse battery")
            .expect("auth");
        assert!(ok);
        let elapsed = started.elapsed();
        let _ = client.disconnect(&client_link);
        let _ = handle.join();
        elapsed
    }
}

/// Convenience: one request against a freshly built server (used by tests).
pub fn apache_request(variant: ApacheVariant, cached: bool) -> Duration {
    let mut bed = ApacheBed::new(variant, 7);
    if cached {
        bed.warm();
    } else {
        bed.forget_session();
    }
    bed.request("/index.html")
}

/// One SSH password login against the requested variant. Returns the
/// elapsed time from connection start to successful authentication.
pub fn ssh_login(wedged: bool) -> Duration {
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(11));
    let db = AuthDb::sample();
    let config = ServerConfig::default();
    let (client_link, server_link) = duplex_pair("ssh-client", "sshd");
    let started = Instant::now();
    if wedged {
        let server = WedgeSsh::new(Wedge::init(), keypair, &db, &config).expect("wedge sshd");
        let handle = server.serve_connection(server_link).expect("worker");
        let mut client = SshClient::new();
        client.connect(&client_link).expect("hello");
        let (ok, _, _) = client
            .auth_password(&client_link, "alice", "correct horse battery")
            .expect("auth");
        assert!(ok);
        let elapsed = started.elapsed();
        let _ = client.disconnect(&client_link);
        let _ = handle.join();
        elapsed
    } else {
        let server = VanillaSsh::new(Wedge::init(), keypair, db, config).expect("vanilla sshd");
        std::thread::scope(|scope| {
            let server_ref = &server;
            let handle = scope.spawn(move || server_ref.serve_connection(&server_link));
            let mut client = SshClient::new();
            client.connect(&client_link).expect("hello");
            let (ok, _, _) = client
                .auth_password(&client_link, "alice", "correct horse battery")
                .expect("auth");
            assert!(ok);
            let elapsed = started.elapsed();
            let _ = client.disconnect(&client_link);
            let _ = handle.join();
            elapsed
        })
    }
}

/// An scp-style upload of `bytes` bytes after a password login. Returns the
/// elapsed transfer time (excluding login).
pub fn ssh_scp(wedged: bool, bytes: usize) -> Duration {
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(13));
    let db = AuthDb::sample();
    let config = ServerConfig::default();
    let (client_link, server_link) = duplex_pair("scp-client", "sshd");
    let chunk = 64 * 1024;
    if wedged {
        let server = WedgeSsh::new(Wedge::init(), keypair, &db, &config).expect("wedge sshd");
        let handle = server.serve_connection(server_link).expect("worker");
        let mut client = SshClient::new();
        client.connect(&client_link).expect("hello");
        client
            .auth_password(&client_link, "alice", "correct horse battery")
            .expect("auth");
        let started = Instant::now();
        let acked = client.scp_upload(&client_link, bytes, chunk).expect("scp");
        let elapsed = started.elapsed();
        assert_eq!(acked as usize, bytes);
        let _ = client.disconnect(&client_link);
        let _ = handle.join();
        elapsed
    } else {
        let server = VanillaSsh::new(Wedge::init(), keypair, db, config).expect("vanilla sshd");
        std::thread::scope(|scope| {
            let server_ref = &server;
            let handle = scope.spawn(move || server_ref.serve_connection(&server_link));
            let mut client = SshClient::new();
            client.connect(&client_link).expect("hello");
            client
                .auth_password(&client_link, "alice", "correct horse battery")
                .expect("auth");
            let started = Instant::now();
            let acked = client.scp_upload(&client_link, bytes, chunk).expect("scp");
            let elapsed = started.elapsed();
            assert_eq!(acked as usize, bytes);
            let _ = client.disconnect(&client_link);
            let _ = handle.join();
            elapsed
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_apache_variant_serves_a_request() {
        for variant in [
            ApacheVariant::Vanilla,
            ApacheVariant::Simple,
            ApacheVariant::Wedge,
            ApacheVariant::Recycled,
        ] {
            let elapsed = apache_request(variant, false);
            assert!(elapsed > Duration::ZERO, "{variant:?} must serve");
        }
    }

    #[test]
    fn cached_sessions_work_for_vanilla_and_wedge() {
        for variant in [ApacheVariant::Vanilla, ApacheVariant::Wedge] {
            let elapsed = apache_request(variant, true);
            assert!(elapsed > Duration::ZERO);
        }
    }

    #[test]
    fn ssh_login_and_scp_run_for_both_variants() {
        assert!(ssh_login(false) > Duration::ZERO);
        assert!(ssh_login(true) > Duration::ZERO);
        assert!(ssh_scp(false, 256 * 1024) > Duration::ZERO);
        assert!(ssh_scp(true, 256 * 1024) > Duration::ZERO);
    }
}
