//! Shared `BENCH_*.json` artifact emission.
//!
//! Before this module every bench target that wrote a machine-readable
//! artifact (`listener.rs`, `cachenet.rs`) hand-assembled its JSON with
//! `format!`, each with its own (inconsistent, escape-free) conventions.
//! They now all go through [`wedge_telemetry::JsonWriter`] — the same
//! writer behind [`wedge_telemetry::TelemetrySnapshot::to_json`] — so
//! string fields are escaped correctly and the artifacts share one shape:
//! a single JSON object opening with `"bench": <name>`.

use std::time::Duration;

use wedge_telemetry::JsonWriter;

/// Build one `BENCH_*.json` artifact body: a JSON object whose first
/// field is `"bench": name`, filled by `fill`, newline-terminated.
pub fn bench_artifact(name: &str, fill: impl FnOnce(&mut JsonWriter)) -> String {
    let mut writer = JsonWriter::object();
    writer.field_str("bench", name);
    fill(&mut writer);
    let mut json = writer.finish();
    json.push('\n');
    json
}

/// Where bench `name`'s artifact goes: `WEDGE_BENCH_JSON` when set, else
/// `BENCH_<name>.json` at the workspace root (Cargo runs bench binaries
/// with the *package* directory as CWD, so the default is anchored to the
/// manifest, where CI looks for it).
pub fn artifact_path(name: &str) -> String {
    std::env::var("WEDGE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_{name}.json", env!("CARGO_MANIFEST_DIR")))
}

/// `d` in milliseconds (the unit the `*_ms` artifact fields use).
pub fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// `d` in microseconds (the unit the `*_us` artifact fields use).
pub fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_opens_with_the_bench_name_and_escapes_strings() {
        let json = bench_artifact("demo", |w| {
            w.field_str("note", "quote \" and \\ backslash");
            w.field_u64("n", 3);
        });
        assert!(json.starts_with(r#"{"bench":"demo""#));
        assert!(json.ends_with("}\n"));
        assert!(json.contains(r#""note":"quote \" and \\ backslash""#));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn artifact_path_honours_the_env_override() {
        // Can't set env vars safely under the parallel test harness;
        // just assert the default shape.
        let path = artifact_path("listener");
        assert!(path.ends_with("BENCH_listener.json") || !path.is_empty());
    }
}
