//! Listener-front-end throughput and restart-latency measurements.
//!
//! The workload drives POP3 sessions through the **full unified serving
//! stack**: a [`wedge_net::Listener`] accept loop (connection batching,
//! source-address affinity keys), the protocol-agnostic
//! `ShardedFrontEnd`, and — for the restart measurement — the shard
//! supervisor. Each client pauses for a **think time** between login and
//! retrieval, standing in for WAN latency, so aggregate connections/sec
//! scales with shard count while think time dominates.
//!
//! The companion bench target (`benches/listener.rs`) also emits the
//! machine-readable artifact `BENCH_listener.json` — connections/sec at
//! 1 vs 4 shards plus the supervisor's kill-to-healthy restart latency —
//! for CI trend tracking.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wedge_net::{Duplex, Listener, ListenerStats, RecvTimeout, SourceAddr};
use wedge_pop3::{MailDb, ShardedPop3, ShardedPop3Config};
use wedge_sched::{AcceptPolicy, SchedStats, SupervisorConfig};

/// The listener-driven POP3 workload.
#[derive(Debug, Clone, Copy)]
pub struct ListenerWorkload {
    /// Connections to drive through the accept loop.
    pub connections: usize,
    /// Per-client think time between login and retrieval (WAN latency).
    pub think_time: Duration,
    /// Links the accept loop drains per wakeup.
    pub accept_batch: usize,
}

impl Default for ListenerWorkload {
    fn default() -> Self {
        ListenerWorkload {
            connections: 32,
            think_time: Duration::from_millis(10),
            accept_batch: 16,
        }
    }
}

/// Outcome of one listener-front-end run.
#[derive(Debug, Clone)]
pub struct ListenerRun {
    /// Wall time from the first connect to the last report.
    pub elapsed: Duration,
    /// Aggregate connections/sec.
    pub throughput: f64,
    /// Front-end counters.
    pub sched: SchedStats,
    /// Listener counters (accepted/refused/batched).
    pub listener: ListenerStats,
}

fn send_cmd(client: &Duplex, cmd: &str) -> Vec<u8> {
    client.send(cmd.as_bytes()).expect("send command");
    client
        .recv(RecvTimeout::After(Duration::from_secs(10)))
        .expect("command reply")
}

fn run_session(client: &Duplex, think_time: Duration) {
    let greeting = client
        .recv(RecvTimeout::After(Duration::from_secs(10)))
        .expect("greeting");
    assert!(greeting.starts_with(b"+OK"));
    assert!(send_cmd(client, "USER alice").starts_with(b"+OK"));
    assert!(send_cmd(client, "PASS wonderland").starts_with(b"+OK"));
    std::thread::sleep(think_time);
    assert!(send_cmd(client, "STAT").starts_with(b"+OK"));
    assert!(send_cmd(client, "QUIT").starts_with(b"+OK"));
}

/// Drive `workload` through a `shards`-shard POP3 front-end fed by a
/// listener accept loop (source-affinity placement).
pub fn run_listener_pop3(workload: ListenerWorkload, shards: usize) -> ListenerRun {
    let server = Arc::new(
        ShardedPop3::new(
            &MailDb::sample(),
            ShardedPop3Config {
                shards,
                queue_capacity: workload.connections.max(1),
                policy: AcceptPolicy::SessionAffinity,
                ..ShardedPop3Config::default()
            },
        )
        .expect("sharded pop3"),
    );
    let listener = Listener::bind("pop3-bench", workload.connections.max(1));
    let serve = {
        let server = server.clone();
        let listener = listener.clone();
        let batch = workload.accept_batch.max(1);
        std::thread::spawn(move || server.serve_listener(&listener, batch))
    };

    let started = Instant::now();
    let clients: Vec<_> = (0..workload.connections)
        .map(|n| {
            let source = SourceAddr::new([10, 9, (n >> 8) as u8, (n & 0xFF) as u8], 41_000);
            let link = listener.connect(source).expect("connect");
            let think_time = workload.think_time;
            std::thread::spawn(move || run_session(&link, think_time))
        })
        .collect();
    for client in clients {
        client.join().expect("client session");
    }
    listener.close();
    let outcomes = serve.join().expect("accept loop");
    let elapsed = started.elapsed();
    assert_eq!(outcomes.len(), workload.connections);
    for outcome in outcomes {
        assert!(outcome.expect("session served").stats.logged_in);
    }
    ListenerRun {
        elapsed,
        throughput: workload.connections as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        sched: server.sched_stats(),
        listener: listener.stats(),
    }
}

/// Outcome of a supervised kill + auto-restart measurement.
#[derive(Debug, Clone, Copy)]
pub struct RestartMeasurement {
    /// Kill-to-healthy latency as seen by the supervisor (detection +
    /// backoff + in-flight drain + respawn).
    pub latency: Duration,
    /// The respawned shard's fork + prewarm boot cost alone.
    pub boot_cost: Duration,
}

/// Kill shard 0 of a supervised `shards`-shard POP3 front-end and
/// measure how long the watchdog takes to bring it back.
pub fn measure_restart_latency(shards: usize) -> RestartMeasurement {
    let server = ShardedPop3::new(
        &MailDb::sample(),
        ShardedPop3Config {
            shards,
            supervisor: Some(SupervisorConfig {
                poll_interval: Duration::from_millis(1),
                backoff_base: Duration::from_millis(1),
                ..SupervisorConfig::default()
            }),
            ..ShardedPop3Config::default()
        },
    )
    .expect("sharded pop3");
    server.kill_shard(0);
    assert!(
        server.await_healthy(0, Duration::from_secs(30)),
        "supervisor must revive shard 0"
    );
    // The restart counter lands just after the health flip; poll briefly
    // rather than asserting both atomically.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.restart_stats().expect("supervised").restarts == 0 {
        assert!(deadline > Instant::now(), "restart never counted");
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = server.restart_stats().expect("supervised");
    assert_eq!(stats.restarts, 1);
    RestartMeasurement {
        latency: stats.last_restart_latency(),
        boot_cost: server.shard_stats()[0].boot_cost,
    }
}

/// The `BENCH_listener.json` artifact: connections/sec at 1 vs `shards`
/// shards plus the supervised restart latency, emitted through the
/// shared [`crate::report`] writer (the offline build has no serde).
pub fn listener_bench_json(
    workload: ListenerWorkload,
    shards: usize,
    single: &ListenerRun,
    sharded: &ListenerRun,
    restart: &RestartMeasurement,
) -> String {
    crate::report::bench_artifact("listener", |w| {
        w.nested("workload", |w| {
            w.field_u64("connections", workload.connections as u64);
            w.field_f64("think_time_ms", crate::report::millis(workload.think_time));
            w.field_u64("accept_batch", workload.accept_batch as u64);
        });
        w.nested("single_shard", |w| {
            w.field_f64("elapsed_ms", crate::report::millis(single.elapsed));
            w.field_f64("connections_per_sec", single.throughput);
        });
        w.nested("sharded", |w| {
            w.field_u64("shards", shards as u64);
            w.field_f64("elapsed_ms", crate::report::millis(sharded.elapsed));
            w.field_f64("connections_per_sec", sharded.throughput);
        });
        w.field_f64(
            "speedup",
            sharded.throughput / single.throughput.max(f64::EPSILON),
        );
        w.nested("restart", |w| {
            w.field_f64("kill_to_healthy_ms", crate::report::millis(restart.latency));
            w.field_f64("respawn_boot_ms", crate::report::millis(restart.boot_cost));
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ListenerWorkload {
        ListenerWorkload {
            connections: 8,
            think_time: Duration::from_millis(2),
            accept_batch: 4,
        }
    }

    #[test]
    fn listener_run_accounts_every_connection() {
        let run = run_listener_pop3(tiny(), 2);
        assert_eq!(run.sched.completed, 8);
        assert_eq!(
            run.sched.submitted,
            run.sched.completed + run.sched.rejected
        );
        assert_eq!(run.listener.accepted, 8);
        assert_eq!(run.listener.refused, 0);
        assert!(run.throughput > 0.0);
    }

    #[test]
    fn restart_latency_is_measurable() {
        let measurement = measure_restart_latency(2);
        assert!(measurement.latency > Duration::ZERO);
        assert!(measurement.boot_cost > Duration::ZERO);
        assert!(
            measurement.latency >= measurement.boot_cost,
            "kill-to-healthy includes the respawn boot"
        );
    }

    #[test]
    fn bench_json_is_well_formed() {
        let run = ListenerRun {
            elapsed: Duration::from_millis(120),
            throughput: 66.6,
            sched: SchedStats::default(),
            listener: ListenerStats::default(),
        };
        let restart = RestartMeasurement {
            latency: Duration::from_millis(7),
            boot_cost: Duration::from_millis(3),
        };
        let json = listener_bench_json(tiny(), 4, &run, &run, &restart);
        for key in [
            "\"bench\":\"listener\"",
            "\"connections_per_sec\"",
            "\"speedup\"",
            "\"kill_to_healthy_ms\"",
            "\"respawn_boot_ms\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
