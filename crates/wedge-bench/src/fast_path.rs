//! The kernel fast-path experiment: op-log replicated tagged reads vs. the
//! two ablation tiers the repo's kernel grew through.
//!
//! The workload is the paper's Figure 7 primitive cost, scaled out: `N`
//! reader compartments hammer `mem_read` on buffers in shared tagged
//! memory. Three kernel profiles serve it:
//!
//! * [`KernelProfile::Legacy`] — [`wedge_core::Kernel::legacy_baseline`],
//!   the pre-sharding contention profile (one global lock around every
//!   access, a per-access compartment-name clone, no permission caches);
//! * [`KernelProfile::Sharded`] — [`wedge_core::Kernel::sharded_baseline`],
//!   the PR 2 design: sharded tables, per-sthread permission caches
//!   validated against a per-compartment **epoch**, fully flushed on any
//!   policy mutation;
//! * [`KernelProfile::OpLog`] — [`wedge_core::Kernel::new`], the shipping
//!   default: policy mutations flat-combined onto a shared versioned op
//!   log, reads served replica-locally, caches invalidated **precisely**
//!   by log version (see `wedge_core::oplog`).
//!
//! The pure-read workload separates legacy from the cached tiers; the
//! **mixed** workload ([`run_mixed_reads`]) is where op-log replication
//! earns its keep. Each tier runs its own deployment shape: the epoch
//! tiers replicate kernel state per forked shard (one kernel instance per
//! reader — PR 2's model), so a logical update to shard-replicated state
//! must be applied once *per instance*; the op-log kernel replicates
//! internally, so the same update is one flat-combined log append that
//! every replica observes. With a background mutator draining a fixed
//! quota of such updates, the op-log tier finishes the identical logical
//! workload well ahead of the broadcast tier. [`compare_boot_cost`]
//! measures the third claim: a shard booted by log replay ships KiB of
//! ops instead of an address-space image.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use wedge_core::{
    CompartmentId, Kernel, KernelStats, MemProt, SBuf, SecurityPolicy, SthreadCtx, Tag, WedgeError,
};
use wedge_net::Duplex;
use wedge_sched::{BootStrategy, ShardConfig, ShardServer, ShardSet};

/// The concurrent tagged-read workload.
#[derive(Debug, Clone, Copy)]
pub struct FastPathWorkload {
    /// Concurrent reader compartments.
    pub workers: usize,
    /// `mem_read`s per reader.
    pub iters_per_worker: usize,
    /// Bytes per read.
    pub payload: usize,
}

impl Default for FastPathWorkload {
    fn default() -> Self {
        FastPathWorkload {
            workers: 4,
            iters_per_worker: 10_000,
            payload: 32,
        }
    }
}

/// Which kernel profile serves the readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelProfile {
    /// The pre-refactor baseline: one global lock, per-access name clone,
    /// no permission caches.
    Legacy,
    /// The PR 2 ablation tier: sharded tables with per-sthread permission
    /// caches validated against per-compartment epochs (any policy
    /// mutation flushes every cache bound to the compartment).
    Sharded,
    /// The shipping default: op-log replicated policy state with
    /// flat-combined mutations and version-precise cache invalidation.
    OpLog,
}

impl KernelProfile {
    /// Stable artifact/bench label for this tier.
    pub fn label(self) -> &'static str {
        match self {
            KernelProfile::Legacy => "legacy",
            KernelProfile::Sharded => "sharded",
            KernelProfile::OpLog => "oplog",
        }
    }
}

fn build_root(profile: KernelProfile) -> SthreadCtx {
    let kernel = match profile {
        KernelProfile::Legacy => Arc::new(Kernel::legacy_baseline()),
        KernelProfile::Sharded => Arc::new(Kernel::sharded_baseline()),
        KernelProfile::OpLog => Arc::new(Kernel::new()),
    };
    kernel.prewarm_tag_cache(2);
    kernel.create_root_compartment("bench-root")
}

/// Run the workload on the given kernel profile; returns the wall time from
/// the moment all readers are released to the last reader finishing.
pub fn run_concurrent_reads(profile: KernelProfile, workload: FastPathWorkload) -> Duration {
    let root = build_root(profile);
    drive_readers(&root, profile, workload)
}

/// [`run_concurrent_reads`] on the default (op-log) kernel with the kernel
/// **instrumented** on a fresh [`wedge_telemetry::Telemetry`] registry (no
/// sink installed) — the overhead-gate configuration: registration must
/// not slow the warm read path, because kernel counters are *pulled* at
/// snapshot time, never pushed per read. Returns the wall time plus the
/// post-run snapshot so callers can assert the reads actually showed up.
pub fn run_concurrent_reads_telemetered(
    workload: FastPathWorkload,
) -> (Duration, wedge_telemetry::TelemetrySnapshot) {
    let root = build_root(KernelProfile::OpLog);
    let telemetry = wedge_telemetry::Telemetry::new();
    root.kernel().instrument(&telemetry);
    let elapsed = drive_readers(&root, KernelProfile::OpLog, workload);
    (elapsed, telemetry.snapshot())
}

/// [`run_concurrent_reads_telemetered`] with a [`wedge_telemetry::Tracer`]
/// **installed but untriggered**: no listener mints a root trace, so every
/// trace hook on the serving path (sthread spawns, op-log appends) takes
/// its one-relaxed-load early exit. The tracing overhead gate compares
/// this against the sink-less telemetered run — the PR 6 baseline.
pub fn run_concurrent_reads_traced(
    workload: FastPathWorkload,
) -> (Duration, wedge_telemetry::TelemetrySnapshot) {
    let root = build_root(KernelProfile::OpLog);
    let telemetry = wedge_telemetry::Telemetry::new();
    root.kernel().instrument(&telemetry);
    telemetry.install_tracer(wedge_telemetry::Tracer::new(
        wedge_telemetry::TracerConfig::default(),
    ));
    let elapsed = drive_readers(&root, KernelProfile::OpLog, workload);
    (elapsed, telemetry.snapshot())
}

/// Untriggered-tracing overhead: `(baseline, traced)` pure-read wall
/// times, min over `rounds` interleaved rounds (a runner load spike lands
/// on both variants in the same round instead of biasing one block).
pub fn compare_traced_overhead(workload: FastPathWorkload, rounds: usize) -> (Duration, Duration) {
    let mut baseline = Duration::MAX;
    let mut traced = Duration::MAX;
    for _ in 0..rounds.max(1) {
        baseline = baseline.min(run_concurrent_reads_telemetered(workload).0);
        traced = traced.min(run_concurrent_reads_traced(workload).0);
    }
    (baseline, traced)
}

fn drive_readers(
    root: &SthreadCtx,
    profile: KernelProfile,
    workload: FastPathWorkload,
) -> Duration {
    let tag = root.tag_new().expect("tag");
    let payload: Vec<u8> = (0..workload.payload).map(|i| i as u8).collect();
    let buf = root.smalloc_init(tag, &payload).expect("buf");

    // One grant per reader; all readers share the tag (the Apache/SSH shape:
    // many workers, few hot shared regions).
    let barrier = Arc::new(Barrier::new(workload.workers + 1));
    let mut policy = SecurityPolicy::deny_all();
    policy.sc_mem_add(tag, MemProt::Read);

    let handles: Vec<_> = (0..workload.workers)
        .map(|i| {
            let barrier = barrier.clone();
            let expected = payload.clone();
            root.sthread_create(&format!("reader-{i}"), &policy, move |ctx| {
                barrier.wait();
                let mut dst = vec![0u8; expected.len()];
                let mut last = Vec::new();
                for _ in 0..workload.iters_per_worker {
                    if profile == KernelProfile::Legacy {
                        // The pre-refactor API: every read allocates its
                        // result and re-walks the policy table.
                        last = ctx.read(&buf, 0, expected.len()).expect("legacy read");
                    } else {
                        ctx.read_into(&buf, 0, &mut dst).expect("fast read");
                    }
                }
                // Verify once, outside the timed loop (and keep the reads
                // observable so the loop cannot be optimised away).
                if profile == KernelProfile::Legacy {
                    assert_eq!(last, expected);
                } else {
                    assert_eq!(dst, expected);
                }
            })
            .expect("spawn reader")
        })
        .collect();

    // Start the clock *before* releasing the barrier: on a 1-core box the
    // released workers can run to completion before this thread is
    // rescheduled, so a post-wait timestamp would miss the whole run.
    let started = Instant::now();
    barrier.wait();
    for handle in handles {
        handle.join().expect("reader");
    }
    started.elapsed()
}

/// Outcome of one mutation-heavy mixed run.
#[derive(Debug, Clone, Copy)]
pub struct MixedOutcome {
    /// Wall time from barrier release until the readers *and* the
    /// mutation quota have both drained — the fixed logical workload's
    /// total serving cost.
    pub elapsed: Duration,
    /// Physical policy mutations applied to drain the quota. On the
    /// per-process tiers every logical update is broadcast to each
    /// kernel instance, so this lands at roughly `workers ×` the op-log
    /// tier's count for the same logical work.
    pub mutations: u64,
}

/// Hot tagged regions per mixed-workload reader — the Apache-worker
/// shape: a request touches the connection buffer, the config, the
/// session entry, the log ring, … each under its own tag.
const MIXED_HOT_TAGS: usize = 8;

/// One kernel instance in the mixed-workload deployment: its root
/// context, the shard-replicated "config" compartment the mutator
/// updates, a distractor tag, and the reader hot set.
struct MixedShard {
    root: SthreadCtx,
    config: CompartmentId,
    distractor: Tag,
    policy: SecurityPolicy,
    bufs: Vec<SBuf>,
}

fn build_mixed_shard(profile: KernelProfile, payload: &[u8]) -> MixedShard {
    let root = build_root(profile);
    let distractor = root.tag_new().expect("distractor tag");
    // The "config" principal: shard-replicated control-plane state. An
    // exited sthread keeps its compartment as a valid mutation target
    // without costing a live thread per kernel instance.
    let config = root
        .sthread_create("config", &SecurityPolicy::deny_all(), |_| {})
        .expect("config compartment");
    let config_id = config.id();
    config.join().expect("config exits");
    let mut policy = SecurityPolicy::deny_all();
    let bufs: Vec<SBuf> = (0..MIXED_HOT_TAGS)
        .map(|_| {
            let tag = root.tag_new().expect("tag");
            policy.sc_mem_add(tag, MemProt::Read);
            root.smalloc_init(tag, payload).expect("buf")
        })
        .collect();
    MixedShard {
        root,
        config: config_id,
        distractor,
        policy,
        bufs,
    }
}

/// The mutation-heavy mixed workload, measured over each tier's **own
/// deployment shape**. The op-log kernel is internally replicated (one
/// instance, per-shard [`wedge_core::KernelReplica`]s), so one instance
/// serves every reader and a policy update is **one log append** that
/// reaches all replicas. The epoch tiers replicate at the process level —
/// PR 2's forked-shard model, one kernel per reader — so the same logical
/// update to shard-replicated state (here a "config" compartment present
/// on every instance) must be **broadcast**: applied once per kernel.
///
/// `workers` readers cycle over [`MIXED_HOT_TAGS`] hot tags while a
/// background mutator drains a fixed quota of logical config updates
/// (grant + revoke of a distractor tag), plus an occasional grant/revoke
/// aimed at a reader's own compartment to keep the invalidation path
/// honest (full cache flush on the epoch tiers, version-precise suffix
/// fold on the op-log tier). The workload is deterministic — same reads,
/// same logical updates — so elapsed wall time compares the tiers'
/// total cost for identical logical work.
pub fn run_mixed_reads(profile: KernelProfile, workload: FastPathWorkload) -> MixedOutcome {
    let instances = match profile {
        KernelProfile::OpLog => 1,
        KernelProfile::Legacy | KernelProfile::Sharded => workload.workers.max(1),
    };
    let payload: Vec<u8> = (0..workload.payload).map(|i| i as u8).collect();
    let shards: Vec<MixedShard> = (0..instances)
        .map(|_| build_mixed_shard(profile, &payload))
        .collect();

    let barrier = Arc::new(Barrier::new(workload.workers + 2));
    let handles: Vec<_> = (0..workload.workers)
        .map(|i| {
            let shard = &shards[i % instances];
            let barrier = barrier.clone();
            let expected = payload.clone();
            let bufs = shard.bufs.clone();
            shard
                .root
                .sthread_create(&format!("mixed-reader-{i}"), &shard.policy, move |ctx| {
                    barrier.wait();
                    let mut dst = vec![0u8; expected.len()];
                    let mut last = Vec::new();
                    for iter in 0..workload.iters_per_worker {
                        let buf = &bufs[iter % bufs.len()];
                        if profile == KernelProfile::Legacy {
                            last = ctx.read(buf, 0, expected.len()).expect("legacy read");
                        } else {
                            ctx.read_into(buf, 0, &mut dst).expect("fast read");
                        }
                    }
                    if profile == KernelProfile::Legacy {
                        assert_eq!(last, expected);
                    } else {
                        assert_eq!(dst, expected);
                    }
                })
                .expect("spawn reader")
        })
        .collect();

    // Targets for the occasional reader-aimed mutation: each reader's id
    // paired with the root of the kernel instance that hosts it.
    let reader_targets: Vec<(SthreadCtx, CompartmentId, Tag)> = handles
        .iter()
        .enumerate()
        .map(|(i, h)| {
            let shard = &shards[i % instances];
            (shard.root.clone(), h.id(), shard.distractor)
        })
        .collect();
    let config_targets: Vec<(SthreadCtx, CompartmentId, Tag)> = shards
        .iter()
        .map(|s| (s.root.clone(), s.config, s.distractor))
        .collect();

    // Fixed quota: 3 logical config updates per reader iteration — a
    // mutation-heavy mix, so the tiers' update paths carry the bulk of
    // the measured work.
    let rounds = (workload.iters_per_worker * 3).max(1);
    let mutator = {
        let barrier = barrier.clone();
        std::thread::spawn(move || {
            barrier.wait();
            let mut count = 0u64;
            for round in 0..rounds {
                for (root, config, tag) in &config_targets {
                    root.grant_mem(*config, *tag, MemProt::Read)
                        .expect("grant config");
                    root.revoke_mem(*config, *tag).expect("revoke config");
                    count += 2;
                }
                if round % 64 == 0 {
                    let (root, id, tag) = &reader_targets[(round / 64) % reader_targets.len()];
                    root.grant_mem(*id, *tag, MemProt::Read)
                        .expect("grant reader");
                    root.revoke_mem(*id, *tag).expect("revoke reader");
                    count += 2;
                }
            }
            count
        })
    };

    // Start the clock before releasing the barrier (on a 1-core box the
    // released threads can finish before this one is rescheduled).
    let started = Instant::now();
    barrier.wait();
    for handle in handles {
        handle.join().expect("reader");
    }
    let mutations = mutator.join().expect("mutator");
    let elapsed = started.elapsed();
    MixedOutcome { elapsed, mutations }
}

/// Outcome of one legacy-vs-sharded comparison.
#[derive(Debug, Clone, Copy)]
pub struct FastPathComparison {
    /// Wall time on the legacy (global-lock) kernel.
    pub legacy: Duration,
    /// Wall time on the sharded-epoch kernel.
    pub sharded: Duration,
    /// `legacy / sharded` — how many times faster the sharded fast path is.
    pub speedup: f64,
}

/// Run the same workload on the legacy and sharded-epoch profiles.
pub fn compare_fast_path(workload: FastPathWorkload) -> FastPathComparison {
    let legacy = run_concurrent_reads(KernelProfile::Legacy, workload);
    let sharded = run_concurrent_reads(KernelProfile::Sharded, workload);
    FastPathComparison {
        legacy,
        sharded,
        speedup: legacy.as_secs_f64() / sharded.as_secs_f64().max(f64::EPSILON),
    }
}

/// A do-nothing shard server over a representative op-log kernel, used to
/// isolate *boot* cost: the factory builds the kernel and replays a
/// serving-stack-shaped prefix of policy ops (root + a few dozen tagged
/// segments), which is exactly the state a replay-based boot reconstructs.
struct BootProbeServer {
    kernel: Arc<Kernel>,
}

impl ShardServer for BootProbeServer {
    type Report = ();

    fn serve_link(&self, _shard: usize, _link: Duplex) -> Result<(), WedgeError> {
        Ok(())
    }

    fn kernel_stats(&self) -> KernelStats {
        self.kernel.stats()
    }
}

fn boot_probe_factory() -> Result<BootProbeServer, WedgeError> {
    let kernel = Arc::new(Kernel::new());
    let root = kernel.create_root_compartment("shard-root");
    // A serving stack's boot-time policy state: a few dozen tagged
    // segments with their implicit creator grants — each one a logged op
    // the child's replicas replay.
    for _ in 0..32 {
        let tag = root.tag_new()?;
        let _ = root.smalloc(64, tag)?;
    }
    Ok(BootProbeServer { kernel })
}

/// Mean per-shard boot cost under each [`BootStrategy`].
#[derive(Debug, Clone, Copy)]
pub struct BootComparison {
    /// Mean boot cost with classic full-image fork semantics.
    pub image_copy: Duration,
    /// Mean boot cost shipping only the serialized op log.
    pub log_replay: Duration,
}

fn mean_boot_cost(strategy: BootStrategy, shards: usize) -> Duration {
    let config = ShardConfig {
        shards,
        boot: strategy,
        ..ShardConfig::default()
    };
    let set = ShardSet::new(config, |_| boot_probe_factory()).expect("boot shard set");
    let stats = set.shard_stats();
    let total: Duration = stats.iter().map(|s| s.boot_cost).sum();
    total / stats.len().max(1) as u32
}

/// Boot `shards` shards under both strategies, `rounds` times each, and
/// return the **minimum** mean boot cost per strategy (scheduler noise
/// only ever adds wall time, so the min is the best estimate of the true
/// cost — the same estimator the read gates use).
pub fn compare_boot_cost(shards: usize, rounds: usize) -> BootComparison {
    let mut image_copy = Duration::MAX;
    let mut log_replay = Duration::MAX;
    for _ in 0..rounds.max(1) {
        image_copy = image_copy.min(mean_boot_cost(BootStrategy::ImageCopy, shards));
        log_replay = log_replay.min(mean_boot_cost(
            BootStrategy::LogReplay { log_bytes: 4096 },
            shards,
        ));
    }
    BootComparison {
        image_copy,
        log_replay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noise-robust speedup estimate: scheduler noise on a loaded 1-core
    /// runner only ever *adds* wall time, so the minimum over several
    /// interleaved rounds is the best estimate of each profile's true cost.
    fn measured_speedup(rounds: usize) -> (f64, Duration, Duration) {
        let workload = FastPathWorkload::default();
        let outcomes: Vec<_> = (0..rounds).map(|_| compare_fast_path(workload)).collect();
        let legacy = outcomes.iter().map(|r| r.legacy).min().expect("rounds");
        let sharded = outcomes.iter().map(|r| r.sharded).min().expect("rounds");
        (
            legacy.as_secs_f64() / sharded.as_secs_f64().max(f64::EPSILON),
            legacy,
            sharded,
        )
    }

    /// The PR 2 acceptance criterion, retained as an ablation gate: the
    /// sharded-epoch tier serves ≥3× the throughput of the pre-refactor
    /// kernel on 4-worker concurrent tagged reads. Release-only — an
    /// unoptimised build inflates both profiles with fixed
    /// interpreter-grade overhead that hides the locking and allocation
    /// deltas this measures (CI runs it via
    /// `cargo test --release -p wedge-bench fast_path`).
    #[cfg(not(debug_assertions))]
    #[test]
    fn fast_path_beats_legacy_by_3x_at_4_workers() {
        let (speedup, legacy, sharded) = measured_speedup(5);
        assert!(
            speedup >= 3.0,
            "expected ≥3x over the legacy kernel at 4 workers, got {speedup:.2}x \
             (legacy {legacy:?}, sharded {sharded:?})"
        );
    }

    /// The op-log acceptance criterion, part 1: on the **pure-read**
    /// workload the op-log tier must never be slower than the sharded
    /// epoch tier it replaces (its warm path is the same shape: one
    /// atomic load, one cache-map hit, one shard read lock). The 5%
    /// tolerance absorbs timer noise on a loaded 1-core runner; the bench
    /// artifact records the true ratio.
    #[cfg(not(debug_assertions))]
    #[test]
    fn oplog_pure_reads_match_the_sharded_tier() {
        let workload = FastPathWorkload::default();
        // Interleaved rounds: a load spike on the runner lands on both
        // tiers in the same round instead of biasing whichever tier's
        // block it happens to fall into.
        let mut sharded = Duration::MAX;
        let mut oplog = Duration::MAX;
        for _ in 0..9 {
            sharded = sharded.min(run_concurrent_reads(KernelProfile::Sharded, workload));
            oplog = oplog.min(run_concurrent_reads(KernelProfile::OpLog, workload));
        }
        let ratio = sharded.as_secs_f64() / oplog.as_secs_f64().max(f64::EPSILON);
        assert!(
            ratio >= 0.95,
            "op-log pure reads must not regress vs the sharded tier: \
             {ratio:.2}x (sharded {sharded:?}, oplog {oplog:?})"
        );
    }

    /// The op-log acceptance criterion, part 2 (the headline): with a
    /// background mutator draining a fixed quota of updates to
    /// shard-replicated policy state, the op-log tier must finish the
    /// identical logical workload (4 concurrent readers + the mutation
    /// quota) ≥1.5× as fast as the sharded-epoch tier — one flat-combined
    /// log append per update vs. a per-kernel-instance broadcast.
    #[cfg(not(debug_assertions))]
    #[test]
    fn oplog_beats_sharded_by_1_5x_on_the_mixed_workload() {
        let workload = FastPathWorkload::default();
        // Interleaved min-over-rounds, same rationale as the pure-read
        // gate above.
        let mut sharded = Duration::MAX;
        let mut oplog = Duration::MAX;
        for _ in 0..5 {
            sharded = sharded.min(run_mixed_reads(KernelProfile::Sharded, workload).elapsed);
            oplog = oplog.min(run_mixed_reads(KernelProfile::OpLog, workload).elapsed);
        }
        let speedup = sharded.as_secs_f64() / oplog.as_secs_f64().max(f64::EPSILON);
        assert!(
            speedup >= 1.5,
            "expected the op-log tier ≥1.5x over the sharded tier under a \
             mutation storm, got {speedup:.2}x (sharded {sharded:?}, oplog {oplog:?})"
        );
    }

    /// The op-log acceptance criterion, part 3: booting a shard by log
    /// replay (ship the KiB-sized op log, replay into fresh replicas)
    /// must cost no more than the classic full-image copy it replaces.
    #[cfg(not(debug_assertions))]
    #[test]
    fn replay_boot_is_not_costlier_than_image_copy() {
        let boot = compare_boot_cost(4, 8);
        assert!(
            boot.log_replay <= boot.image_copy,
            "replay-based shard boot must not cost more than the 1 MiB \
             image copy: replay {:?} vs image {:?}",
            boot.log_replay,
            boot.image_copy
        );
    }

    /// The telemetry overhead gate: with the (op-log) kernel *instrumented*
    /// on a live [`wedge_telemetry::Telemetry`] registry but **no sink
    /// installed**, the ≥3× speedup over the legacy kernel must still
    /// hold — i.e. registering metrics costs the warm read path nothing
    /// measurable (kernel counters are pulled at snapshot time, never
    /// pushed per read). The snapshot check pins that the instrumented
    /// run really was observed, so this cannot pass vacuously.
    #[cfg(not(debug_assertions))]
    #[test]
    fn fast_path_3x_gate_holds_with_telemetry_registered_no_sink() {
        let workload = FastPathWorkload::default();
        let mut legacy = Duration::MAX;
        let mut oplog = Duration::MAX;
        let mut reads_seen = 0u64;
        for _ in 0..5 {
            legacy = legacy.min(run_concurrent_reads(KernelProfile::Legacy, workload));
            let (elapsed, snapshot) = run_concurrent_reads_telemetered(workload);
            oplog = oplog.min(elapsed);
            reads_seen = reads_seen.max(snapshot.counter("kernel.read"));
        }
        let expected_reads = (workload.workers * workload.iters_per_worker) as u64;
        assert!(
            reads_seen >= expected_reads,
            "instrumented run must surface its reads in the snapshot: \
             saw {reads_seen}, expected ≥{expected_reads}"
        );
        let speedup = legacy.as_secs_f64() / oplog.as_secs_f64().max(f64::EPSILON);
        assert!(
            speedup >= 3.0,
            "telemetry registration (no sink) must not erode the 3x gate: \
             got {speedup:.2}x (legacy {legacy:?}, instrumented oplog {oplog:?})"
        );
    }

    /// The tracing overhead gate (the PR 10 satellite): a tracer
    /// **installed but untriggered** — compiled in, gate armed, no trace
    /// ever started — must keep the kernel fast-path read within 1.1× of
    /// the sink-less telemetered baseline. The started-counter check pins
    /// that the run really was untriggered, so the gate cannot pass by
    /// accidentally measuring a traced run against itself.
    #[cfg(not(debug_assertions))]
    #[test]
    fn untriggered_tracing_stays_within_10_percent_of_the_baseline() {
        let workload = FastPathWorkload::default();
        let (baseline, traced) = compare_traced_overhead(workload, 9);
        let (_, snapshot) = run_concurrent_reads_traced(workload);
        assert_eq!(
            snapshot.counter("trace.started"),
            0,
            "no root trace may start in the untriggered configuration"
        );
        let ratio = traced.as_secs_f64() / baseline.as_secs_f64().max(f64::EPSILON);
        assert!(
            ratio <= 1.1,
            "untriggered tracing must cost ≤1.1x the sink-less baseline: \
             got {ratio:.3}x (baseline {baseline:?}, traced {traced:?})"
        );
    }

    /// Debug-build sanity bound for the same workload, so plain
    /// `cargo test` still guards against a fast-path regression.
    #[cfg(debug_assertions)]
    #[test]
    fn fast_path_beats_legacy_even_unoptimised() {
        let (speedup, legacy, sharded) = measured_speedup(3);
        assert!(
            speedup >= 1.5,
            "expected ≥1.5x over the legacy kernel in a debug build, got {speedup:.2}x \
             (legacy {legacy:?}, sharded {sharded:?})"
        );
    }

    /// The mixed workload completes and actually mutates on every tier —
    /// the debug-build guard that the harness itself is sound (the timing
    /// gates above are release-only).
    #[test]
    fn mixed_workload_runs_on_every_tier() {
        let workload = FastPathWorkload {
            workers: 2,
            iters_per_worker: 200,
            payload: 16,
        };
        for profile in [
            KernelProfile::Legacy,
            KernelProfile::Sharded,
            KernelProfile::OpLog,
        ] {
            let outcome = run_mixed_reads(profile, workload);
            assert!(
                outcome.mutations > 0,
                "mutator must land mutations under {profile:?}"
            );
        }
    }

    /// All three profiles enforce the same policy: a reader without a
    /// grant faults identically on any kernel.
    #[test]
    fn profiles_agree_on_denials() {
        for profile in [
            KernelProfile::Legacy,
            KernelProfile::Sharded,
            KernelProfile::OpLog,
        ] {
            let root = build_root(profile);
            let tag = root.tag_new().unwrap();
            let buf = root.smalloc_init(tag, b"secret").unwrap();
            let handle = root
                .sthread_create("snoop", &SecurityPolicy::deny_all(), move |ctx| {
                    ctx.read(&buf, 0, 6).is_err()
                })
                .unwrap();
            assert!(handle.join().unwrap(), "denial must hold under {profile:?}");
        }
    }

    /// Replay-based boot really is replay-based: the probe factory's
    /// kernel carries a compact op log whose serialized size is a few KiB
    /// (vs the 1 MiB default fork image).
    #[test]
    fn boot_probe_log_is_compact() {
        let server = boot_probe_factory().expect("factory");
        let bytes = server.kernel.oplog_bytes().expect("op-log kernel");
        assert!(
            bytes > 0 && bytes < 64 * 1024,
            "serialized boot log should be KiB-scale, got {bytes} bytes"
        );
    }
}
