//! The kernel fast-path experiment: sharded, permission-cached tagged reads
//! vs. the pre-refactor global-lock kernel.
//!
//! The workload is the paper's Figure 7 primitive cost, scaled out: `N`
//! reader compartments hammer `mem_read` on buffers in shared tagged
//! memory. The baseline runs on [`wedge_core::Kernel::legacy_baseline`],
//! which reproduces the pre-sharding contention profile (one global lock
//! around every access, a per-access compartment-name clone, no permission
//! caches) — the same ablation idiom the tag cache uses for Figure 8. The
//! fast variant runs on the sharded kernel through
//! [`wedge_core::SthreadCtx::read_into`], whose warm path takes one epoch
//! load, one cache-map hit and one shard read lock, and performs zero heap
//! allocations when no tracer is installed (asserted by the
//! `fast_path_alloc` integration test).

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use wedge_core::{Kernel, MemProt, SecurityPolicy, SthreadCtx};

/// The concurrent tagged-read workload.
#[derive(Debug, Clone, Copy)]
pub struct FastPathWorkload {
    /// Concurrent reader compartments.
    pub workers: usize,
    /// `mem_read`s per reader.
    pub iters_per_worker: usize,
    /// Bytes per read.
    pub payload: usize,
}

impl Default for FastPathWorkload {
    fn default() -> Self {
        FastPathWorkload {
            workers: 4,
            iters_per_worker: 10_000,
            payload: 32,
        }
    }
}

/// Which kernel profile serves the readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelProfile {
    /// The pre-refactor baseline: one global lock, per-access name clone,
    /// no permission caches.
    Legacy,
    /// The sharded kernel with per-sthread permission caches and the
    /// zero-copy `read_into` path.
    Sharded,
}

fn build_root(profile: KernelProfile) -> SthreadCtx {
    let kernel = match profile {
        KernelProfile::Legacy => Arc::new(Kernel::legacy_baseline()),
        KernelProfile::Sharded => Arc::new(Kernel::new()),
    };
    kernel.prewarm_tag_cache(2);
    kernel.create_root_compartment("bench-root")
}

/// Run the workload on the given kernel profile; returns the wall time from
/// the moment all readers are released to the last reader finishing.
pub fn run_concurrent_reads(profile: KernelProfile, workload: FastPathWorkload) -> Duration {
    let root = build_root(profile);
    drive_readers(&root, profile, workload)
}

/// [`run_concurrent_reads`] on the sharded kernel with the kernel
/// **instrumented** on a fresh [`wedge_telemetry::Telemetry`] registry (no
/// sink installed) — the overhead-gate configuration: registration must
/// not slow the warm read path, because kernel counters are *pulled* at
/// snapshot time, never pushed per read. Returns the wall time plus the
/// post-run snapshot so callers can assert the reads actually showed up.
pub fn run_concurrent_reads_telemetered(
    workload: FastPathWorkload,
) -> (Duration, wedge_telemetry::TelemetrySnapshot) {
    let root = build_root(KernelProfile::Sharded);
    let telemetry = wedge_telemetry::Telemetry::new();
    root.kernel().instrument(&telemetry);
    let elapsed = drive_readers(&root, KernelProfile::Sharded, workload);
    (elapsed, telemetry.snapshot())
}

fn drive_readers(
    root: &SthreadCtx,
    profile: KernelProfile,
    workload: FastPathWorkload,
) -> Duration {
    let tag = root.tag_new().expect("tag");
    let payload: Vec<u8> = (0..workload.payload).map(|i| i as u8).collect();
    let buf = root.smalloc_init(tag, &payload).expect("buf");

    // One grant per reader; all readers share the tag (the Apache/SSH shape:
    // many workers, few hot shared regions).
    let barrier = Arc::new(Barrier::new(workload.workers + 1));
    let mut policy = SecurityPolicy::deny_all();
    policy.sc_mem_add(tag, MemProt::Read);

    let handles: Vec<_> = (0..workload.workers)
        .map(|i| {
            let barrier = barrier.clone();
            let expected = payload.clone();
            root.sthread_create(&format!("reader-{i}"), &policy, move |ctx| {
                barrier.wait();
                let mut dst = vec![0u8; expected.len()];
                let mut last = Vec::new();
                for _ in 0..workload.iters_per_worker {
                    match profile {
                        KernelProfile::Legacy => {
                            // The pre-refactor API: every read allocates its
                            // result and re-walks the policy table.
                            last = ctx.read(&buf, 0, expected.len()).expect("legacy read");
                        }
                        KernelProfile::Sharded => {
                            ctx.read_into(&buf, 0, &mut dst).expect("fast read");
                        }
                    }
                }
                // Verify once, outside the timed loop (and keep the reads
                // observable so the loop cannot be optimised away).
                match profile {
                    KernelProfile::Legacy => assert_eq!(last, expected),
                    KernelProfile::Sharded => assert_eq!(dst, expected),
                }
            })
            .expect("spawn reader")
        })
        .collect();

    // Start the clock *before* releasing the barrier: on a 1-core box the
    // released workers can run to completion before this thread is
    // rescheduled, so a post-wait timestamp would miss the whole run.
    let started = Instant::now();
    barrier.wait();
    for handle in handles {
        handle.join().expect("reader");
    }
    started.elapsed()
}

/// Outcome of one legacy-vs-sharded comparison.
#[derive(Debug, Clone, Copy)]
pub struct FastPathComparison {
    /// Wall time on the legacy (global-lock) kernel.
    pub legacy: Duration,
    /// Wall time on the sharded kernel.
    pub sharded: Duration,
    /// `legacy / sharded` — how many times faster the sharded fast path is.
    pub speedup: f64,
}

/// Run the same workload on both kernel profiles.
pub fn compare_fast_path(workload: FastPathWorkload) -> FastPathComparison {
    let legacy = run_concurrent_reads(KernelProfile::Legacy, workload);
    let sharded = run_concurrent_reads(KernelProfile::Sharded, workload);
    FastPathComparison {
        legacy,
        sharded,
        speedup: legacy.as_secs_f64() / sharded.as_secs_f64().max(f64::EPSILON),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noise-robust speedup estimate: scheduler noise on a loaded 1-core
    /// runner only ever *adds* wall time, so the minimum over several
    /// interleaved rounds is the best estimate of each profile's true cost.
    fn measured_speedup(rounds: usize) -> (f64, Duration, Duration) {
        let workload = FastPathWorkload::default();
        let outcomes: Vec<_> = (0..rounds).map(|_| compare_fast_path(workload)).collect();
        let legacy = outcomes.iter().map(|r| r.legacy).min().expect("rounds");
        let sharded = outcomes.iter().map(|r| r.sharded).min().expect("rounds");
        (
            legacy.as_secs_f64() / sharded.as_secs_f64().max(f64::EPSILON),
            legacy,
            sharded,
        )
    }

    /// The ISSUE acceptance criterion: the sharded fast path serves ≥3× the
    /// throughput of the pre-refactor kernel on 4-worker concurrent tagged
    /// reads. Release-only — an unoptimised build inflates both profiles
    /// with fixed interpreter-grade overhead that hides the locking and
    /// allocation deltas this measures (CI runs it via
    /// `cargo test --release -p wedge-bench fast_path`).
    #[cfg(not(debug_assertions))]
    #[test]
    fn fast_path_beats_legacy_by_3x_at_4_workers() {
        let (speedup, legacy, sharded) = measured_speedup(5);
        assert!(
            speedup >= 3.0,
            "expected ≥3x over the legacy kernel at 4 workers, got {speedup:.2}x \
             (legacy {legacy:?}, sharded {sharded:?})"
        );
    }

    /// The telemetry overhead gate: with the kernel *instrumented* on a
    /// live [`wedge_telemetry::Telemetry`] registry but **no sink
    /// installed**, the ≥3× speedup over the legacy kernel must still
    /// hold — i.e. registering metrics costs the warm read path nothing
    /// measurable (kernel counters are pulled at snapshot time, never
    /// pushed per read). The snapshot check pins that the instrumented
    /// run really was observed, so this cannot pass vacuously.
    #[cfg(not(debug_assertions))]
    #[test]
    fn fast_path_3x_gate_holds_with_telemetry_registered_no_sink() {
        let workload = FastPathWorkload::default();
        let mut legacy = Duration::MAX;
        let mut sharded = Duration::MAX;
        let mut reads_seen = 0u64;
        for _ in 0..5 {
            legacy = legacy.min(run_concurrent_reads(KernelProfile::Legacy, workload));
            let (elapsed, snapshot) = run_concurrent_reads_telemetered(workload);
            sharded = sharded.min(elapsed);
            reads_seen = reads_seen.max(snapshot.counter("kernel.read"));
        }
        let expected_reads = (workload.workers * workload.iters_per_worker) as u64;
        assert!(
            reads_seen >= expected_reads,
            "instrumented run must surface its reads in the snapshot: \
             saw {reads_seen}, expected ≥{expected_reads}"
        );
        let speedup = legacy.as_secs_f64() / sharded.as_secs_f64().max(f64::EPSILON);
        assert!(
            speedup >= 3.0,
            "telemetry registration (no sink) must not erode the 3x gate: \
             got {speedup:.2}x (legacy {legacy:?}, instrumented sharded {sharded:?})"
        );
    }

    /// Debug-build sanity bound for the same workload, so plain
    /// `cargo test` still guards against a fast-path regression.
    #[cfg(debug_assertions)]
    #[test]
    fn fast_path_beats_legacy_even_unoptimised() {
        let (speedup, legacy, sharded) = measured_speedup(3);
        assert!(
            speedup >= 1.5,
            "expected ≥1.5x over the legacy kernel in a debug build, got {speedup:.2}x \
             (legacy {legacy:?}, sharded {sharded:?})"
        );
    }

    /// Both profiles enforce the same policy: a reader without a grant
    /// faults identically on either kernel.
    #[test]
    fn profiles_agree_on_denials() {
        for profile in [KernelProfile::Legacy, KernelProfile::Sharded] {
            let root = build_root(profile);
            let tag = root.tag_new().unwrap();
            let buf = root.smalloc_init(tag, b"secret").unwrap();
            let handle = root
                .sthread_create("snoop", &SecurityPolicy::deny_all(), move |ctx| {
                    ctx.read(&buf, 0, 6).is_err()
                })
                .unwrap();
            assert!(handle.join().unwrap(), "denial must hold under {profile:?}");
        }
    }
}
