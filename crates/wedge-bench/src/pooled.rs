//! Sequential-vs-concurrent-front-end throughput drivers.
//!
//! The workload is the simulated Apache one: full TLS handshake + one GET
//! per connection against the §5.1.2 partitioned server with recycled
//! callgates. Each client inserts a configurable **think time** between
//! its handshake and its request — the WAN round-trip / slow-client
//! latency that dominates real connection lifetimes. A sequential server
//! eats that latency once per connection; the concurrent front-end (today
//! the forked-shard `ShardSet` behind an acceptor) overlaps it across
//! `workers` in-flight connections — the only honest source of speedup on
//! a single-core CI box, where CPU-bound work cannot run in parallel.
//!
//! This module pins the *sequential server vs front-end* gap; the
//! [`crate::sharded`] module (whose harness the concurrent leg delegates
//! to) pins how that front-end's aggregate throughput *scales with shard
//! count*.

use std::time::{Duration, Instant};

use wedge_apache::{ApacheConfig, PageStore, WedgeApache};
use wedge_core::Wedge;
use wedge_crypto::{RsaKeyPair, WedgeRng};
use wedge_net::{duplex_pair, Duplex};
use wedge_sched::SchedStats;
use wedge_tls::TlsClient;

/// The simulated-Apache connection workload.
#[derive(Debug, Clone, Copy)]
pub struct PooledWorkload {
    /// Connections to serve.
    pub connections: usize,
    /// Per-client think time between handshake and request (WAN latency).
    pub think_time: Duration,
    /// RNG seed for the shared certificate keypair.
    pub seed: u64,
}

impl Default for PooledWorkload {
    fn default() -> Self {
        PooledWorkload {
            connections: 16,
            think_time: Duration::from_millis(10),
            seed: 77,
        }
    }
}

fn spawn_client(
    public_key: wedge_crypto::RsaPublicKey,
    link: Duplex,
    think_time: Duration,
    seed: u64,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut client = TlsClient::new(public_key, WedgeRng::from_seed(seed));
        let mut conn = client.connect(&link).expect("handshake");
        std::thread::sleep(think_time);
        conn.send(&link, b"GET /index.html HTTP/1.0\r\n\r\n")
            .expect("send");
        let response = conn.recv(&link).expect("response");
        assert!(response.starts_with(b"HTTP/1.0 200 OK"));
    })
}

/// Serve the workload on one recycled-callgate instance, one connection at
/// a time (the pre-scheduler behaviour). Returns the elapsed wall time.
pub fn run_sequential(workload: PooledWorkload) -> Duration {
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(workload.seed));
    let server = WedgeApache::new(
        Wedge::init(),
        keypair,
        PageStore::sample(),
        ApacheConfig { recycled: true },
    )
    .expect("sequential server");
    let started = Instant::now();
    for i in 0..workload.connections {
        let (client_link, server_link) = duplex_pair("seq-client", "seq-server");
        let client = spawn_client(
            server.public_key(),
            client_link,
            workload.think_time,
            workload.seed + 1000 + i as u64,
        );
        let report = server.serve_connection(server_link).expect("serve");
        assert!(report.handshake_ok && report.requests == 1);
        client.join().expect("client");
    }
    started.elapsed()
}

/// Serve the workload through the concurrent front-end with `workers`
/// shards (delegates to the [`crate::sharded`] harness — one driver for
/// the shared front-end). Returns the elapsed wall time and the front-end
/// counters.
pub fn run_pooled(workload: PooledWorkload, workers: usize) -> (Duration, SchedStats) {
    let run = crate::sharded::run_sharded(
        crate::sharded::ShardedWorkload {
            connections: workload.connections,
            think_time: workload.think_time,
            seed: workload.seed,
        },
        workers,
    );
    (run.elapsed, run.sched)
}

/// Outcome of one sequential-vs-pooled comparison.
#[derive(Debug, Clone)]
pub struct ThroughputComparison {
    /// Wall time for the sequential server.
    pub sequential: Duration,
    /// Wall time for the pooled front-end.
    pub pooled: Duration,
    /// `sequential / pooled`.
    pub speedup: f64,
    /// Scheduler counters from the pooled run.
    pub sched: SchedStats,
}

/// Run the same workload both ways.
pub fn compare(workload: PooledWorkload, workers: usize) -> ThroughputComparison {
    let sequential = run_sequential(workload);
    let (pooled, sched) = run_pooled(workload, workers);
    ThroughputComparison {
        sequential,
        pooled,
        speedup: sequential.as_secs_f64() / pooled.as_secs_f64().max(f64::EPSILON),
        sched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE acceptance criterion: ≥2× sequential throughput at 4
    /// workers on the simulated Apache workload.
    ///
    /// Think time is set well above the per-connection CPU cost (~2-3 ms on
    /// the 1-core CI box): the 2× bound needs CPU ≤ think_time/2 even when
    /// the CPU portions fully serialise, so 25 ms leaves a wide margin
    /// against a loaded runner.
    #[test]
    fn pooled_beats_sequential_by_2x_at_4_workers() {
        let workload = PooledWorkload {
            connections: 16,
            think_time: Duration::from_millis(25),
            seed: 77,
        };
        let outcome = compare(workload, 4);
        assert_eq!(outcome.sched.completed, 16);
        assert!(
            outcome.speedup >= 2.0,
            "expected ≥2x speedup at 4 workers, got {:.2}x (sequential {:?}, pooled {:?})",
            outcome.speedup,
            outcome.sequential,
            outcome.pooled
        );
    }

    /// Throughput must scale with worker count: 4 workers beat 1 worker.
    #[test]
    fn pooled_throughput_scales_with_worker_count() {
        let workload = PooledWorkload {
            connections: 12,
            think_time: Duration::from_millis(8),
            seed: 78,
        };
        let (one, _) = run_pooled(workload, 1);
        let (four, _) = run_pooled(workload, 4);
        assert!(
            four < one,
            "4 workers ({four:?}) must beat 1 worker ({one:?})"
        );
    }
}
