//! Shard-count throughput scaling for the forked-shard front-end.
//!
//! The workload is the same simulated-Apache one as [`crate::pooled`]:
//! full TLS handshake + one GET per connection against §5.1.2-partitioned
//! servers with recycled callgates, with a per-client **think time**
//! standing in for WAN latency. The variable here is the **shard count**
//! of [`ConcurrentApache`]'s `ShardSet` front-end: every shard owns an
//! independent simulated kernel and serves its queue sequentially, so
//! aggregate connections/sec should scale with shards for
//! think-time-dominated connections — the regime the shared acceptor
//! exists for. The companion release-mode test pins the ≥1.8× criterion
//! at 4 shards vs 1.

use std::time::{Duration, Instant};

use wedge_apache::{ConcurrentApache, ConcurrentApacheConfig, PageStore};
use wedge_crypto::{RsaKeyPair, WedgeRng};
use wedge_net::duplex_pair;
use wedge_sched::SchedStats;
use wedge_tls::TlsClient;

/// The sharded-Apache connection workload.
#[derive(Debug, Clone, Copy)]
pub struct ShardedWorkload {
    /// Connections to serve.
    pub connections: usize,
    /// Per-client think time between handshake and request (WAN latency).
    pub think_time: Duration,
    /// RNG seed for the shared certificate keypair.
    pub seed: u64,
}

impl Default for ShardedWorkload {
    fn default() -> Self {
        ShardedWorkload {
            connections: 16,
            think_time: Duration::from_millis(10),
            seed: 91,
        }
    }
}

/// Outcome of one sharded run.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// Wall time from first submission to last report.
    pub elapsed: Duration,
    /// Aggregate connections/sec.
    pub throughput: f64,
    /// Front-end counters.
    pub sched: SchedStats,
}

/// Serve the workload through a [`ConcurrentApache`] front-end of
/// `shards` forked shards.
pub fn run_sharded(workload: ShardedWorkload, shards: usize) -> ShardedRun {
    let keypair = RsaKeyPair::generate(&mut WedgeRng::from_seed(workload.seed));
    let server = ConcurrentApache::new(
        keypair,
        PageStore::sample(),
        ConcurrentApacheConfig {
            shards,
            queue_capacity: workload.connections.max(1),
            ..ConcurrentApacheConfig::default()
        },
    )
    .expect("sharded server");
    let mut server_links = Vec::with_capacity(workload.connections);
    let mut clients = Vec::with_capacity(workload.connections);
    let started = Instant::now();
    for i in 0..workload.connections {
        let (client_link, server_link) = duplex_pair("shard-client", "shard-server");
        let public_key = server.public_key();
        let think_time = workload.think_time;
        let seed = workload.seed + 3000 + i as u64;
        clients.push(std::thread::spawn(move || {
            let mut client = TlsClient::new(public_key, WedgeRng::from_seed(seed));
            let mut conn = client.connect(&client_link).expect("handshake");
            std::thread::sleep(think_time);
            conn.send(&client_link, b"GET /index.html HTTP/1.0\r\n\r\n")
                .expect("send");
            let response = conn.recv(&client_link).expect("response");
            assert!(response.starts_with(b"HTTP/1.0 200 OK"));
        }));
        server_links.push(server_link);
    }
    for report in server.serve_all(server_links) {
        let report = report.expect("serve");
        assert!(report.handshake_ok && report.requests == 1);
    }
    let elapsed = started.elapsed();
    for client in clients {
        client.join().expect("client");
    }
    ShardedRun {
        elapsed,
        throughput: workload.connections as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        sched: server.sched_stats(),
    }
}

/// Outcome of a shard-count scaling comparison.
#[derive(Debug, Clone)]
pub struct ShardScalingComparison {
    /// Wall time with one shard.
    pub single: Duration,
    /// Wall time with `shards` shards.
    pub sharded: Duration,
    /// `single / sharded` — aggregate throughput scaling.
    pub speedup: f64,
}

/// Run the same workload on one shard and on `shards` shards.
pub fn compare_sharded(workload: ShardedWorkload, shards: usize) -> ShardScalingComparison {
    let single = run_sharded(workload, 1).elapsed;
    let sharded = run_sharded(workload, shards).elapsed;
    ShardScalingComparison {
        single,
        sharded,
        speedup: single.as_secs_f64() / sharded.as_secs_f64().max(f64::EPSILON),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaling_workload() -> ShardedWorkload {
        // Think time well above the per-connection CPU cost (~2-3 ms on
        // the 1-core CI box): the scaling bound needs think-time overlap
        // to dominate even when the CPU portions fully serialise.
        ShardedWorkload {
            connections: 16,
            think_time: Duration::from_millis(25),
            seed: 91,
        }
    }

    /// Noise-robust estimate: scheduler noise on a loaded 1-core runner
    /// only ever *adds* wall time, so the minimum over rounds is the best
    /// estimate of each configuration's true cost.
    fn measured_speedup(rounds: usize) -> (f64, Duration, Duration) {
        let outcomes: Vec<_> = (0..rounds)
            .map(|_| compare_sharded(scaling_workload(), 4))
            .collect();
        let single = outcomes.iter().map(|r| r.single).min().expect("rounds");
        let sharded = outcomes.iter().map(|r| r.sharded).min().expect("rounds");
        (
            single.as_secs_f64() / sharded.as_secs_f64().max(f64::EPSILON),
            single,
            sharded,
        )
    }

    /// The ISSUE acceptance criterion: aggregate connections/sec scales
    /// with shard count — ≥1.8× at 4 shards vs 1 shard on the same box.
    /// Release-only, like the `fast_path` gate (CI runs it via
    /// `cargo test --release -p wedge-bench -q sharded`).
    #[cfg(not(debug_assertions))]
    #[test]
    fn sharded_beats_single_shard_by_1_8x_at_4_shards() {
        let (speedup, single, sharded) = measured_speedup(3);
        assert!(
            speedup >= 1.8,
            "expected ≥1.8x aggregate throughput at 4 shards, got {speedup:.2}x \
             (1 shard {single:?}, 4 shards {sharded:?})"
        );
    }

    /// Debug-build sanity bound for the same workload, so plain
    /// `cargo test` still guards against a scaling regression.
    #[cfg(debug_assertions)]
    #[test]
    fn sharded_beats_single_shard_even_unoptimised() {
        let (speedup, single, sharded) = measured_speedup(2);
        assert!(
            speedup >= 1.3,
            "expected ≥1.3x at 4 shards in a debug build, got {speedup:.2}x \
             (1 shard {single:?}, 4 shards {sharded:?})"
        );
    }

    /// Every connection completes and lands on some shard, whatever the
    /// shard count.
    #[test]
    fn sharded_run_accounts_every_connection() {
        let run = run_sharded(
            ShardedWorkload {
                connections: 8,
                think_time: Duration::from_millis(2),
                seed: 92,
            },
            2,
        );
        assert_eq!(run.sched.submitted, 8);
        assert_eq!(run.sched.completed, 8);
        assert_eq!(run.sched.rejected, 0);
        assert!(run.throughput > 0.0);
    }
}
