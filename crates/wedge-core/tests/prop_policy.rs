//! Property tests for the security-policy lattice (§3.1's subset-only
//! delegation rule) and the resource-accounting extension.
//!
//! The delegation rule is what makes Wedge's compartment tree monotone: "an
//! sthread can only create a child sthread with equal or lesser privileges
//! than its own". These properties check that the rule behaves like a
//! preorder over randomly generated policies — any faithful subset of a
//! parent is accepted, anything that adds or upgrades a grant is rejected —
//! and that the resource accountant never over- or under-counts under
//! arbitrary interleavings of charges and releases.

use proptest::prelude::*;

use wedge_core::resource::{ResourceAccountant, ResourceKind, ResourceLimits};
use wedge_core::syscall::{DomainTransitions, Syscall, SyscallPolicy, ALL_SYSCALLS};
use wedge_core::{FdId, FdProt, MemProt, SecurityPolicy, Tag, Uid};

const TAG_POOL: u64 = 6;
const FD_POOL: u64 = 4;

fn arb_mem_prot() -> impl Strategy<Value = MemProt> {
    prop_oneof![
        Just(MemProt::Read),
        Just(MemProt::ReadWrite),
        Just(MemProt::CopyOnWrite),
    ]
}

fn arb_fd_prot() -> impl Strategy<Value = FdProt> {
    prop_oneof![
        Just(FdProt::Read),
        Just(FdProt::Write),
        Just(FdProt::ReadWrite)
    ]
}

/// A randomly populated (confined) policy over small tag/fd pools.
fn arb_policy() -> impl Strategy<Value = SecurityPolicy> {
    let mem = prop::collection::btree_map(0u64..TAG_POOL, arb_mem_prot(), 0..5);
    let fds = prop::collection::btree_map(0u64..FD_POOL, arb_fd_prot(), 0..4);
    (mem, fds).prop_map(|(mem, fds)| {
        let mut policy = SecurityPolicy::deny_all();
        for (tag, prot) in mem {
            policy.sc_mem_add(Tag(tag), prot);
        }
        for (fd, prot) in fds {
            policy.sc_fd_add(FdId(fd), prot);
        }
        policy
    })
}

fn no_transitions() -> DomainTransitions {
    DomainTransitions::new()
}

/// Derive a child that is a faithful subset of `parent`: keep a random
/// subset of grants, possibly downgrading each to something the parent
/// grant may delegate.
fn subset_child(parent: &SecurityPolicy, keep: &[bool], downgrade: &[bool]) -> SecurityPolicy {
    let mut child = SecurityPolicy::deny_all();
    for (i, (tag, prot)) in parent.mem_grants().iter().enumerate() {
        if !keep.get(i).copied().unwrap_or(true) {
            continue;
        }
        let granted = if downgrade.get(i).copied().unwrap_or(false) {
            // Every protection may delegate Read or CopyOnWrite views.
            MemProt::Read
        } else {
            *prot
        };
        child.sc_mem_add(*tag, granted);
    }
    for (i, (fd, prot)) in parent.fd_grants().iter().enumerate() {
        if !keep.get(i + 8).copied().unwrap_or(true) {
            continue;
        }
        child.sc_fd_add(*fd, *prot);
    }
    child
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every policy validates an exact copy of itself and the empty policy.
    #[test]
    fn policy_accepts_itself_and_the_empty_child(parent in arb_policy()) {
        prop_assert!(parent.validate_child(&parent.clone(), &no_transitions()).is_ok());
        prop_assert!(parent
            .validate_child(&SecurityPolicy::deny_all(), &no_transitions())
            .is_ok());
    }

    /// Any faithful subset (dropping grants, downgrading to read) validates.
    #[test]
    fn policy_accepts_any_faithful_subset(
        parent in arb_policy(),
        keep in prop::collection::vec(any::<bool>(), 12),
        downgrade in prop::collection::vec(any::<bool>(), 12),
    ) {
        let child = subset_child(&parent, &keep, &downgrade);
        prop_assert!(
            parent.validate_child(&child, &no_transitions()).is_ok(),
            "faithful subset was rejected"
        );
    }

    /// Adding a grant the parent does not hold is always rejected.
    #[test]
    fn policy_rejects_grants_the_parent_lacks(
        parent in arb_policy(),
        extra_tag in 0u64..TAG_POOL * 4,
        prot in arb_mem_prot(),
    ) {
        prop_assume!(parent.mem_grant(Tag(extra_tag)).is_none());
        let mut child = SecurityPolicy::deny_all();
        child.sc_mem_add(Tag(extra_tag), prot);
        prop_assert!(parent.validate_child(&child, &no_transitions()).is_err());
    }

    /// Upgrading a read-only or copy-on-write grant to read-write is always
    /// rejected; so is a non-root parent changing uid or filesystem root.
    #[test]
    fn policy_rejects_privilege_escalation(
        parent in arb_policy(),
        uid in 1u32..5000,
    ) {
        for (tag, prot) in parent.mem_grants() {
            if !matches!(prot, MemProt::ReadWrite) {
                let mut child = SecurityPolicy::deny_all();
                child.sc_mem_add(*tag, MemProt::ReadWrite);
                prop_assert!(parent.validate_child(&child, &no_transitions()).is_err());
            }
        }
        let parent_nonroot = parent.clone().with_uid(Uid(uid));
        let child_other = SecurityPolicy::deny_all().with_uid(Uid(uid + 1));
        prop_assert!(parent_nonroot
            .validate_child(&child_other, &no_transitions())
            .is_err());
    }

    /// The delegation preorder is transitive: a subset of a subset is a
    /// subset of the original (checked via validate_child chains).
    #[test]
    fn delegation_is_transitive(
        grandparent in arb_policy(),
        keep1 in prop::collection::vec(any::<bool>(), 12),
        down1 in prop::collection::vec(any::<bool>(), 12),
        keep2 in prop::collection::vec(any::<bool>(), 12),
        down2 in prop::collection::vec(any::<bool>(), 12),
    ) {
        let parent = subset_child(&grandparent, &keep1, &down1);
        let child = subset_child(&parent, &keep2, &down2);
        prop_assert!(grandparent.validate_child(&parent, &no_transitions()).is_ok());
        prop_assert!(parent.validate_child(&child, &no_transitions()).is_ok());
        prop_assert!(
            grandparent.validate_child(&child, &no_transitions()).is_ok(),
            "transitivity violated"
        );
    }

    /// Syscall-policy subsetting composes with the domain-transition table:
    /// a child policy is accepted iff it is a subset or an allowed
    /// transition.
    #[test]
    fn syscall_subsets_and_transitions(
        parent_calls in prop::collection::btree_set(0usize..ALL_SYSCALLS.len(), 0..ALL_SYSCALLS.len()),
        child_calls in prop::collection::btree_set(0usize..ALL_SYSCALLS.len(), 0..ALL_SYSCALLS.len()),
        allow_transition in any::<bool>(),
    ) {
        let to_policy = |name: &str, idxs: &std::collections::BTreeSet<usize>| {
            let calls: Vec<Syscall> = idxs.iter().map(|i| ALL_SYSCALLS[*i]).collect();
            SyscallPolicy::allowing(name, &calls)
        };
        let parent_sys = to_policy("parent_t", &parent_calls);
        let child_sys = to_policy("child_t", &child_calls);
        let is_subset = child_calls.is_subset(&parent_calls);

        let mut parent = SecurityPolicy::deny_all();
        parent.sc_sel_context(parent_sys);
        let mut child = SecurityPolicy::deny_all();
        child.sc_sel_context(child_sys);

        let mut transitions = DomainTransitions::new();
        if allow_transition {
            transitions.allow("parent_t", "child_t");
        }
        let accepted = parent.validate_child(&child, &transitions).is_ok();
        prop_assert_eq!(accepted, is_subset || allow_transition);
    }

    /// The resource accountant never lets usage exceed the limit, never goes
    /// negative, and reports exactly the net of accepted charges minus
    /// releases, for arbitrary operation sequences.
    #[test]
    fn accountant_is_exact_under_arbitrary_sequences(
        limit in 1u64..10_000,
        ops in prop::collection::vec((any::<bool>(), 1u64..2_000), 1..64),
    ) {
        let accountant =
            ResourceAccountant::new(ResourceLimits::unlimited().with_tagged_bytes(limit));
        let mut expected: u64 = 0;
        for (is_charge, amount) in ops {
            if is_charge {
                match accountant.charge(ResourceKind::TaggedBytes, amount) {
                    Ok(()) => {
                        expected += amount;
                        prop_assert!(expected <= limit);
                    }
                    Err(err) => {
                        // A refused charge must actually have been over the
                        // limit, and must not change the books.
                        prop_assert!(expected + amount > limit, "spurious refusal: {err}");
                    }
                }
            } else {
                accountant.release(ResourceKind::TaggedBytes, amount);
                expected = expected.saturating_sub(amount);
            }
            prop_assert_eq!(accountant.usage().get(ResourceKind::TaggedBytes), expected);
            prop_assert_eq!(
                accountant.remaining(ResourceKind::TaggedBytes),
                limit - expected
            );
        }
    }

    /// Unlimited axes never refuse and always report `u64::MAX` headroom.
    #[test]
    fn unlimited_axes_never_refuse(
        charges in prop::collection::vec(1u64..1_000_000, 1..32),
    ) {
        let accountant = ResourceAccountant::new(ResourceLimits::unlimited());
        for amount in charges {
            prop_assert!(accountant.charge(ResourceKind::CpuTicks, amount).is_ok());
            prop_assert_eq!(accountant.remaining(ResourceKind::CpuTicks), u64::MAX);
        }
    }
}
