//! Instrumentation hooks consumed by Crowbar's `cb-log`.
//!
//! The paper's `cb-log` uses Pin to instrument every memory load and store
//! and every function entry/exit. In the reproduction the mediated memory
//! layer *is* the instrumentation point: the simulated kernel invokes an
//! [`AccessSink`] (if one is installed) for every allocation, access,
//! violation and function-boundary event. The sink runs synchronously on
//! the accessing thread, so a tracer can maintain its own shadow call stack
//! per thread — exactly how Crowbar reconstructs backtraces.

use crate::fdtable::FdId;
use crate::tag::{AccessMode, CompartmentId, Tag};

/// Where an access landed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MemRegion {
    /// A tagged-segment access: the tag plus the payload offset of the
    /// allocation it hit.
    Tagged {
        /// The tag of the segment.
        tag: Tag,
        /// Offset of the containing allocation within the segment.
        alloc_offset: usize,
    },
    /// An access to a (snapshot) global variable.
    Global {
        /// The global's name.
        name: String,
    },
    /// A file-descriptor read or write.
    Fd {
        /// The descriptor.
        fd: FdId,
        /// Name of the backing object.
        name: String,
    },
}

/// A memory (or descriptor) access observed by the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemAccessEvent {
    /// The accessing compartment.
    pub compartment: CompartmentId,
    /// Human-readable compartment name.
    pub compartment_name: String,
    /// Where the access landed.
    pub region: MemRegion,
    /// Byte offset within the allocation / global / stream.
    pub offset: usize,
    /// Length of the access in bytes.
    pub len: usize,
    /// Read or write.
    pub mode: AccessMode,
    /// Whether the kernel allowed the access.
    pub allowed: bool,
}

/// An allocation event (`smalloc`, or a redirected `malloc`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocEvent {
    /// The allocating compartment.
    pub compartment: CompartmentId,
    /// The tag allocated from.
    pub tag: Tag,
    /// Payload offset of the new allocation within the segment.
    pub alloc_offset: usize,
    /// Requested size in bytes.
    pub size: usize,
    /// Whether the allocation went to the compartment's private
    /// (untagged-equivalent) segment.
    pub private: bool,
}

/// A function entry or exit, used by Crowbar to maintain shadow backtraces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallEvent {
    /// The compartment whose code crossed the function boundary.
    pub compartment: CompartmentId,
    /// Function name (source-level identifier supplied by the application).
    pub function: String,
    /// `true` for entry, `false` for exit.
    pub entering: bool,
}

/// A protection violation (only distinct from a denied [`MemAccessEvent`]
/// in that it also fires in emulation mode, where the access is permitted
/// but recorded — §3.4's sthread emulation library).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationEvent {
    /// The offending compartment.
    pub compartment: CompartmentId,
    /// Human-readable compartment name.
    pub compartment_name: String,
    /// Where the denied access landed.
    pub region: MemRegion,
    /// Attempted mode.
    pub mode: AccessMode,
    /// Whether emulation mode allowed the access to proceed anyway.
    pub emulated: bool,
}

/// The sink interface Crowbar implements. All methods have default no-op
/// implementations so simple sinks can override only what they need.
///
/// Callbacks run synchronously on the accessing thread, and some (the
/// borrowed-guard read path) run while the kernel holds internal locks: a
/// sink must record and return, never call back into kernel operations
/// (reads, writes, allocations, tag lifecycle) from inside a callback.
pub trait AccessSink: Send + Sync {
    /// A memory, global or descriptor access occurred.
    fn on_access(&self, _event: &MemAccessEvent) {}
    /// A tagged (or private) allocation occurred.
    fn on_alloc(&self, _event: &AllocEvent) {}
    /// A previously allocated buffer was freed.
    fn on_free(&self, _compartment: CompartmentId, _tag: Tag, _alloc_offset: usize) {}
    /// A function boundary was crossed (used for shadow backtraces).
    fn on_call(&self, _event: &CallEvent) {}
    /// A protection violation occurred (denied, or permitted in emulation
    /// mode).
    fn on_violation(&self, _event: &ViolationEvent) {}
}

/// A sink that counts events; useful in tests and as a minimal example of
/// the instrumentation interface.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Number of access events observed.
    pub accesses: std::sync::atomic::AtomicU64,
    /// Number of allocation events observed.
    pub allocs: std::sync::atomic::AtomicU64,
    /// Number of call-boundary events observed.
    pub calls: std::sync::atomic::AtomicU64,
    /// Number of violation events observed.
    pub violations: std::sync::atomic::AtomicU64,
}

impl AccessSink for CountingSink {
    fn on_access(&self, _event: &MemAccessEvent) {
        self.accesses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn on_alloc(&self, _event: &AllocEvent) {
        self.allocs
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn on_call(&self, _event: &CallEvent) {
        self.calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn on_violation(&self, _event: &ViolationEvent) {
        self.violations
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn counting_sink_counts() {
        let sink = CountingSink::default();
        sink.on_access(&MemAccessEvent {
            compartment: CompartmentId(1),
            compartment_name: "x".into(),
            region: MemRegion::Global { name: "g".into() },
            offset: 0,
            len: 4,
            mode: AccessMode::Read,
            allowed: true,
        });
        sink.on_call(&CallEvent {
            compartment: CompartmentId(1),
            function: "f".into(),
            entering: true,
        });
        assert_eq!(sink.accesses.load(Ordering::Relaxed), 1);
        assert_eq!(sink.calls.load(Ordering::Relaxed), 1);
        assert_eq!(sink.allocs.load(Ordering::Relaxed), 0);
    }
}
