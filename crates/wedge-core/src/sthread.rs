//! Sthreads: the compartment API application code programs against.
//!
//! [`SthreadCtx`] is the reproduction's stand-in for "executing inside a
//! compartment": it names the current compartment and forwards every
//! privileged operation (tagged-memory access, descriptor I/O, syscalls,
//! sthread creation, callgate invocation) to the simulated kernel, which
//! checks the compartment's policy. The API mirrors Table 1 of the paper:
//! `sthread_create`/`sthread_join`, `tag_new`/`tag_delete`,
//! `smalloc`/`sfree`, `smalloc_on`/`smalloc_off`,
//! `BOUNDARY_VAR`/`BOUNDARY_TAG`, `sc_*` policy calls (on
//! [`crate::SecurityPolicy`]) and `cgate`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

use parking_lot::Mutex;

use wedge_telemetry::trace;

use crate::callgate::{downcast_output, CgEntryId, CgInput, CgOutput, TrustedArg};
use crate::error::WedgeError;
use crate::fdtable::FdId;
use crate::kernel::{ChildKind, Kernel, MemReadGuard, PermCache, RecycledWorker};
use crate::memory::SBuf;
use crate::policy::{SecurityPolicy, Uid};
use crate::syscall::Syscall;
use crate::tag::{CompartmentId, MemProt, Tag};

/// Extract a readable message from a panic payload (shared by sthread
/// joins, recycled workers and the `wedge-sched` scheduler).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Marks a compartment as exited when the sthread body finishes or unwinds.
struct ExitGuard {
    kernel: Arc<Kernel>,
    id: CompartmentId,
}

impl Drop for ExitGuard {
    fn drop(&mut self) {
        self.kernel.compartment_exited(self.id);
    }
}

/// The execution context of a compartment (an sthread or a callgate
/// activation).
#[derive(Clone)]
pub struct SthreadCtx {
    kernel: Arc<Kernel>,
    id: CompartmentId,
    name: String,
    /// The `smalloc_on` redirection state (per sthread, as in the paper).
    smalloc_redirect: Arc<Mutex<Option<Tag>>>,
    /// Per-sthread permission cache (tag → `MemProt`, fd → `FdProt`),
    /// revalidated against the compartment's policy epoch. Shared by clones
    /// of the same context — they name the same compartment, so sharing
    /// just warms the cache faster.
    perm_cache: Arc<Mutex<PermCache>>,
}

impl std::fmt::Debug for SthreadCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SthreadCtx")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish()
    }
}

impl SthreadCtx {
    pub(crate) fn new(kernel: Arc<Kernel>, id: CompartmentId, name: &str) -> Self {
        let perm_cache = Arc::new(Mutex::new(PermCache::new()));
        kernel.adopt_cache(&perm_cache);
        SthreadCtx {
            kernel,
            id,
            name: name.to_string(),
            smalloc_redirect: Arc::new(Mutex::new(None)),
            perm_cache,
        }
    }

    /// This compartment's identifier.
    pub fn id(&self) -> CompartmentId {
        self.id
    }

    /// This compartment's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The simulated kernel this compartment belongs to.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The compartment's current policy as stored by the kernel.
    pub fn policy(&self) -> SecurityPolicy {
        self.kernel
            .policy_of(self.id)
            .expect("compartment must exist while its ctx is alive")
    }

    /// The uid this compartment currently runs as.
    pub fn uid(&self) -> Uid {
        self.policy().uid
    }

    // ------------------------------------------------------------------
    // Tagged memory
    // ------------------------------------------------------------------

    /// `tag_new()`: create a tag (a fresh or recycled memory segment). The
    /// creating compartment is granted read-write access.
    pub fn tag_new(&self) -> Result<Tag, WedgeError> {
        self.kernel.tag_new(self.id)
    }

    /// `tag_delete()`: delete a tag and recycle its segment.
    pub fn tag_delete(&self, tag: Tag) -> Result<(), WedgeError> {
        self.kernel.tag_delete(self.id, tag)
    }

    /// `smalloc()`: allocate `size` bytes from the segment with `tag`.
    pub fn smalloc(&self, size: usize, tag: Tag) -> Result<SBuf, WedgeError> {
        self.kernel
            .smalloc_cached(self.id, size, tag, Some(&self.perm_cache))
    }

    /// `sfree()`: free a buffer obtained from `smalloc` / `malloc`.
    pub fn sfree(&self, buf: &SBuf) -> Result<(), WedgeError> {
        self.kernel.sfree(self.id, buf, Some(&self.perm_cache))?;
        self.kernel.emit_free(self.id, buf.tag, buf.offset);
        Ok(())
    }

    /// `malloc()`: the legacy allocation entry point. If `smalloc_on` is
    /// active the allocation is redirected to the designated tag; otherwise
    /// it goes to the compartment's private (untagged) segment, which can
    /// never be granted to another compartment.
    pub fn malloc(&self, size: usize) -> Result<SBuf, WedgeError> {
        let redirect = *self.smalloc_redirect.lock();
        match redirect {
            Some(tag) => self.smalloc(size, tag),
            None => self
                .kernel
                .private_alloc(self.id, size, Some(&self.perm_cache)),
        }
    }

    /// `smalloc_on()`: redirect subsequent `malloc` calls to `tag`.
    pub fn smalloc_on(&self, tag: Tag) {
        *self.smalloc_redirect.lock() = Some(tag);
    }

    /// `smalloc_off()`: stop redirecting `malloc`.
    pub fn smalloc_off(&self) {
        *self.smalloc_redirect.lock() = None;
    }

    /// Is `malloc` redirection currently active, and to which tag?
    pub fn smalloc_state(&self) -> Option<Tag> {
        *self.smalloc_redirect.lock()
    }

    /// Read `len` bytes at `offset` within a tagged buffer.
    #[inline]
    pub fn read(&self, buf: &SBuf, offset: usize, len: usize) -> Result<Vec<u8>, WedgeError> {
        self.kernel
            .mem_read_vec(self.id, buf, offset, len, Some(&self.perm_cache))
    }

    /// Read the whole buffer.
    pub fn read_all(&self, buf: &SBuf) -> Result<Vec<u8>, WedgeError> {
        self.read(buf, 0, buf.len)
    }

    /// Zero-copy read: fill `dst` from the tagged buffer starting at
    /// `offset`. With a warm permission cache and no tracer installed this
    /// performs no heap allocation — the fast path the `fast_path` bench
    /// measures.
    #[inline]
    pub fn read_into(&self, buf: &SBuf, offset: usize, dst: &mut [u8]) -> Result<(), WedgeError> {
        self.kernel
            .mem_read_into(self.id, buf, offset, dst, Some(&self.perm_cache))
    }

    /// Borrowed zero-copy read: the returned guard dereferences to the
    /// buffer's bytes without copying them out of kernel memory. The guard
    /// holds the segment shard's read lock — keep it short-lived, and make
    /// no other kernel calls from this thread while holding it (writes,
    /// allocations, frees, tag lifecycle, scrubs, even further reads): tags
    /// hash across 16 shards, so any of those can collide with this shard's
    /// lock and self-deadlock. Read, drop the guard, then continue.
    pub fn read_guard(&self, buf: &SBuf) -> Result<MemReadGuard<'_>, WedgeError> {
        self.kernel
            .mem_read_guard(self.id, buf, 0, buf.len, Some(&self.perm_cache))
    }

    /// Write `data` at `offset` within a tagged buffer.
    pub fn write(&self, buf: &SBuf, offset: usize, data: &[u8]) -> Result<(), WedgeError> {
        self.kernel
            .mem_write_cached(self.id, buf, offset, data, Some(&self.perm_cache))
    }

    /// Allocate a tagged buffer and initialise it with `data`.
    pub fn smalloc_init(&self, tag: Tag, data: &[u8]) -> Result<SBuf, WedgeError> {
        let buf = self.smalloc(data.len().max(1), tag)?;
        if !data.is_empty() {
            self.write(&buf, 0, data)?;
        }
        Ok(buf)
    }

    // ------------------------------------------------------------------
    // Globals / boundary variables
    // ------------------------------------------------------------------

    /// Read a snapshot global (every compartment holds a COW view).
    pub fn global_read(&self, name: &str) -> Result<Vec<u8>, WedgeError> {
        self.kernel
            .global_read(self.id, name, Some(&self.perm_cache))
    }

    /// Write this compartment's COW view of a snapshot global.
    pub fn global_write(&self, name: &str, value: &[u8]) -> Result<(), WedgeError> {
        self.kernel
            .global_write(self.id, name, value, Some(&self.perm_cache))
    }

    /// `BOUNDARY_VAR`: declare a global protected by the boundary tag
    /// `boundary_id` instead of living in the default snapshot.
    pub fn boundary_var(
        &self,
        name: &str,
        initial: &[u8],
        boundary_id: u32,
    ) -> Result<SBuf, WedgeError> {
        self.kernel
            .boundary_var(self.id, name, initial, boundary_id)
    }

    /// `BOUNDARY_TAG`: the tag protecting globals declared with
    /// `boundary_id`.
    pub fn boundary_tag(&self, boundary_id: u32) -> Result<Tag, WedgeError> {
        self.kernel.boundary_tag(boundary_id)
    }

    /// The tagged buffer behind a boundary global.
    pub fn boundary_buf(&self, name: &str) -> Result<SBuf, WedgeError> {
        self.kernel.boundary_buf(name)
    }

    // ------------------------------------------------------------------
    // File descriptors and syscalls
    // ------------------------------------------------------------------

    /// Create a file-backed descriptor; the creator gets read-write access.
    pub fn fd_create_file(&self, name: &str, data: &[u8]) -> Result<FdId, WedgeError> {
        self.kernel.fd_create_file(self.id, name, data.to_vec())
    }

    /// Create a stream-backed descriptor; the creator gets read-write
    /// access.
    pub fn fd_create_stream(&self, name: &str) -> Result<FdId, WedgeError> {
        self.kernel.fd_create_stream(self.id, name)
    }

    /// Read up to `len` bytes from a descriptor.
    pub fn fd_read(&self, fd: FdId, len: usize) -> Result<Vec<u8>, WedgeError> {
        self.kernel
            .fd_read_cached(self.id, fd, len, Some(&self.perm_cache))
    }

    /// Read everything currently available on a descriptor.
    pub fn fd_read_all(&self, fd: FdId) -> Result<Vec<u8>, WedgeError> {
        self.fd_read(fd, usize::MAX / 2)
    }

    /// Write bytes to a descriptor.
    pub fn fd_write(&self, fd: FdId, data: &[u8]) -> Result<usize, WedgeError> {
        self.kernel
            .fd_write_cached(self.id, fd, data, Some(&self.perm_cache))
    }

    /// Check a system call against this compartment's allow-list.
    pub fn syscall(&self, syscall: Syscall) -> Result<(), WedgeError> {
        self.kernel.syscall_check(self.id, syscall)
    }

    // ------------------------------------------------------------------
    // Crowbar instrumentation helpers
    // ------------------------------------------------------------------

    /// Record a function entry for Crowbar's shadow backtraces; the returned
    /// guard records the exit when dropped.
    pub fn trace_fn(&self, function: &str) -> FrameGuard {
        self.kernel.emit_call(self.id, function, true);
        FrameGuard {
            ctx: self.clone(),
            function: function.to_string(),
        }
    }

    // ------------------------------------------------------------------
    // Sthreads
    // ------------------------------------------------------------------

    /// `sthread_create()`: spawn a new compartment running `body` under
    /// `policy`. The policy must not exceed this compartment's privileges.
    pub fn sthread_create<R, F>(
        &self,
        name: &str,
        policy: &SecurityPolicy,
        body: F,
    ) -> Result<SthreadHandle<R>, WedgeError>
    where
        R: Send + 'static,
        F: FnOnce(&SthreadCtx) -> R + Send + 'static,
    {
        let child_id = self
            .kernel
            .register_child(self.id, name, policy, ChildKind::Sthread)?;
        let child_ctx = SthreadCtx::new(self.kernel.clone(), child_id, name);
        let kernel = self.kernel.clone();
        // Request traces follow the work: a child sthread spawned while
        // serving a traced request inherits the caller's ambient trace.
        let parent_trace = trace::current();
        let join = thread::spawn(move || {
            let _trace = parent_trace.map(trace::push);
            let _guard = ExitGuard {
                kernel,
                id: child_id,
            };
            body(&child_ctx)
        });
        Ok(SthreadHandle {
            id: child_id,
            join: Some(join),
        })
    }

    /// Change another compartment's uid / filesystem root. Only permitted if
    /// this compartment runs as root — the idiom used by authentication
    /// callgates to "log the user in".
    pub fn transition_identity(
        &self,
        target: CompartmentId,
        new_uid: Uid,
        new_fs_root: Option<&str>,
    ) -> Result<(), WedgeError> {
        self.kernel
            .transition_identity(self.id, target, new_uid, new_fs_root)
    }

    /// Add a runtime memory grant to another compartment's policy
    /// (`policy_add`). This compartment must itself hold a grant on `tag`
    /// that allows delegating `prot` (or be unconfined); private tags can
    /// never be granted. The target's permission cache revalidates on its
    /// next access.
    pub fn grant_mem(
        &self,
        target: CompartmentId,
        tag: Tag,
        prot: MemProt,
    ) -> Result<(), WedgeError> {
        self.kernel.policy_add(self.id, target, tag, prot)
    }

    /// Revoke a memory grant from another compartment's policy
    /// (`policy_del`). Permitted for the unconfined root, the target's
    /// parent, or the target itself. Once this returns, no access that
    /// starts afterwards can succeed through a stale cached grant — the
    /// epoch bump forces every per-sthread cache to revalidate.
    pub fn revoke_mem(&self, target: CompartmentId, tag: Tag) -> Result<(), WedgeError> {
        self.kernel.policy_del(self.id, target, tag)
    }

    // ------------------------------------------------------------------
    // Callgates
    // ------------------------------------------------------------------

    /// `cgate()`: invoke a callgate this compartment has been granted. The
    /// callgate runs as a separate compartment with *its own* permissions
    /// (plus `extra` argument-reading grants, which must be a subset of the
    /// caller's); the caller blocks until it returns.
    pub fn cgate(
        &self,
        entry: CgEntryId,
        extra: &SecurityPolicy,
        input: CgInput,
    ) -> Result<CgOutput, WedgeError> {
        let prepared = self.kernel.cgate_prepare(self.id, entry, extra, false)?;
        let gate_name = self
            .kernel
            .cgate_name(entry)
            .unwrap_or_else(|| format!("entry{}", entry.0));
        let act_name = format!("cgate:{gate_name}");
        let act_id = self.kernel.register_child(
            prepared.creator,
            &act_name,
            &prepared.policy,
            ChildKind::Activation,
        )?;
        let act_ctx = SthreadCtx::new(self.kernel.clone(), act_id, &act_name);
        let entry_fn = prepared.entry_fn;
        let trusted = prepared.trusted;
        let kernel = self.kernel.clone();
        let parent_trace = trace::current();
        let join = thread::spawn(move || {
            let _trace = parent_trace.map(trace::push);
            let _guard = ExitGuard { kernel, id: act_id };
            entry_fn(&act_ctx, trusted.as_ref(), input)
        });
        match join.join() {
            Ok(result) => result,
            Err(payload) => Err(WedgeError::SthreadPanicked(panic_message(payload))),
        }
    }

    /// Invoke a callgate and downcast its result to `T`.
    pub fn cgate_expect<T: std::any::Any>(
        &self,
        entry: CgEntryId,
        extra: &SecurityPolicy,
        input: CgInput,
    ) -> Result<T, WedgeError> {
        downcast_output(self.cgate(entry, extra, input)?)
    }

    /// Invoke a *recycled* callgate: the first invocation creates a
    /// long-lived worker compartment; later invocations reuse it, paying
    /// only a message round trip (the paper's futex fast path). Extra
    /// argument grants widen the worker's policy monotonically — the
    /// isolation-for-throughput trade-off §3.3 warns about.
    pub fn cgate_recycled(
        &self,
        entry: CgEntryId,
        extra: &SecurityPolicy,
        input: CgInput,
    ) -> Result<CgOutput, WedgeError> {
        let prepared = self.kernel.cgate_prepare(self.id, entry, extra, true)?;
        // Recycled workers are keyed by (creator, entry): as in the paper,
        // a recycled callgate is a long-lived sthread that successive
        // callers — potentially acting for different principals — reuse.
        let worker_key = prepared.creator;
        let worker = match self.kernel.recycled_worker(worker_key, entry) {
            Some(worker) => {
                self.kernel.widen_policy(worker.activation, extra);
                worker
            }
            None => {
                let gate_name = self
                    .kernel
                    .cgate_name(entry)
                    .unwrap_or_else(|| format!("entry{}", entry.0));
                let act_name = format!("recycled:{gate_name}");
                let act_id = self.kernel.register_child(
                    prepared.creator,
                    &act_name,
                    &prepared.policy,
                    ChildKind::Activation,
                )?;
                let act_ctx = SthreadCtx::new(self.kernel.clone(), act_id, &act_name);
                let worker = spawn_worker_loop(
                    self.kernel.clone(),
                    act_ctx,
                    prepared.entry_fn.clone(),
                    prepared.trusted.clone(),
                );
                self.kernel
                    .store_recycled_worker(worker_key, entry, worker.clone());
                worker
            }
        };
        let _serialise = worker.call_lock.lock();
        worker
            .tx
            .send((input, trace::current()))
            .map_err(|_| WedgeError::InvalidOperation("recycled callgate worker exited".into()))?;
        worker
            .rx
            .recv()
            .map_err(|_| WedgeError::InvalidOperation("recycled callgate worker exited".into()))?
    }

    /// Invoke a recycled callgate and downcast its result to `T`.
    pub fn cgate_recycled_expect<T: std::any::Any>(
        &self,
        entry: CgEntryId,
        extra: &SecurityPolicy,
        input: CgInput,
    ) -> Result<T, WedgeError> {
        downcast_output(self.cgate_recycled(entry, extra, input)?)
    }

    /// Spawn a *pooled* recycled worker: a long-lived sthread running
    /// `entry`'s code under `policy`, owned by the caller instead of being
    /// stored in the kernel's per-`(creator, entry)` slot. Pools of these
    /// workers are what `wedge-sched` checks out per connection.
    ///
    /// An **unconfined** caller plays the role a `sc_cgate_add` creator
    /// plays for ordinary callgates: it chooses the worker's policy
    /// (subset-validated) and the kernel-held trusted argument. A
    /// **confined** caller may only pre-warm workers for entries it was
    /// granted via `sc_cgate_add`, and the worker then runs with the
    /// *instance's* creator-fixed policy and trusted argument — the caller
    /// cannot substitute its own (callers can neither read nor replace a
    /// trusted argument, §3.3), so `policy` must be `deny_all` and `trusted`
    /// must be `None` on that path. Unlike [`SthreadCtx::cgate_recycled`],
    /// nothing here widens the worker's policy per call — a pooled worker's
    /// privileges are fixed at pre-warm time.
    pub fn recycled_worker_spawn(
        &self,
        entry: CgEntryId,
        policy: &SecurityPolicy,
        trusted: Option<TrustedArg>,
    ) -> Result<RecycledWorkerHandle, WedgeError> {
        let entry_fn = self
            .kernel
            .cgate_entry_fn(entry)
            .ok_or(WedgeError::UnknownCallgate(entry))?;
        let gate_name = self
            .kernel
            .cgate_name(entry)
            .unwrap_or_else(|| format!("entry{}", entry.0));
        let act_name = format!("pooled:{gate_name}");
        let act_id;
        let worker_trusted;
        if self.policy().is_unconfined() {
            // The caller is the trusted creator: its policy choice is
            // subset-validated like any child sthread, and it supplies the
            // trusted argument.
            act_id = self
                .kernel
                .register_child(self.id, &act_name, policy, ChildKind::Sthread)?;
            worker_trusted = trusted;
        } else {
            // A confined caller runs the gate exactly as granted: the
            // kernel-stored instance fixes both policy and trusted argument.
            let prepared =
                self.kernel
                    .cgate_prepare(self.id, entry, &SecurityPolicy::deny_all(), false)?;
            let baseline = SecurityPolicy::deny_all();
            let policy_deviates = !policy.mem_grants().is_empty()
                || !policy.fd_grants().is_empty()
                || !policy.callgate_grants().is_empty()
                || policy.is_unconfined()
                || policy.uid != baseline.uid
                || policy.fs_root != baseline.fs_root
                || policy.syscalls != baseline.syscalls;
            if trusted.is_some() || policy_deviates {
                return Err(WedgeError::PrivilegeEscalation {
                    detail: "pooled workers for a granted gate run with the creator's \
                             policy and trusted argument; pass deny_all and None"
                        .to_string(),
                });
            }
            act_id = self.kernel.register_child(
                prepared.creator,
                &act_name,
                &prepared.policy,
                ChildKind::PooledWorker,
            )?;
            worker_trusted = prepared.trusted;
        }
        let act_ctx = SthreadCtx::new(self.kernel.clone(), act_id, &act_name);
        // The stored policy (after uid/fs_root inheritance) is the scrub
        // baseline: checkin resets the worker to exactly this.
        let baseline = self.kernel.policy_of(act_id)?;
        let worker = spawn_worker_loop(self.kernel.clone(), act_ctx, entry_fn, worker_trusted);
        Ok(RecycledWorkerHandle {
            kernel: self.kernel.clone(),
            entry,
            baseline,
            worker,
        })
    }
}

/// Start the long-lived thread behind a recycled worker: a loop that
/// receives inputs, runs the entry function inside the activation
/// compartment (catching panics), and sends results back.
fn spawn_worker_loop(
    kernel: Arc<Kernel>,
    act_ctx: SthreadCtx,
    entry_fn: crate::callgate::CallgateFn,
    trusted: Option<TrustedArg>,
) -> Arc<RecycledWorker> {
    let act_id = act_ctx.id();
    let (in_tx, in_rx) =
        crossbeam::channel::unbounded::<(CgInput, Option<wedge_telemetry::ActiveTrace>)>();
    let (out_tx, out_rx) = crossbeam::channel::unbounded::<Result<CgOutput, WedgeError>>();
    let loop_kernel = kernel.clone();
    thread::spawn(move || {
        while let Ok((input, caller_trace)) = in_rx.recv() {
            // Each invocation runs under the *invoking* request's trace —
            // the worker thread itself is long-lived and trace-less.
            let _trace = caller_trace.map(trace::push);
            let result = catch_unwind(AssertUnwindSafe(|| {
                entry_fn(&act_ctx, trusted.as_ref(), input)
            }))
            .unwrap_or_else(|payload| Err(WedgeError::SthreadPanicked(panic_message(payload))));
            if out_tx.send(result).is_err() {
                break;
            }
        }
        loop_kernel.compartment_exited(act_id);
    });
    Arc::new(RecycledWorker {
        call_lock: Mutex::new(()),
        tx: in_tx,
        rx: out_rx,
        activation: act_id,
    })
}

/// Owner handle to a pooled recycled worker (see
/// [`SthreadCtx::recycled_worker_spawn`]). Dropping the handle shuts the
/// worker down: its input channel closes, the loop exits, and the kernel
/// marks the activation compartment as exited.
pub struct RecycledWorkerHandle {
    kernel: Arc<Kernel>,
    entry: CgEntryId,
    /// The spawn-time policy [`RecycledWorkerHandle::scrub`] resets to.
    baseline: SecurityPolicy,
    worker: Arc<RecycledWorker>,
}

impl std::fmt::Debug for RecycledWorkerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecycledWorkerHandle")
            .field("entry", &self.entry)
            .field("activation", &self.worker.activation)
            .finish()
    }
}

impl RecycledWorkerHandle {
    /// The worker's long-lived activation compartment.
    pub fn activation(&self) -> CompartmentId {
        self.worker.activation
    }

    /// The callgate entry this worker runs.
    pub fn entry(&self) -> CgEntryId {
        self.entry
    }

    /// Invoke the worker: send `input`, block for the result. Concurrent
    /// invocations of the same worker are serialised, exactly like the
    /// single-slot recycled fast path.
    pub fn invoke(&self, input: CgInput) -> Result<CgOutput, WedgeError> {
        let _serialise = self.worker.call_lock.lock();
        self.kernel.note_recycled_invocation();
        self.worker
            .tx
            .send((input, trace::current()))
            .map_err(|_| WedgeError::InvalidOperation("pooled worker exited".into()))?;
        self.worker
            .rx
            .recv()
            .map_err(|_| WedgeError::InvalidOperation("pooled worker exited".into()))?
    }

    /// Invoke the worker and downcast its result to `T`.
    pub fn invoke_expect<T: std::any::Any>(&self, input: CgInput) -> Result<T, WedgeError> {
        downcast_output(self.invoke(input)?)
    }

    /// Zeroize the worker's per-principal state between principals: every
    /// segment it created (private scratch *and* tags from `tag_new`) is
    /// wiped and recycled, every copy-on-write view it accumulated is
    /// dropped, and its policy is reset to the spawn-time baseline (undoing
    /// the implicit grants `tag_new`/`fd_create` add). This is the
    /// pool-checkin mitigation for the §3.3 recycled-callgate residue leak.
    pub fn scrub(&self) -> Result<(), WedgeError> {
        // Serialise against invoke(): scrubbing under a running gate would
        // either fault the gate (segments vanish mid-call) or, worse, let
        // the gate stash post-scrub residue for the next principal.
        let _serialise = self.worker.call_lock.lock();
        self.kernel
            .scrub_compartment(self.worker.activation, &self.baseline)
    }
}

/// RAII guard recording a function exit for Crowbar backtraces.
pub struct FrameGuard {
    ctx: SthreadCtx,
    function: String,
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        self.ctx
            .kernel
            .emit_call(self.ctx.id, &self.function, false);
    }
}

/// Handle to a running sthread; `join` retrieves the body's return value
/// (the analogue of `sthread_join`).
pub struct SthreadHandle<R> {
    id: CompartmentId,
    join: Option<thread::JoinHandle<R>>,
}

impl<R> SthreadHandle<R> {
    /// The spawned compartment's id.
    pub fn id(&self) -> CompartmentId {
        self.id
    }

    /// Wait for the sthread to finish and collect its return value. A panic
    /// in the sthread body surfaces as [`WedgeError::SthreadPanicked`].
    pub fn join(mut self) -> Result<R, WedgeError> {
        let handle = self
            .join
            .take()
            .ok_or_else(|| WedgeError::InvalidOperation("sthread already joined".into()))?;
        handle
            .join()
            .map_err(|payload| WedgeError::SthreadPanicked(panic_message(payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgate::typed_entry;
    use crate::callgate::TrustedArg;
    use crate::policy::SecurityPolicy;
    use crate::tag::MemProt;
    use crate::Wedge;

    #[test]
    fn default_deny_child_cannot_read_parents_tag() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let tag = root.tag_new().unwrap();
        let secret = root.smalloc_init(tag, b"rsa-private-key").unwrap();

        let handle = root
            .sthread_create("worker", &SecurityPolicy::deny_all(), move |ctx| {
                ctx.read(&secret, 0, 15)
            })
            .unwrap();
        let result = handle.join().unwrap();
        assert!(matches!(result, Err(WedgeError::ProtectionFault { .. })));
    }

    #[test]
    fn granted_child_reads_but_cannot_escalate_to_write() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let tag = root.tag_new().unwrap();
        let buf = root.smalloc_init(tag, b"configuration").unwrap();

        let mut policy = SecurityPolicy::deny_all();
        policy.sc_mem_add(tag, MemProt::Read);
        let handle = root
            .sthread_create("reader", &policy, move |ctx| {
                let read = ctx.read(&buf, 0, 13)?;
                let write_attempt = ctx.write(&buf, 0, b"overwritten!!");
                Ok::<_, WedgeError>((read, write_attempt.is_err()))
            })
            .unwrap();
        let (read, write_denied) = handle.join().unwrap().unwrap();
        assert_eq!(read, b"configuration");
        assert!(write_denied);
    }

    #[test]
    fn child_cannot_spawn_grandchild_with_more_privileges() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let tag = root.tag_new().unwrap();

        let mut child_policy = SecurityPolicy::deny_all();
        child_policy.sc_mem_add(tag, MemProt::Read);
        let handle = root
            .sthread_create("child", &child_policy, move |ctx| {
                let mut grandchild = SecurityPolicy::deny_all();
                grandchild.sc_mem_add(tag, MemProt::ReadWrite);
                ctx.sthread_create("grandchild", &grandchild, |_ctx| ())
                    .map(|_| ())
            })
            .unwrap();
        let result = handle.join().unwrap();
        assert!(matches!(
            result,
            Err(WedgeError::PrivilegeEscalation { .. })
        ));
    }

    #[test]
    fn sthread_panics_are_reported() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let handle = root
            .sthread_create("crasher", &SecurityPolicy::deny_all(), |_ctx| {
                panic!("exploit crashed the worker");
            })
            .unwrap();
        match handle.join() {
            Err(WedgeError::SthreadPanicked(msg)) => assert!(msg.contains("exploit")),
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn malloc_respects_smalloc_on_redirection() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let tag = root.tag_new().unwrap();

        // Without redirection: private allocation.
        let private = root.malloc(16).unwrap();
        assert!(root.kernel().is_private_tag(private.tag));

        // With redirection: allocation lands in the designated tag.
        root.smalloc_on(tag);
        let redirected = root.malloc(16).unwrap();
        assert_eq!(redirected.tag, tag);
        root.smalloc_off();
        let private_again = root.malloc(16).unwrap();
        assert!(root.kernel().is_private_tag(private_again.tag));
        assert_eq!(root.smalloc_state(), None);
    }

    #[test]
    fn callgate_runs_with_its_own_privileges() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let key_tag = root.tag_new().unwrap();
        let key = root.smalloc_init(key_tag, b"private-key-bytes").unwrap();

        // The callgate may read the key and returns only its length.
        let entry = wedge.kernel().cgate_register(
            "key_len",
            typed_entry(move |ctx, trusted, _input: ()| {
                let key_buf = trusted
                    .and_then(|t| t.downcast::<SBuf>())
                    .copied()
                    .expect("trusted arg is the key buffer");
                let key = ctx.read_all(&key_buf)?;
                Ok(key.len())
            }),
        );

        let mut cg_policy = SecurityPolicy::deny_all();
        cg_policy.sc_mem_add(key_tag, MemProt::Read);
        let mut worker_policy = SecurityPolicy::deny_all();
        worker_policy.sc_cgate_add(entry, cg_policy, Some(TrustedArg::new(key)));

        let handle = root
            .sthread_create("worker", &worker_policy, move |ctx| {
                // The worker itself cannot read the key...
                let direct = ctx.read(&key, 0, 5);
                // ...but may learn its length through the callgate.
                let len =
                    ctx.cgate_expect::<usize>(entry, &SecurityPolicy::deny_all(), Box::new(()))?;
                Ok::<_, WedgeError>((direct.is_err(), len))
            })
            .unwrap();
        let (direct_denied, len) = handle.join().unwrap().unwrap();
        assert!(direct_denied);
        assert_eq!(len, b"private-key-bytes".len());
    }

    #[test]
    fn callgate_invocation_requires_a_grant() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let entry = wedge
            .kernel()
            .cgate_register("noop", typed_entry(|_ctx, _t, _i: ()| Ok(0u32)));

        // Worker policy does NOT include the callgate.
        let handle = root
            .sthread_create("worker", &SecurityPolicy::deny_all(), move |ctx| {
                ctx.cgate(entry, &SecurityPolicy::deny_all(), Box::new(()))
                    .map(|_| ())
            })
            .unwrap();
        assert!(matches!(
            handle.join().unwrap(),
            Err(WedgeError::CallgateDenied { .. })
        ));
    }

    #[test]
    fn extra_argument_grants_must_be_subset_of_caller() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let arg_tag = root.tag_new().unwrap();
        let secret_tag = root.tag_new().unwrap();
        let _secret = root.smalloc_init(secret_tag, b"secret").unwrap();

        let entry = wedge
            .kernel()
            .cgate_register("consume", typed_entry(|_ctx, _t, _i: ()| Ok(())));

        let mut worker_policy = SecurityPolicy::deny_all();
        worker_policy.sc_mem_add(arg_tag, MemProt::ReadWrite);
        worker_policy.sc_cgate_add(entry, SecurityPolicy::deny_all(), None);

        let handle = root
            .sthread_create("worker", &worker_policy, move |ctx| {
                // Granting the callgate access to a tag the worker itself
                // cannot touch must be refused.
                let mut extra = SecurityPolicy::deny_all();
                extra.sc_mem_add(secret_tag, MemProt::Read);
                let escalate = ctx.cgate(entry, &extra, Box::new(()));
                // Granting access to the worker's own argument tag is fine.
                let mut ok_extra = SecurityPolicy::deny_all();
                ok_extra.sc_mem_add(arg_tag, MemProt::Read);
                let ok = ctx.cgate(entry, &ok_extra, Box::new(()));
                (escalate.is_err(), ok.is_ok())
            })
            .unwrap();
        let (escalation_refused, legitimate_ok) = handle.join().unwrap();
        assert!(escalation_refused);
        assert!(legitimate_ok);
    }

    #[test]
    fn recycled_callgates_reuse_a_worker() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let entry = wedge
            .kernel()
            .cgate_register("increment", typed_entry(|_ctx, _t, n: u64| Ok(n + 1)));
        let mut worker_policy = SecurityPolicy::deny_all();
        worker_policy.sc_cgate_add(entry, SecurityPolicy::deny_all(), None);

        let handle = root
            .sthread_create("worker", &worker_policy, move |ctx| {
                let mut results = Vec::new();
                for i in 0..5u64 {
                    results.push(
                        ctx.cgate_recycled_expect::<u64>(
                            entry,
                            &SecurityPolicy::deny_all(),
                            Box::new(i),
                        )
                        .unwrap(),
                    );
                }
                results
            })
            .unwrap();
        assert_eq!(handle.join().unwrap(), vec![1, 2, 3, 4, 5]);
        let stats = wedge.kernel().stats();
        assert_eq!(stats.recycled_invocations, 5);
        // Only one activation compartment was ever created for the gate.
        assert_eq!(stats.callgate_invocations, 1);
    }

    #[test]
    fn trusted_argument_is_not_forgeable_by_caller() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let entry = wedge.kernel().cgate_register(
            "reveal_trusted",
            typed_entry(|_ctx, trusted, _caller_input: String| {
                Ok(trusted
                    .and_then(|t| t.downcast::<String>())
                    .cloned()
                    .unwrap_or_default())
            }),
        );
        let mut worker_policy = SecurityPolicy::deny_all();
        worker_policy.sc_cgate_add(
            entry,
            SecurityPolicy::deny_all(),
            Some(TrustedArg::new(String::from("creator-chosen"))),
        );
        let handle = root
            .sthread_create("worker", &worker_policy, move |ctx| {
                // The caller supplies its own input, but the trusted value the
                // callgate sees is the creator's, fetched from the kernel.
                ctx.cgate_expect::<String>(
                    entry,
                    &SecurityPolicy::deny_all(),
                    Box::new("attacker-chosen".to_string()),
                )
                .unwrap()
            })
            .unwrap();
        assert_eq!(handle.join().unwrap(), "creator-chosen");
    }

    #[test]
    fn pooled_worker_invokes_and_scrub_erases_private_residue() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let stash: Arc<parking_lot::Mutex<Option<crate::SBuf>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let stash_for_gate = stash.clone();
        let entry = wedge.kernel().cgate_register(
            "stash_or_dump",
            typed_entry(move |ctx, _t, input: Vec<u8>| {
                let mut stash = stash_for_gate.lock();
                if input.is_empty() {
                    // Dump whatever the previous invocation left in scratch.
                    return Ok(match stash.as_ref() {
                        Some(prev) => ctx.read_all(prev).unwrap_or_default(),
                        None => Vec::new(),
                    });
                }
                let scratch = ctx.malloc(input.len())?;
                ctx.write(&scratch, 0, &input)?;
                *stash = Some(scratch);
                Ok(Vec::<u8>::new())
            }),
        );

        let worker = root
            .recycled_worker_spawn(entry, &SecurityPolicy::deny_all(), None)
            .unwrap();
        worker
            .invoke_expect::<Vec<u8>>(Box::new(b"principal-a secret".to_vec()))
            .unwrap();
        // Without a scrub the residue is visible (the §3.3 trade-off).
        let leaked = worker
            .invoke_expect::<Vec<u8>>(Box::new(Vec::<u8>::new()))
            .unwrap();
        assert_eq!(leaked, b"principal-a secret");

        // After a scrub (pool checkin) the residue is gone.
        worker.scrub().unwrap();
        let leaked = worker
            .invoke_expect::<Vec<u8>>(Box::new(Vec::<u8>::new()))
            .unwrap();
        assert!(
            leaked.is_empty(),
            "scrub must erase residue, got {leaked:?}"
        );

        let stats = wedge.kernel().stats();
        assert_eq!(stats.private_scrubs, 1);
        assert_eq!(stats.recycled_invocations, 3);
    }

    #[test]
    fn pooled_worker_policy_is_subset_validated() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let tag = root.tag_new().unwrap();
        let entry = wedge
            .kernel()
            .cgate_register("noop", typed_entry(|_ctx, _t, _i: ()| Ok(0u8)));

        // A confined sthread *with* the gate grant still cannot pre-warm a
        // worker holding a memory grant the sthread itself lacks.
        let mut granted = SecurityPolicy::deny_all();
        granted.sc_cgate_add(entry, SecurityPolicy::deny_all(), None);
        let handle = root
            .sthread_create("confined-granted", &granted, move |ctx| {
                let mut wanted = SecurityPolicy::deny_all();
                wanted.sc_mem_add(tag, MemProt::Read);
                ctx.recycled_worker_spawn(entry, &wanted, None).map(|_| ())
            })
            .unwrap();
        assert!(matches!(
            handle.join().unwrap(),
            Err(WedgeError::PrivilegeEscalation { .. })
        ));

        // Unknown entries are refused.
        assert!(matches!(
            root.recycled_worker_spawn(crate::CgEntryId(9999), &SecurityPolicy::deny_all(), None),
            Err(WedgeError::UnknownCallgate(_))
        ));
    }

    #[test]
    fn pooled_worker_spawn_requires_a_callgate_grant() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let entry = wedge
            .kernel()
            .cgate_register("noop", typed_entry(|_ctx, _t, n: u64| Ok(n)));

        // A confined sthread without sc_cgate_add for the entry cannot run
        // its code through a pooled worker (would bypass CallgateDenied).
        let handle = root
            .sthread_create("ungranted", &SecurityPolicy::deny_all(), move |ctx| {
                ctx.recycled_worker_spawn(entry, &SecurityPolicy::deny_all(), None)
                    .map(|_| ())
            })
            .unwrap();
        assert!(matches!(
            handle.join().unwrap(),
            Err(WedgeError::CallgateDenied { .. })
        ));

        // With the grant, the same spawn succeeds.
        let mut granted = SecurityPolicy::deny_all();
        granted.sc_cgate_add(entry, SecurityPolicy::deny_all(), None);
        let handle = root
            .sthread_create("granted", &granted, move |ctx| {
                let worker = ctx.recycled_worker_spawn(entry, &SecurityPolicy::deny_all(), None)?;
                worker.invoke_expect::<u64>(Box::new(7u64))
            })
            .unwrap();
        assert_eq!(handle.join().unwrap().unwrap(), 7);
    }

    #[test]
    fn pooled_worker_trusted_argument_is_not_forgeable_by_granted_caller() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let entry = wedge.kernel().cgate_register(
            "reveal_trusted",
            typed_entry(|_ctx, trusted, _i: ()| {
                Ok(trusted
                    .and_then(|t| t.downcast::<String>())
                    .cloned()
                    .unwrap_or_default())
            }),
        );
        let mut granted = SecurityPolicy::deny_all();
        granted.sc_cgate_add(
            entry,
            SecurityPolicy::deny_all(),
            Some(TrustedArg::new(String::from("creator-chosen"))),
        );
        let handle = root
            .sthread_create("granted", &granted, move |ctx| {
                // Supplying a forged trusted argument is refused outright...
                let forged = ctx.recycled_worker_spawn(
                    entry,
                    &SecurityPolicy::deny_all(),
                    Some(TrustedArg::new(String::from("attacker-chosen"))),
                );
                let forged_refused = matches!(forged, Err(WedgeError::PrivilegeEscalation { .. }));
                // ...and the legitimate spawn sees the creator's value.
                let worker = ctx
                    .recycled_worker_spawn(entry, &SecurityPolicy::deny_all(), None)
                    .unwrap();
                let seen = worker.invoke_expect::<String>(Box::new(())).unwrap();
                (forged_refused, seen)
            })
            .unwrap();
        let (forged_refused, seen) = handle.join().unwrap();
        assert!(forged_refused);
        assert_eq!(seen, "creator-chosen");
    }

    #[test]
    fn scrub_wipes_worker_created_tagged_segments_and_resets_policy() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let stash: Arc<parking_lot::Mutex<Option<crate::SBuf>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let stash_for_gate = stash.clone();
        // The gate stashes secrets in a tag it creates itself (not private
        // scratch) — the sneakier §3.3 residue channel.
        let entry = wedge.kernel().cgate_register(
            "tagged_stash_or_dump",
            typed_entry(move |ctx, _t, input: Vec<u8>| {
                let mut stash = stash_for_gate.lock();
                if input.is_empty() {
                    return Ok(match stash.as_ref() {
                        Some(prev) => ctx.read_all(prev).unwrap_or_default(),
                        None => Vec::new(),
                    });
                }
                let tag = ctx.tag_new()?;
                let buf = ctx.smalloc_init(tag, &input)?;
                *stash = Some(buf);
                Ok(Vec::<u8>::new())
            }),
        );
        let worker = root
            .recycled_worker_spawn(entry, &SecurityPolicy::deny_all(), None)
            .unwrap();
        worker
            .invoke_expect::<Vec<u8>>(Box::new(b"tagged secret".to_vec()))
            .unwrap();
        let leaked = worker
            .invoke_expect::<Vec<u8>>(Box::new(Vec::<u8>::new()))
            .unwrap();
        assert_eq!(leaked, b"tagged secret", "residue visible before scrub");

        let policy_before = wedge.kernel().policy_of(worker.activation()).unwrap();
        assert!(
            !policy_before.mem_grants().is_empty(),
            "tag_new granted the worker RW on its stash tag"
        );
        worker.scrub().unwrap();
        let leaked = worker
            .invoke_expect::<Vec<u8>>(Box::new(Vec::<u8>::new()))
            .unwrap();
        assert!(leaked.is_empty(), "scrub must wipe worker-created tags");
        // The implicit tag grant was rolled back to the spawn baseline.
        let policy_after = wedge.kernel().policy_of(worker.activation()).unwrap();
        assert!(policy_after.mem_grants().is_empty());
    }

    #[test]
    fn dropping_a_pooled_worker_handle_exits_its_compartment() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let entry = wedge
            .kernel()
            .cgate_register("noop", typed_entry(|_ctx, _t, n: u64| Ok(n)));
        let worker = root
            .recycled_worker_spawn(entry, &SecurityPolicy::deny_all(), None)
            .unwrap();
        let live_before = wedge.kernel().live_compartments();
        drop(worker);
        // The worker loop notices the closed channel asynchronously.
        for _ in 0..100 {
            if wedge.kernel().live_compartments() < live_before {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(wedge.kernel().live_compartments() < live_before);
    }

    #[test]
    fn frame_guard_emits_call_events() {
        let wedge = Wedge::init();
        let sink = Arc::new(crate::trace::CountingSink::default());
        wedge.kernel().set_tracer(Some(sink.clone()));
        let root = wedge.root();
        {
            let _frame = root.trace_fn("handle_request");
            let _inner = root.trace_fn("parse_headers");
        }
        assert_eq!(
            sink.calls.load(std::sync::atomic::Ordering::Relaxed),
            4,
            "two entries and two exits"
        );
    }
}
