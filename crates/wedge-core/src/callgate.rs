//! Callgate types.
//!
//! A callgate is "a portion of code that runs with different (typically
//! higher) privileges than its caller", defined by an entry point, a set of
//! permissions and a *trusted argument* supplied by the callgate's creator
//! and held by the kernel so the caller cannot tamper with it (§3.3).
//!
//! In the reproduction an entry point is a registered closure
//! ([`CallgateFn`]); permissions are a [`crate::SecurityPolicy`]; and the
//! trusted argument is an arbitrary `Send + Sync` value wrapped in
//! [`TrustedArg`]. Invocation (`SthreadCtx::cgate`) creates a fresh
//! compartment with the callgate's permissions and runs the entry point on
//! its own thread while the caller blocks — mirroring the paper's
//! implementation of callgates as separate sthreads. *Recycled* callgates
//! keep a long-lived worker thread per instance and exchange arguments over
//! channels, the analogue of the paper's futex-based fast path.

use std::any::Any;
use std::sync::Arc;

use crate::error::WedgeError;
use crate::sthread::SthreadCtx;

/// Identifier of a registered callgate entry point (program text).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CgEntryId(pub u64);

impl std::fmt::Display for CgEntryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cgate{}", self.0)
    }
}

/// The caller-supplied (untrusted) argument to a callgate invocation.
pub type CgInput = Box<dyn Any + Send>;

/// The value returned by a callgate to its caller.
pub type CgOutput = Box<dyn Any + Send>;

/// The kernel-held trusted argument of a callgate instance. The creator
/// supplies it when granting the callgate; the kernel passes it to the entry
/// point on every invocation; callers can neither read nor replace it.
#[derive(Clone)]
pub struct TrustedArg(Arc<dyn Any + Send + Sync>);

impl TrustedArg {
    /// Wrap a value as a trusted argument.
    pub fn new<T: Any + Send + Sync>(value: T) -> Self {
        TrustedArg(Arc::new(value))
    }

    /// Downcast to the concrete type the creator stored.
    pub fn downcast<T: Any + Send + Sync>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for TrustedArg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TrustedArg(<kernel-held>)")
    }
}

/// A registered callgate entry point.
///
/// The entry point receives the callgate compartment's context (carrying the
/// callgate's — not the caller's — privileges), the kernel-held trusted
/// argument if any, and the caller's untrusted input.
pub type CallgateFn = Arc<
    dyn Fn(&SthreadCtx, Option<&TrustedArg>, CgInput) -> Result<CgOutput, WedgeError> + Send + Sync,
>;

/// Helper: build a [`CallgateFn`] from a typed closure, boxing the result.
///
/// ```
/// use wedge_core::callgate::typed_entry;
/// let entry = typed_entry(|_ctx, _trusted, n: u32| Ok(n + 1));
/// ```
pub fn typed_entry<I, O, F>(f: F) -> CallgateFn
where
    I: Any + Send,
    O: Any + Send,
    F: Fn(&SthreadCtx, Option<&TrustedArg>, I) -> Result<O, WedgeError> + Send + Sync + 'static,
{
    Arc::new(move |ctx, trusted, input: CgInput| {
        let input = input
            .downcast::<I>()
            .map_err(|_| WedgeError::BadCallgateValue)?;
        let out = f(ctx, trusted, *input)?;
        Ok(Box::new(out) as CgOutput)
    })
}

/// Helper: downcast a callgate's output to a concrete type.
pub fn downcast_output<T: Any>(out: CgOutput) -> Result<T, WedgeError> {
    out.downcast::<T>()
        .map(|b| *b)
        .map_err(|_| WedgeError::BadCallgateValue)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trusted_arg_downcasts_to_creator_type() {
        let arg = TrustedArg::new(String::from("private-key"));
        assert_eq!(arg.downcast::<String>().unwrap(), "private-key");
        assert!(arg.downcast::<u32>().is_none());
        assert!(format!("{arg:?}").contains("kernel-held"));
    }

    #[test]
    fn downcast_output_errors_on_type_mismatch() {
        let out: CgOutput = Box::new(42u32);
        assert_eq!(downcast_output::<u32>(out).unwrap(), 42);
        let out: CgOutput = Box::new("str");
        assert!(matches!(
            downcast_output::<u64>(out),
            Err(WedgeError::BadCallgateValue)
        ));
    }
}
