//! The simulated kernel: the trusted arbiter of every Wedge privilege check.
//!
//! The paper implements sthreads and callgates as ~2000 lines of kernel
//! support code in Linux 2.6.19. This module is the reproduction's
//! equivalent: it owns all compartments, tagged segments, callgate entry
//! points and instances, file descriptors and globals, and performs every
//! policy check. Application code never touches segment bytes directly; it
//! holds [`SBuf`] names and goes through a [`crate::SthreadCtx`], which
//! forwards to the methods here.
//!
//! ## Concurrency architecture (the lock-sharded fast path)
//!
//! Tagged-memory checks sit on *every* access, so the kernel's hot path is
//! built for concurrency instead of a single state mutex:
//!
//! * the **segment table** is sharded by tag across [`SEGMENT_SHARDS`]
//!   independent `RwLock`s (copy-on-write overlays live in the same shard
//!   as their tag, so one guard covers both);
//! * the **compartment/policy table** is a separate `RwLock`, read-locked
//!   only on permission-cache misses;
//! * **stats** are relaxed atomics, **violations** and all control-plane
//!   tables (callgates, globals, fd ownership, the tag cache) live behind
//!   their own locks, off the data path;
//! * policy state is **op-log replicated** (the node-replication design):
//!   every policy mutation (grants, revocations, widenings, identity
//!   transitions, scrub resets, compartment creation) is validated against
//!   the authoritative table and appended as a typed effect to a shared,
//!   monotonically versioned [`crate::oplog::OpLog`]. Concurrent mutators
//!   are batched by a **flat-combining** appender (one combiner drains the
//!   whole queue under a single compartments-lock + tail acquisition).
//!   Each [`crate::oplog::KernelReplica`] lazily replays the log up to the
//!   published tail, and per-sthread permission caches (tag →
//!   [`MemProt`], fd → [`crate::FdProt`]) revalidate on the **log
//!   version**, scanning only the new suffix for ops naming their own
//!   compartment — a mutation aimed elsewhere costs a cached reader
//!   nothing. The PR 2 per-compartment-epoch scheme survives as the
//!   [`Kernel::sharded_baseline`] ablation tier (full cache flush on any
//!   epoch bump), and the pre-sharding profile as
//!   [`Kernel::legacy_baseline`].
//!
//! Lock order (outer → inner): `compartments` → segment shard → `fds` →
//! `fd_owners` → `control` → `tag_cache` → `violations`. The op log's
//! entries lock is a leaf acquired under `compartments` (appends) or under
//! a replica's state lock (replay); the mutation queue and tracer locks
//! are leaves never held while acquiring any other lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockReadGuard};

use wedge_alloc::{Segment, TagCache, TagCacheConfig};

use parking_lot::Condvar;

use crate::callgate::{CallgateFn, CgEntryId, TrustedArg};
use crate::error::WedgeError;
use crate::fdtable::{FdEntry, FdId, FdProt};
use crate::memory::SBuf;
use crate::oplog::{KernelReplica, OpLog, OpLogStats, PolicyOp, SnapshotView};
use crate::policy::{SecurityPolicy, Uid};
use crate::sthread::SthreadCtx;
use crate::syscall::{DomainTransitions, Syscall};
use crate::tag::{AccessMode, CompartmentId, IdHashMap, MemProt, Tag};
use crate::trace::{AccessSink, AllocEvent, CallEvent, MemAccessEvent, MemRegion, ViolationEvent};
use wedge_telemetry::{Telemetry, TelemetryEvent};

/// Number of independently locked segment-table shards. Tags are assigned
/// round-robin (`tag_new` increments the tag id), so consecutive tags land
/// on different shards and concurrent compartments rarely contend.
pub const SEGMENT_SHARDS: usize = 16;

/// Counters describing kernel activity, used by tests and by the experiment
/// harnesses (e.g. "each request creates two sthreads and invokes eight
/// callgates", §6).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct KernelStats {
    /// Sthreads created (excluding callgate activations).
    pub sthreads_created: u64,
    /// Standard callgate invocations.
    pub callgate_invocations: u64,
    /// Recycled callgate invocations.
    pub recycled_invocations: u64,
    /// Tags created via `tag_new` (including boundary tags).
    pub tags_created: u64,
    /// Tags deleted.
    pub tags_deleted: u64,
    /// `smalloc` allocations from shared (grantable) tags.
    pub smallocs: u64,
    /// Allocations that went to per-compartment private segments.
    pub private_allocs: u64,
    /// Tagged-memory reads that were checked.
    pub mem_reads: u64,
    /// Tagged-memory writes that were checked.
    pub mem_writes: u64,
    /// Protection faults raised (denied accesses, not counting emulated).
    pub faults: u64,
    /// Violations permitted because emulation mode was active.
    pub emulated_violations: u64,
    /// File-descriptor reads.
    pub fd_reads: u64,
    /// File-descriptor writes.
    pub fd_writes: u64,
    /// Private-scratch scrubs (zeroize-between-principals on pooled
    /// recycled workers; see [`crate::RecycledWorkerHandle::scrub`]).
    pub private_scrubs: u64,
}

impl std::ops::AddAssign<&KernelStats> for KernelStats {
    /// Field-wise accumulation, used to aggregate counters across the
    /// independent kernels of a pooled-instance front-end. The exhaustive
    /// destructuring (no `..`) makes adding a `KernelStats` field without
    /// extending this impl a compile error.
    fn add_assign(&mut self, other: &KernelStats) {
        let KernelStats {
            sthreads_created,
            callgate_invocations,
            recycled_invocations,
            tags_created,
            tags_deleted,
            smallocs,
            private_allocs,
            mem_reads,
            mem_writes,
            faults,
            emulated_violations,
            fd_reads,
            fd_writes,
            private_scrubs,
        } = other;
        self.sthreads_created += sthreads_created;
        self.callgate_invocations += callgate_invocations;
        self.recycled_invocations += recycled_invocations;
        self.tags_created += tags_created;
        self.tags_deleted += tags_deleted;
        self.smallocs += smallocs;
        self.private_allocs += private_allocs;
        self.mem_reads += mem_reads;
        self.mem_writes += mem_writes;
        self.faults += faults;
        self.emulated_violations += emulated_violations;
        self.fd_reads += fd_reads;
        self.fd_writes += fd_writes;
        self.private_scrubs += private_scrubs;
    }
}

/// The kernel-internal counters: one relaxed atomic per [`KernelStats`]
/// field, so the data path never takes a lock just to count.
#[derive(Default)]
struct StatCells {
    sthreads_created: AtomicU64,
    callgate_invocations: AtomicU64,
    recycled_invocations: AtomicU64,
    tags_created: AtomicU64,
    tags_deleted: AtomicU64,
    smallocs: AtomicU64,
    private_allocs: AtomicU64,
    mem_reads: AtomicU64,
    mem_writes: AtomicU64,
    faults: AtomicU64,
    emulated_violations: AtomicU64,
    fd_reads: AtomicU64,
    fd_writes: AtomicU64,
    private_scrubs: AtomicU64,
}

impl StatCells {
    fn bump(cell: &AtomicU64) {
        cell.fetch_add(1, Ordering::Relaxed);
    }

    fn absorb(&self, counts: AccessCounts) {
        self.mem_reads
            .fetch_add(counts.mem_reads, Ordering::Relaxed);
        self.mem_writes
            .fetch_add(counts.mem_writes, Ordering::Relaxed);
        self.fd_reads.fetch_add(counts.fd_reads, Ordering::Relaxed);
        self.fd_writes
            .fetch_add(counts.fd_writes, Ordering::Relaxed);
    }

    fn snapshot(&self) -> KernelStats {
        KernelStats {
            sthreads_created: self.sthreads_created.load(Ordering::Relaxed),
            callgate_invocations: self.callgate_invocations.load(Ordering::Relaxed),
            recycled_invocations: self.recycled_invocations.load(Ordering::Relaxed),
            tags_created: self.tags_created.load(Ordering::Relaxed),
            tags_deleted: self.tags_deleted.load(Ordering::Relaxed),
            smallocs: self.smallocs.load(Ordering::Relaxed),
            private_allocs: self.private_allocs.load(Ordering::Relaxed),
            mem_reads: self.mem_reads.load(Ordering::Relaxed),
            mem_writes: self.mem_writes.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            emulated_violations: self.emulated_violations.load(Ordering::Relaxed),
            fd_reads: self.fd_reads.load(Ordering::Relaxed),
            fd_writes: self.fd_writes.load(Ordering::Relaxed),
            private_scrubs: self.private_scrubs.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        let StatCells {
            sthreads_created,
            callgate_invocations,
            recycled_invocations,
            tags_created,
            tags_deleted,
            smallocs,
            private_allocs,
            mem_reads,
            mem_writes,
            faults,
            emulated_violations,
            fd_reads,
            fd_writes,
            private_scrubs,
        } = self;
        for cell in [
            sthreads_created,
            callgate_invocations,
            recycled_invocations,
            tags_created,
            tags_deleted,
            smallocs,
            private_allocs,
            mem_reads,
            mem_writes,
            faults,
            emulated_violations,
            fd_reads,
            fd_writes,
            private_scrubs,
        ] {
            cell.store(0, Ordering::Relaxed);
        }
    }
}

/// A recorded protection violation (kept by the kernel so Crowbar's
/// emulation workflow can enumerate every violation after a run, §3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationRecord {
    /// The offending compartment.
    pub compartment: CompartmentId,
    /// Its name.
    pub compartment_name: String,
    /// Where the denied access landed.
    pub region: MemRegion,
    /// The attempted access mode.
    pub mode: AccessMode,
    /// Whether emulation mode let the access proceed.
    pub emulated: bool,
}

/// A registered global variable (part of the pre-`main` snapshot).
#[derive(Debug, Clone)]
struct GlobalVar {
    initial: Vec<u8>,
    /// If the global was declared with `BOUNDARY_VAR`, the tag protecting it.
    boundary: Option<(u32, SBuf)>,
}

/// A segment backing a tag.
struct SegmentEntry {
    segment: Segment,
    /// The compartment that created the tag.
    owner: CompartmentId,
    /// Private segments back untagged allocations; they can never be named
    /// in another compartment's policy.
    private: bool,
}

/// One shard of the segment table. Copy-on-write overlays are co-located
/// with their tag so a single shard guard covers both the shared bytes and
/// any per-compartment private view.
#[derive(Default)]
struct SegmentShard {
    segments: IdHashMap<Tag, SegmentEntry>,
    /// Per-(compartment, tag) copy-on-write overlays for tags in this shard.
    overlays: IdHashMap<(CompartmentId, Tag), Vec<u8>>,
}

/// A compartment known to the kernel.
struct CompartmentEntry {
    name: String,
    parent: Option<CompartmentId>,
    policy: SecurityPolicy,
    /// Lazily created private segment for untagged allocations.
    private_tag: Option<Tag>,
    alive: bool,
    /// Bumped (under the `compartments` write lock) whenever this
    /// compartment's policy changes; per-sthread permission caches
    /// revalidate against it.
    epoch: Arc<AtomicU64>,
}

impl CompartmentEntry {
    fn new(name: &str, parent: Option<CompartmentId>, policy: SecurityPolicy) -> Self {
        CompartmentEntry {
            name: name.to_string(),
            parent,
            policy,
            private_tag: None,
            alive: true,
            epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }
}

/// A callgate instance: created when a policy containing a
/// [`crate::CallgateGrant`] is bound to a new sthread.
#[derive(Clone)]
struct CallgateInstance {
    policy: SecurityPolicy,
    trusted: Option<TrustedArg>,
    creator: CompartmentId,
}

/// How a new child compartment is created, deciding subset validation and
/// which [`KernelStats`] counter it lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChildKind {
    /// An application sthread: subset-validated, counts `sthreads_created`.
    Sthread,
    /// A callgate activation running an instance policy already validated
    /// against its creator: no subset check, counts `callgate_invocations`.
    Activation,
    /// A pooled recycled worker spawned under an instance policy: no subset
    /// check, but it is a long-lived sthread, so counts `sthreads_created`
    /// (invocations are counted per `invoke`, not at pre-warm).
    PooledWorker,
}

/// Everything the caller needs to actually run a callgate (returned by
/// [`Kernel::cgate_prepare`]; the spawn happens in `SthreadCtx`).
pub(crate) struct PreparedCall {
    pub(crate) entry_fn: CallgateFn,
    pub(crate) policy: SecurityPolicy,
    pub(crate) trusted: Option<TrustedArg>,
    pub(crate) creator: CompartmentId,
}

/// A long-lived worker backing a recycled callgate.
pub(crate) struct RecycledWorker {
    /// Serialises callers of the same recycled gate.
    pub(crate) call_lock: Mutex<()>,
    /// Inputs paired with the caller's ambient trace (if any), so the
    /// long-lived worker thread serves each invocation inside the
    /// invoking request's trace.
    pub(crate) tx: crossbeam::channel::Sender<(
        crate::callgate::CgInput,
        Option<wedge_telemetry::ActiveTrace>,
    )>,
    pub(crate) rx: crossbeam::channel::Receiver<Result<crate::callgate::CgOutput, WedgeError>>,
    /// The persistent activation compartment.
    pub(crate) activation: CompartmentId,
}

/// Control-plane state: consulted on compartment/callgate lifecycle events,
/// never on the tagged-memory data path.
struct ControlState {
    callgate_entries: HashMap<CgEntryId, (String, CallgateFn)>,
    callgate_instances: HashMap<(CompartmentId, CgEntryId), CallgateInstance>,
    recycled: HashMap<(CompartmentId, CgEntryId), Arc<RecycledWorker>>,
    globals: HashMap<String, GlobalVar>,
    boundary_tags: HashMap<u32, Tag>,
    /// Per-(compartment, global) private copies (the COW snapshot view).
    global_overlays: HashMap<(CompartmentId, String), Vec<u8>>,
    transitions: DomainTransitions,
    next_entry: u64,
}

/// The per-sthread permission cache: positive grants keyed by tag/fd.
/// On the op-log kernel the cache is validated against the log's published
/// tail version and invalidated *precisely* — only ops naming the caller's
/// own compartment touch it; on the epoch ablation tiers it is validated
/// against the owning compartment's epoch and fully flushed on any bump.
/// Negative results (denials) are never cached, so every denied access
/// still reaches the authoritative tables (and the violation log).
pub(crate) struct PermCache {
    /// The compartment's epoch cell, bound on first use (epoch tiers only).
    epoch: Option<Arc<AtomicU64>>,
    seen_epoch: u64,
    /// The kernel replica this cache refills from (op-log mode only; bound
    /// round-robin by [`Kernel::adopt_cache`]).
    replica: Option<Arc<KernelReplica>>,
    /// The log tail version this cache last revalidated against.
    seen_version: u64,
    /// Whether the op-log path has completed its first sync (the caller's
    /// unconfined flag is only trustworthy afterwards).
    replica_ready: bool,
    unconfined: bool,
    mem: IdHashMap<Tag, MemProt>,
    fds: IdHashMap<FdId, FdProt>,
    /// Per-cache access counters, bumped under the cache lock the hot path
    /// already holds — no extra atomic per access. [`Kernel::stats`] sums
    /// them across the registry; [`PermCache::drop`] flushes them into the
    /// kernel's global cells so counts never go backwards.
    counts: AccessCounts,
    /// The kernel this cache is registered with (for the drop-time flush).
    kernel: Option<std::sync::Weak<Kernel>>,
}

/// The four data-path counters a [`PermCache`] accumulates locally.
#[derive(Debug, Default, Clone, Copy)]
struct AccessCounts {
    mem_reads: u64,
    mem_writes: u64,
    fd_reads: u64,
    fd_writes: u64,
}

/// Which counter an access should land in (resolved while the cache lock is
/// held, so counting is free on the cached fast path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StatKind {
    MemRead,
    MemWrite,
    FdRead,
    FdWrite,
    /// Permission resolution that is not itself a counted access
    /// (`smalloc`, `sfree`).
    None,
}

impl PermCache {
    pub(crate) fn new() -> Self {
        PermCache {
            epoch: None,
            seen_epoch: 0,
            replica: None,
            seen_version: 0,
            replica_ready: false,
            unconfined: false,
            mem: IdHashMap::default(),
            fds: IdHashMap::default(),
            counts: AccessCounts::default(),
            kernel: None,
        }
    }

    fn count(&mut self, kind: StatKind) {
        match kind {
            StatKind::MemRead => self.counts.mem_reads += 1,
            StatKind::MemWrite => self.counts.mem_writes += 1,
            StatKind::FdRead => self.counts.fd_reads += 1,
            StatKind::FdWrite => self.counts.fd_writes += 1,
            StatKind::None => {}
        }
    }

    fn take_counts(&mut self) -> AccessCounts {
        std::mem::take(&mut self.counts)
    }
}

impl Drop for PermCache {
    fn drop(&mut self) {
        // Flush this cache's counts into the kernel's global cells so a
        // finished sthread's accesses stay visible in `Kernel::stats`.
        if let Some(kernel) = self.kernel.as_ref().and_then(std::sync::Weak::upgrade) {
            kernel.stats.absorb(self.counts);
        }
    }
}

/// A borrowed, zero-copy view of a tagged buffer (see
/// [`crate::SthreadCtx::read_guard`]). Holds the segment shard's read lock
/// for its lifetime: cheap for short-lived borrows, but while one is held
/// the current thread must not call back into ANY kernel operation. Writes,
/// allocations, `sfree`, `tag_delete` and scrubs write-lock a shard, and
/// even another *read* can deadlock behind a queued writer (the std
/// `RwLock` backing the shim makes recursive reads unreliable) — and since
/// tags hash across [`SEGMENT_SHARDS`] shards, an unrelated tag has a
/// 1-in-16 chance of sharing this one's lock. Read the bytes, drop the
/// guard, then do everything else. The same applies to [`AccessSink`]
/// callbacks, which can run under this lock.
pub struct MemReadGuard<'a> {
    shard: RwLockReadGuard<'a, SegmentShard>,
    /// `Some` when the reader has a copy-on-write overlay for the tag.
    overlay: Option<(CompartmentId, Tag)>,
    tag: Tag,
    start: usize,
    len: usize,
}

impl std::ops::Deref for MemReadGuard<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        let bytes: &[u8] = match self.overlay {
            Some(key) => self
                .shard
                .overlays
                .get(&key)
                .expect("overlay pinned by shard guard"),
            None => self
                .shard
                .segments
                .get(&self.tag)
                .expect("segment pinned by shard guard")
                .segment
                .arena()
                .data(),
        };
        &bytes[self.start..self.start + self.len]
    }
}

impl std::fmt::Debug for MemReadGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemReadGuard")
            .field("tag", &self.tag)
            .field("start", &self.start)
            .field("len", &self.len)
            .finish()
    }
}

/// One policy mutation travelling through the flat-combining appender.
/// Carries everything `apply_mutation` needs to validate and apply it
/// against the authoritative table on the combiner's thread.
enum PolicyMutation {
    MemAdd {
        caller: CompartmentId,
        target: CompartmentId,
        tag: Tag,
        prot: MemProt,
    },
    MemDel {
        caller: CompartmentId,
        target: CompartmentId,
        tag: Tag,
    },
    Widen {
        target: CompartmentId,
        extra: SecurityPolicy,
    },
    Transition {
        caller: CompartmentId,
        target: CompartmentId,
        uid: Uid,
        fs_root: Option<String>,
    },
    ScrubReset {
        target: CompartmentId,
        baseline: SecurityPolicy,
    },
}

/// A mutator's completion slot (same condvar idiom as the cachenet ring's
/// batch sender): the combiner fulfills it only *after* the batch's
/// effects are published to the log, so a returned mutation is visible to
/// every later-starting read.
struct MutWaiter {
    slot: Mutex<Option<Result<(), WedgeError>>>,
    cv: Condvar,
}

impl MutWaiter {
    fn new() -> MutWaiter {
        MutWaiter {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fulfill(&self, result: Result<(), WedgeError>) {
        *self.slot.lock() = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<(), WedgeError> {
        let mut slot = self.slot.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            self.cv.wait(&mut slot);
        }
    }
}

/// The flat-combining mutation queue: pending ops plus whether some thread
/// is currently draining them. A mutator that finds no combiner active
/// becomes the combiner and batches everything queued behind it under a
/// single compartments-lock + log-tail acquisition.
struct MutQueue {
    items: Vec<(PolicyMutation, Arc<MutWaiter>)>,
    combiner_active: bool,
    /// Reusable effects buffer handed to whichever thread holds the
    /// combiner role, so a drain round allocates nothing.
    scratch: Vec<PolicyOp>,
}

thread_local! {
    /// Reusable effects buffer for the solo (uncontended) mutation fast
    /// path, which runs outside the combiner queue and so cannot borrow
    /// [`MutQueue::scratch`] without paying its lock.
    static SOLO_EFFECTS: std::cell::RefCell<Vec<PolicyOp>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The simulated kernel.
pub struct Kernel {
    compartments: RwLock<HashMap<CompartmentId, CompartmentEntry>>,
    segment_shards: Vec<RwLock<SegmentShard>>,
    fds: RwLock<HashMap<FdId, FdEntry>>,
    /// Which compartment created each descriptor (scrub removes a pooled
    /// principal's descriptors on checkin).
    fd_owners: Mutex<HashMap<FdId, CompartmentId>>,
    control: Mutex<ControlState>,
    tag_cache: Mutex<TagCache>,
    /// Every per-sthread [`PermCache`] born of this kernel, so
    /// [`Kernel::stats`] can sum the per-cache access counters exactly.
    cache_registry: Mutex<Vec<std::sync::Weak<Mutex<PermCache>>>>,
    violations: Mutex<Vec<ViolationRecord>>,
    stats: StatCells,
    emulation: AtomicBool,
    next_compartment: AtomicU64,
    next_tag: AtomicU64,
    next_fd: AtomicU64,
    tracer: RwLock<Option<Arc<dyn AccessSink>>>,
    /// Cheap data-path check: is a tracer installed at all? When false, no
    /// event is constructed and no name is cloned anywhere on the fast path.
    tracer_on: AtomicBool,
    /// The telemetry plane this kernel reports into, if registered (see
    /// [`Kernel::instrument`]). Only the cold paths (violations, scrubs)
    /// ever read it, so the fast path stays untouched.
    telemetry: std::sync::OnceLock<Telemetry>,
    /// The shared policy operation log (`None` on the epoch ablation
    /// tiers). Appends happen under the compartments write lock; the tail
    /// is the version every permission cache revalidates against.
    oplog: Option<Arc<OpLog>>,
    /// The per-shard kernel replicas permission caches refill from in
    /// op-log mode (empty on the ablation tiers).
    replicas: Vec<Arc<KernelReplica>>,
    /// Round-robin cursor assigning fresh caches to replicas.
    next_replica: AtomicU64,
    /// The flat-combining mutation queue (op-log mode only).
    mutations: Mutex<MutQueue>,
    /// Pre-refactor contention profile (see [`Kernel::legacy_baseline`]).
    legacy: bool,
    legacy_gate: Mutex<()>,
    /// Probe targets for the legacy profile: the pre-refactor kernel kept
    /// its segment table and COW overlays in SipHash-keyed std `HashMap`s
    /// and looked both up on every access. The sharded kernel's hot tables
    /// are `IdHashMap`-keyed, so the baseline reproduces the original
    /// per-access hash cost by probing these (one-sentinel, never-mutated)
    /// std maps. Unused on the sharded profile.
    legacy_segments_probe: HashMap<Tag, ()>,
    legacy_overlays_probe: HashMap<(CompartmentId, Tag), ()>,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

/// Which concurrency profile a kernel is built with (internal; the public
/// surface is the three named constructors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelMode {
    /// Op-log replicated policy state (the default).
    OpLog,
    /// PR 2 ablation tier: per-compartment epochs, full cache flush on any
    /// policy mutation.
    ShardedEpoch,
    /// Pre-sharding ablation tier: one global lock, caches bypassed.
    Legacy,
}

impl Kernel {
    /// Create a fresh kernel with no compartments, tags or globals, using
    /// the op-log replicated concurrency profile: policy mutations are
    /// flat-combined onto a shared versioned log and reads are served from
    /// per-shard replicas (see [`crate::oplog`]).
    pub fn new() -> Kernel {
        Kernel::build(KernelMode::OpLog)
    }

    /// Construct a kernel with the **sharded-epoch** concurrency profile —
    /// the design this repo shipped before op-log replication: policy
    /// reads cross the shared compartments `RwLock` on every cache miss,
    /// and any policy mutation bumps a per-compartment epoch that fully
    /// flushes every permission cache bound to it. Kept as the mid
    /// ablation tier of the `fast_path` benchmark.
    pub fn sharded_baseline() -> Kernel {
        Kernel::build(KernelMode::ShardedEpoch)
    }

    /// Construct a kernel that reproduces the **pre-sharding contention
    /// profile**: one global lock serialises every tagged-memory and
    /// descriptor access, each access clones the caller's compartment name
    /// (as the old tracing plumbing did), and per-sthread permission caches
    /// are bypassed so every check re-walks the policy table. Kept as the
    /// ablation baseline for the `fast_path` benchmark — the same role the
    /// `reuse_enabled = false` switch plays for the Figure 8 tag cache.
    pub fn legacy_baseline() -> Kernel {
        Kernel::build(KernelMode::Legacy)
    }

    /// Replica count for the op-log profile: one per available core, and
    /// always at least two so replica-local behaviour (round-robin cache
    /// binding, lag) is exercised even on a single-core host.
    fn default_replica_count() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
            .clamp(2, 8)
    }

    fn build(mode: KernelMode) -> Kernel {
        let (oplog, replicas) = match mode {
            KernelMode::OpLog => (
                Some(Arc::new(OpLog::new())),
                (0..Kernel::default_replica_count())
                    .map(|_| Arc::new(KernelReplica::new()))
                    .collect(),
            ),
            KernelMode::ShardedEpoch | KernelMode::Legacy => (None, Vec::new()),
        };
        let legacy = mode == KernelMode::Legacy;
        Kernel {
            compartments: RwLock::new(HashMap::new()),
            segment_shards: (0..SEGMENT_SHARDS)
                .map(|_| RwLock::new(SegmentShard::default()))
                .collect(),
            fds: RwLock::new(HashMap::new()),
            fd_owners: Mutex::new(HashMap::new()),
            control: Mutex::new(ControlState {
                callgate_entries: HashMap::new(),
                callgate_instances: HashMap::new(),
                recycled: HashMap::new(),
                globals: HashMap::new(),
                boundary_tags: HashMap::new(),
                global_overlays: HashMap::new(),
                transitions: DomainTransitions::new(),
                next_entry: 1,
            }),
            tag_cache: Mutex::new(TagCache::new(TagCacheConfig::default())),
            cache_registry: Mutex::new(Vec::new()),
            violations: Mutex::new(Vec::new()),
            stats: StatCells::default(),
            emulation: AtomicBool::new(false),
            next_compartment: AtomicU64::new(1),
            next_tag: AtomicU64::new(1),
            next_fd: AtomicU64::new(1),
            tracer: RwLock::new(None),
            tracer_on: AtomicBool::new(false),
            telemetry: std::sync::OnceLock::new(),
            oplog,
            replicas,
            next_replica: AtomicU64::new(0),
            mutations: Mutex::new(MutQueue {
                items: Vec::new(),
                combiner_active: false,
                scratch: Vec::new(),
            }),
            legacy,
            legacy_gate: Mutex::new(()),
            // One sentinel each: probing an empty std HashMap short-circuits
            // before hashing, which would erase the cost being reproduced.
            legacy_segments_probe: HashMap::from([(Tag(u64::MAX), ())]),
            legacy_overlays_probe: HashMap::from([((CompartmentId(u64::MAX), Tag(u64::MAX)), ())]),
        }
    }

    fn shard(&self, tag: Tag) -> &RwLock<SegmentShard> {
        &self.segment_shards[(tag.0 as usize) % SEGMENT_SHARDS]
    }

    /// Serialise the whole operation when running the legacy contention
    /// profile; a no-op (`None`) on the sharded kernel. The guard also
    /// reproduces the pre-refactor per-access bookkeeping: the old tracing
    /// plumbing cloned the caller's compartment name and probed the tracer
    /// `RwLock` on every access, tracer installed or not.
    fn legacy_section(&self, caller: CompartmentId) -> Option<parking_lot::MutexGuard<'_, ()>> {
        if self.legacy {
            let guard = self.legacy_gate.lock();
            let _ = self.name_of(caller);
            let _ = self.tracer.read().clone();
            Some(guard)
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Configuration and inspection
    // ------------------------------------------------------------------

    /// Register this kernel with a telemetry plane. The kernel's activity
    /// counters are *pulled* into the shared totals (`kernel.read`,
    /// `kernel.write`, `kernel.violations`, `kernel.scrubs`, ...) only when
    /// a snapshot is taken — the data path is untouched, unlike
    /// [`Kernel::set_tracer`], which observes every access. Protection
    /// violations and private-scratch scrubs additionally emit audit
    /// events when the plane has a sink installed.
    ///
    /// Idempotent: a second registration (e.g. a supervisor re-wiring a
    /// restarted shard against the same plane) is a no-op. The collector
    /// holds the kernel weakly, so a dead shard's kernel simply drops out
    /// of subsequent snapshots.
    pub fn instrument(self: &Arc<Kernel>, telemetry: &Telemetry) {
        if self.telemetry.set(telemetry.clone()).is_err() {
            return;
        }
        if let Some(log) = &self.oplog {
            log.bind_replay_histogram(telemetry.histogram("kernel.replica.replay"));
        }
        let kernel = Arc::downgrade(self);
        telemetry.register_collector(move |sample| {
            let Some(kernel) = kernel.upgrade() else {
                return;
            };
            let stats = kernel.stats();
            sample.counter("kernel.read", stats.mem_reads);
            sample.counter("kernel.write", stats.mem_writes);
            sample.counter(
                "kernel.violations",
                stats.faults + stats.emulated_violations,
            );
            sample.counter("kernel.scrubs", stats.private_scrubs);
            sample.counter("kernel.sthreads", stats.sthreads_created);
            sample.counter(
                "kernel.callgates",
                stats.callgate_invocations + stats.recycled_invocations,
            );
            if let Some(log) = &kernel.oplog {
                let oplog = log.stats();
                sample.counter("kernel.oplog.appended", oplog.appended);
                sample.counter("kernel.oplog.combined", oplog.combined_batches);
                sample.counter("kernel.oplog.replays", oplog.replays);
                // Worst-case replica staleness right now. Replicas sync
                // lazily, so a nonzero lag is normal; it bounds how much
                // replay the next cold read pays, not correctness.
                let min_applied = kernel
                    .replicas
                    .iter()
                    .map(|r| r.applied())
                    .min()
                    .unwrap_or(0);
                sample.gauge("kernel.replica.lag", oplog.tail.saturating_sub(min_applied));
            }
        });
    }

    /// Counter snapshot of the policy op log, or `None` on the epoch
    /// ablation tiers (which have no log).
    pub fn oplog_stats(&self) -> Option<OpLogStats> {
        self.oplog.as_ref().map(|log| log.stats())
    }

    /// Number of kernel replicas serving permission-cache refills (0 on
    /// the epoch ablation tiers).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Serialized size of the policy op log in bytes — the control block a
    /// replay-based shard boot ships instead of an address-space image.
    /// `None` on the epoch ablation tiers.
    pub fn oplog_bytes(&self) -> Option<usize> {
        self.oplog.as_ref().map(|log| log.encoded_bytes())
    }

    /// Install (or remove) the instrumentation sink used by Crowbar.
    pub fn set_tracer(&self, tracer: Option<Arc<dyn AccessSink>>) {
        let installed = tracer.is_some();
        *self.tracer.write() = tracer;
        self.tracer_on.store(installed, Ordering::SeqCst);
    }

    fn tracer_active(&self) -> bool {
        self.tracer_on.load(Ordering::Relaxed)
    }

    fn tracer(&self) -> Option<Arc<dyn AccessSink>> {
        if !self.tracer_active() {
            return None;
        }
        self.tracer.read().clone()
    }

    /// Enable or disable emulation mode (§3.4's sthread emulation library):
    /// protection violations are recorded but the access is allowed, so a
    /// whole run can be observed without crashing.
    pub fn set_emulation(&self, enabled: bool) {
        self.emulation.store(enabled, Ordering::SeqCst);
    }

    /// Is emulation mode active?
    pub fn emulation_enabled(&self) -> bool {
        self.emulation.load(Ordering::SeqCst)
    }

    /// All protection violations recorded so far.
    pub fn violations(&self) -> Vec<ViolationRecord> {
        self.violations.lock().clone()
    }

    /// Forget recorded violations.
    pub fn clear_violations(&self) {
        self.violations.lock().clear();
    }

    /// Kernel activity counters. Data-path counts accumulate in the
    /// per-sthread permission caches (under the lock the fast path already
    /// holds, so counting costs no extra atomic); this sums them with the
    /// kernel's global cells for an exact snapshot.
    pub fn stats(&self) -> KernelStats {
        let mut snapshot = self.stats.snapshot();
        let caches: Vec<_> = {
            let mut registry = self.cache_registry.lock();
            registry.retain(|w| w.strong_count() > 0);
            registry
                .iter()
                .filter_map(std::sync::Weak::upgrade)
                .collect()
        };
        for cache in caches {
            let counts = cache.lock().counts;
            snapshot.mem_reads += counts.mem_reads;
            snapshot.mem_writes += counts.mem_writes;
            snapshot.fd_reads += counts.fd_reads;
            snapshot.fd_writes += counts.fd_writes;
        }
        snapshot
    }

    /// Reset kernel activity counters (used between experiment phases).
    pub fn reset_stats(&self) {
        self.stats.reset();
        let caches: Vec<_> = self
            .cache_registry
            .lock()
            .iter()
            .filter_map(std::sync::Weak::upgrade)
            .collect();
        for cache in caches {
            cache.lock().take_counts();
        }
    }

    /// Bind a freshly created permission cache to this kernel: the drop-time
    /// counter flush targets this kernel's cells, and the registry makes the
    /// cache's live counters visible to [`Kernel::stats`].
    pub(crate) fn adopt_cache(self: &Arc<Self>, cache: &Arc<Mutex<PermCache>>) {
        {
            let mut c = cache.lock();
            c.kernel = Some(Arc::downgrade(self));
            if !self.replicas.is_empty() {
                // Op-log mode: spread caches across the replicas so reads
                // shard naturally (one replica per worker core).
                let slot = self.next_replica.fetch_add(1, Ordering::Relaxed) as usize;
                c.replica = Some(self.replicas[slot % self.replicas.len()].clone());
            }
        }
        let mut registry = self.cache_registry.lock();
        if registry.len() % 32 == 31 {
            registry.retain(|w| w.strong_count() > 0);
        }
        registry.push(Arc::downgrade(cache));
    }

    fn count_uncached(&self, kind: StatKind) {
        match kind {
            StatKind::MemRead => StatCells::bump(&self.stats.mem_reads),
            StatKind::MemWrite => StatCells::bump(&self.stats.mem_writes),
            StatKind::FdRead => StatCells::bump(&self.stats.fd_reads),
            StatKind::FdWrite => StatCells::bump(&self.stats.fd_writes),
            StatKind::None => {}
        }
    }

    /// Pre-populate the userland tag cache with `count` default-size
    /// segments, so a pooled-worker spawn storm does not pay the simulated
    /// `mmap` cost per worker. Returns how many segments were parked.
    pub fn prewarm_tag_cache(&self, count: usize) -> usize {
        self.tag_cache.lock().prewarm(count).unwrap_or(0)
    }

    /// Permit an SELinux-style domain transition from `from` to `to`.
    pub fn allow_domain_transition(&self, from: &str, to: &str) {
        self.control.lock().transitions.allow(from, to);
    }

    /// Number of live (not yet exited) compartments.
    pub fn live_compartments(&self) -> usize {
        self.compartments
            .read()
            .values()
            .filter(|c| c.alive)
            .count()
    }

    /// The stored policy of a compartment.
    pub fn policy_of(&self, id: CompartmentId) -> Result<SecurityPolicy, WedgeError> {
        self.compartments
            .read()
            .get(&id)
            .map(|c| c.policy.clone())
            .ok_or(WedgeError::UnknownCompartment(id))
    }

    /// The name of a compartment.
    pub fn name_of(&self, id: CompartmentId) -> Result<String, WedgeError> {
        self.compartments
            .read()
            .get(&id)
            .map(|c| c.name.clone())
            .ok_or(WedgeError::UnknownCompartment(id))
    }

    /// The parent of a compartment (`None` for the root compartment).
    pub fn parent_of(&self, id: CompartmentId) -> Result<Option<CompartmentId>, WedgeError> {
        self.compartments
            .read()
            .get(&id)
            .map(|c| c.parent)
            .ok_or(WedgeError::UnknownCompartment(id))
    }

    // ------------------------------------------------------------------
    // The per-sthread permission cache
    // ------------------------------------------------------------------

    /// Bring `cache` up to date with the policy state it validates
    /// against. On the op-log kernel that is the log's published tail
    /// version (precise, per-compartment invalidation); on the epoch
    /// tiers it is the caller's epoch (full flush on any mutation).
    fn cache_sync(&self, caller: CompartmentId, cache: &mut PermCache) -> Result<(), WedgeError> {
        if let Some(log) = &self.oplog {
            return self.cache_sync_replica(log, caller, cache);
        }
        if let Some(epoch) = &cache.epoch {
            if epoch.load(Ordering::SeqCst) == cache.seen_epoch {
                return Ok(());
            }
        }
        // Stale (or first use): rebind under the compartments lock so the
        // recorded epoch matches the policy snapshot we read.
        let comps = self.compartments.read();
        let entry = comps
            .get(&caller)
            .ok_or(WedgeError::UnknownCompartment(caller))?;
        cache.epoch = Some(entry.epoch.clone());
        cache.seen_epoch = entry.epoch.load(Ordering::SeqCst);
        cache.unconfined = entry.policy.is_unconfined();
        cache.mem.clear();
        cache.fds.clear();
        Ok(())
    }

    /// The op-log revalidation path. The warm case is one load of the
    /// caller's **version cell** (the same per-compartment counter the
    /// epoch tiers flush on, repurposed as a precise "last op touching
    /// this compartment" version) — no locks beyond the cache's own, no
    /// allocation, and a mutation aimed at *another* compartment leaves
    /// this cache warm. On a cell change the cache folds the new log
    /// suffix in directly, applying only the ops naming the caller; the
    /// bound replica is not touched at all — it replays lazily, on the
    /// first cache *miss* that actually needs it (see
    /// [`Kernel::resolve_mem_grant`]).
    ///
    /// Ordering: [`Kernel::publish_batch`] stores the log tail before it
    /// bumps a target's cell, and a mutation's caller is released only
    /// after the bump. So any read that starts after a `revoke_mem`
    /// returns observes the bumped cell, and the tail it then loads is
    /// guaranteed to cover the revocation — the stale grant is dropped on
    /// every replica. (The apply-time bump the epoch tiers rely on also
    /// fires *before* publication; a cache that races it merely folds an
    /// empty suffix and rescans when the post-publish bump lands, since
    /// the cell is monotone.)
    fn cache_sync_replica(
        &self,
        log: &OpLog,
        caller: CompartmentId,
        cache: &mut PermCache,
    ) -> Result<(), WedgeError> {
        /// Longest log suffix a cache folds in place; past this it
        /// resets from its replica instead (one shared replay beats N
        /// per-cache walks of the same ops).
        const MAX_SUFFIX_FOLD: u64 = 128;
        if cache.replica_ready {
            let cell = cache
                .epoch
                .as_ref()
                .expect("version cell is bound at first sync");
            let seen = cell.load(Ordering::SeqCst);
            if seen == cache.seen_epoch {
                return Ok(());
            }
            let tail = log.tail();
            if tail.saturating_sub(cache.seen_version) > MAX_SUFFIX_FOLD {
                // A long suffix (this cache slept through a mutation
                // storm aimed elsewhere): folding it per-cache would
                // re-walk the same ops once per sthread. Let the shared
                // replica replay it once — amortised across every cache
                // bound to it — and refill lazily on miss.
                let replica = cache.replica.as_ref().expect("replica bound");
                replica.sync_to(log, tail);
                cache.unconfined = replica
                    .unconfined(caller)
                    .ok_or(WedgeError::UnknownCompartment(caller))?;
                cache.mem.clear();
                cache.fds.clear();
                cache.seen_version = tail;
                cache.seen_epoch = seen;
                return Ok(());
            }
            // Precise invalidation: fold the new log suffix into the
            // cached grants, touching only the caller's own ops.
            let mem = &mut cache.mem;
            let fds = &mut cache.fds;
            let unconfined = &mut cache.unconfined;
            log.scan(cache.seen_version, tail, |op| match op {
                PolicyOp::MemSet { target, tag, prot } if *target == caller => match prot {
                    Some(prot) => {
                        mem.insert(*tag, *prot);
                    }
                    None => {
                        mem.remove(tag);
                    }
                },
                PolicyOp::FdSet { target, fd, prot } if *target == caller => match prot {
                    Some(prot) => {
                        fds.insert(*fd, *prot);
                    }
                    None => {
                        fds.remove(fd);
                    }
                },
                PolicyOp::Snapshot { target, view } if *target == caller => {
                    // Coarse mutation (widen / scrub reset / transition):
                    // drop everything and refill lazily from the replica.
                    *unconfined = view.unconfined;
                    mem.clear();
                    fds.clear();
                }
                _ => {}
            });
            cache.seen_version = tail;
            cache.seen_epoch = seen;
            return Ok(());
        }
        // First sync: bind the caller's version cell and a replica, then
        // replay the replica up to the tail — the compartment's creation
        // snapshot was published before this context could exist, so the
        // replica is the authority on whether the caller even exists.
        if cache.replica.is_none() {
            // Cache created outside `adopt_cache` (defensive): bind the
            // first replica so the path still works.
            cache.replica = Some(self.replicas[0].clone());
        }
        let cell = self
            .compartments
            .read()
            .get(&caller)
            .ok_or(WedgeError::UnknownCompartment(caller))?
            .epoch
            .clone();
        // Cell before tail: an op counted in this cell value published its
        // tail first, so the sync below cannot miss it.
        let seen = cell.load(Ordering::SeqCst);
        cache.epoch = Some(cell);
        let tail = log.tail();
        let replica = cache.replica.as_ref().expect("replica bound").clone();
        replica.sync_to(log, tail);
        cache.unconfined = replica
            .unconfined(caller)
            .ok_or(WedgeError::UnknownCompartment(caller))?;
        cache.mem.clear();
        cache.fds.clear();
        cache.replica_ready = true;
        cache.seen_version = tail;
        cache.seen_epoch = seen;
        Ok(())
    }

    /// The caller's memory grant for `tag`, through the per-sthread cache
    /// when one is supplied (and the kernel is not in the legacy profile).
    pub(crate) fn resolve_mem_grant(
        &self,
        caller: CompartmentId,
        tag: Tag,
        cache: Option<&Mutex<PermCache>>,
        count: StatKind,
    ) -> Result<Option<MemProt>, WedgeError> {
        let cache = match cache {
            Some(cache) if !self.legacy => cache,
            _ => {
                self.count_uncached(count);
                return self
                    .compartments
                    .read()
                    .get(&caller)
                    .map(|c| c.policy.mem_grant(tag))
                    .ok_or(WedgeError::UnknownCompartment(caller));
            }
        };
        let mut c = cache.lock();
        self.cache_sync(caller, &mut c)?;
        c.count(count);
        if c.unconfined {
            return Ok(Some(MemProt::ReadWrite));
        }
        if let Some(prot) = c.mem.get(&tag) {
            return Ok(Some(*prot));
        }
        // Miss: refill replica-locally in op-log mode (reads never touch
        // the authoritative table) — this is where the bound replica
        // lazily replays the log, up to the version this cache has
        // already validated against.
        let grant = match (&self.oplog, &c.replica) {
            (Some(log), Some(replica)) => {
                replica.sync_to(log, c.seen_version);
                replica
                    .mem_grant(caller, tag)
                    .ok_or(WedgeError::UnknownCompartment(caller))?
            }
            _ => self
                .compartments
                .read()
                .get(&caller)
                .map(|e| e.policy.mem_grant(tag))
                .ok_or(WedgeError::UnknownCompartment(caller))?,
        };
        if let Some(prot) = grant {
            c.mem.insert(tag, prot);
        }
        Ok(grant)
    }

    /// The caller's descriptor grant for `fd`, through the cache.
    pub(crate) fn resolve_fd_grant(
        &self,
        caller: CompartmentId,
        fd: FdId,
        cache: Option<&Mutex<PermCache>>,
        count: StatKind,
    ) -> Result<Option<FdProt>, WedgeError> {
        let cache = match cache {
            Some(cache) if !self.legacy => cache,
            _ => {
                self.count_uncached(count);
                return self
                    .compartments
                    .read()
                    .get(&caller)
                    .map(|c| c.policy.fd_grant(fd))
                    .ok_or(WedgeError::UnknownCompartment(caller));
            }
        };
        let mut c = cache.lock();
        self.cache_sync(caller, &mut c)?;
        c.count(count);
        if c.unconfined {
            return Ok(Some(FdProt::ReadWrite));
        }
        if let Some(prot) = c.fds.get(&fd) {
            return Ok(Some(*prot));
        }
        let grant = match (&self.oplog, &c.replica) {
            (Some(log), Some(replica)) => {
                replica.sync_to(log, c.seen_version);
                replica
                    .fd_grant(caller, fd)
                    .ok_or(WedgeError::UnknownCompartment(caller))?
            }
            _ => self
                .compartments
                .read()
                .get(&caller)
                .map(|e| e.policy.fd_grant(fd))
                .ok_or(WedgeError::UnknownCompartment(caller))?,
        };
        if let Some(prot) = grant {
            c.fds.insert(fd, prot);
        }
        Ok(grant)
    }

    // ------------------------------------------------------------------
    // Compartment lifecycle
    // ------------------------------------------------------------------

    /// Snapshot effect for `target`'s current policy, for the op log.
    fn snapshot_of(target: CompartmentId, policy: &SecurityPolicy) -> PolicyOp {
        PolicyOp::Snapshot {
            target,
            view: Box::new(SnapshotView {
                unconfined: policy.is_unconfined(),
                mem: policy.mem_grants().iter().map(|(t, p)| (*t, *p)).collect(),
                fds: policy.fd_grants().iter().map(|(f, p)| (*f, *p)).collect(),
            }),
        }
    }

    /// Publish one effect to the op log, if this kernel has one. Must be
    /// called while holding the compartments write lock (see
    /// [`OpLog::publish`]).
    fn publish_op(&self, op: PolicyOp) {
        if let Some(log) = &self.oplog {
            log.publish(vec![op]);
        }
    }

    /// Create the unconfined root compartment and return its context.
    pub fn create_root_compartment(self: &Arc<Self>, name: &str) -> SthreadCtx {
        let id = CompartmentId(self.next_compartment.fetch_add(1, Ordering::Relaxed));
        {
            let mut comps = self.compartments.write();
            comps.insert(
                id,
                CompartmentEntry::new(name, None, SecurityPolicy::unconfined()),
            );
            self.publish_op(PolicyOp::Snapshot {
                target: id,
                view: Box::new(SnapshotView {
                    unconfined: true,
                    mem: Vec::new(),
                    fds: Vec::new(),
                }),
            });
        }
        SthreadCtx::new(self.clone(), id, name)
    }

    /// Register a new child compartment. Validates the subset rule and
    /// instantiates the callgate grants carried by `policy`.
    pub(crate) fn register_child(
        &self,
        parent: CompartmentId,
        name: &str,
        policy: &SecurityPolicy,
        kind: ChildKind,
    ) -> Result<CompartmentId, WedgeError> {
        let mut comps = self.compartments.write();
        let parent_entry = comps
            .get(&parent)
            .ok_or(WedgeError::UnknownCompartment(parent))?;
        let parent_policy = parent_entry.policy.clone();

        if kind == ChildKind::Sthread {
            let transitions = self.control.lock().transitions.clone();
            parent_policy
                .validate_child(policy, &transitions)
                .map_err(|detail| WedgeError::PrivilegeEscalation { detail })?;
            // Private tags can never be named in a grant. (Lock order:
            // compartments → segment shard.)
            for tag in policy.mem_grants().keys() {
                if let Some(seg) = self.shard(*tag).read().segments.get(tag) {
                    if seg.private {
                        return Err(WedgeError::PrivateTag(*tag));
                    }
                }
            }
        }

        // Inherit uid / fs_root from the parent when the child policy kept
        // the defaults (mirrors fork semantics).
        let mut child_policy = policy.clone();
        if child_policy.uid == Uid::ROOT && !parent_policy.uid.is_root() {
            child_policy.uid = parent_policy.uid;
        }
        if child_policy.fs_root == "/" && parent_policy.fs_root != "/" {
            child_policy.fs_root = parent_policy.fs_root.clone();
        }

        let id = CompartmentId(self.next_compartment.fetch_add(1, Ordering::Relaxed));

        // Instantiate callgate grants: the instance's permissions were
        // validated against the *creator* (the parent) above.
        {
            let mut control = self.control.lock();
            for grant in policy.callgate_grants() {
                if !control.callgate_entries.contains_key(&grant.entry) {
                    return Err(WedgeError::UnknownCallgate(grant.entry));
                }
                control.callgate_instances.insert(
                    (id, grant.entry),
                    CallgateInstance {
                        policy: (*grant.policy).clone(),
                        trusted: grant.trusted.clone(),
                        creator: parent,
                    },
                );
            }
        }

        // Publish the child's creation snapshot before the compartments
        // lock drops: replicas learn of the compartment strictly before
        // any context for it can issue a read.
        self.publish_op(Kernel::snapshot_of(id, &child_policy));
        comps.insert(id, CompartmentEntry::new(name, Some(parent), child_policy));
        match kind {
            ChildKind::Activation => StatCells::bump(&self.stats.callgate_invocations),
            ChildKind::Sthread | ChildKind::PooledWorker => {
                StatCells::bump(&self.stats.sthreads_created)
            }
        }
        Ok(id)
    }

    /// Mark a compartment as exited.
    pub(crate) fn compartment_exited(&self, id: CompartmentId) {
        if let Some(c) = self.compartments.write().get_mut(&id) {
            c.alive = false;
        }
    }

    // ------------------------------------------------------------------
    // The flat-combining mutation appender
    // ------------------------------------------------------------------

    /// Route one policy mutation through the flat-combining appender (the
    /// op-log profile's only mutation path). The calling thread enqueues
    /// its op; if another thread is already combining, it parks until its
    /// result arrives — otherwise it *becomes* the combiner and drains
    /// every queued op in batches, each batch validated and applied under
    /// a single compartments-lock acquisition and published to the log
    /// under a single tail acquisition. Completions are signalled only
    /// after the batch's tail store, so a returned mutation is visible to
    /// every later-starting read, on every replica.
    ///
    /// The caller must hold no kernel locks (the combiner takes the
    /// compartments write lock).
    fn combine(&self, op: PolicyMutation) -> Result<(), WedgeError> {
        let log = self
            .oplog
            .as_ref()
            .expect("combine is only reachable on the op-log profile");
        // Solo fast path: a mutator that wins the appender lock outright
        // *is* the combiner of a batch of one — apply and publish
        // directly, with no queue round-trip, no waiter allocation and no
        // parking. Log order is pinned by the compartments lock either
        // way, so ops published here serialise correctly against any
        // combiner draining concurrently queued mutations.
        if let Some(mut comps) = self.compartments.try_write() {
            return SOLO_EFFECTS.with(|cell| {
                let mut effects = cell.borrow_mut();
                let result = self.apply_mutation(&mut comps, &op, &mut effects);
                self.publish_batch(&comps, log, &mut effects);
                result
            });
        }
        let waiter = Arc::new(MutWaiter::new());
        let scratch = {
            let mut queue = self.mutations.lock();
            queue.items.push((op, waiter.clone()));
            if queue.combiner_active {
                drop(queue);
                return waiter.wait();
            }
            queue.combiner_active = true;
            std::mem::take(&mut queue.scratch)
        };
        self.drain_as_combiner(log, scratch);
        waiter.wait()
    }

    /// The combiner's drain loop: batch everything queued under a single
    /// compartments-lock + log-tail acquisition per round, until the queue
    /// stays empty. (Like the cachenet ring's batch sender, a sustained
    /// mutation storm keeps the current combiner working, which is exactly
    /// the batching the design wants.) The caller must have set
    /// `combiner_active`; this clears it before returning.
    fn drain_as_combiner(&self, log: &OpLog, mut effects: Vec<PolicyOp>) {
        loop {
            let batch = {
                let mut queue = self.mutations.lock();
                if queue.items.is_empty() {
                    queue.combiner_active = false;
                    queue.scratch = effects;
                    break;
                }
                std::mem::take(&mut queue.items)
            };
            let mut results = Vec::with_capacity(batch.len());
            {
                let mut comps = self.compartments.write();
                for (op, _) in &batch {
                    results.push(self.apply_mutation(&mut comps, op, &mut effects));
                }
                self.publish_batch(&comps, log, &mut effects);
            }
            log.note_combined(batch.len());
            for ((_, waiter), result) in batch.iter().zip(results) {
                waiter.fulfill(result);
            }
        }
    }

    /// Publish a batch's effects under one tail acquisition (the caller
    /// holds the compartments write lock, which pins log order), then bump
    /// each target's version cell. The tail store happening *before* the
    /// bump is what lets [`Kernel::cache_sync_replica`]'s warm check trust
    /// the cell: a cache that observes a bumped cell is guaranteed to load
    /// a tail covering the op that caused it. Drains `effects` (keeping
    /// its capacity for reuse) and finds the bump targets by scanning the
    /// suffix just published, so the whole path allocates nothing.
    fn publish_batch(
        &self,
        comps: &HashMap<CompartmentId, CompartmentEntry>,
        log: &OpLog,
        effects: &mut Vec<PolicyOp>,
    ) {
        if effects.is_empty() {
            return;
        }
        if effects.len() == 1 {
            // The common case (one grant or revoke): remember the single
            // target and skip the post-publish suffix scan.
            let target = effects[0].target();
            log.publish_from(effects);
            if let Some(entry) = comps.get(&target) {
                entry.bump_epoch();
            }
            return;
        }
        let count = effects.len() as u64;
        let new_tail = log.publish_from(effects);
        log.scan(new_tail - count, new_tail, |op| {
            if let Some(entry) = comps.get(&op.target()) {
                entry.bump_epoch();
            }
        });
    }

    /// Validate and apply one mutation against the authoritative table,
    /// collecting its log effect. Runs on the combiner's thread with the
    /// compartments write lock held.
    fn apply_mutation(
        &self,
        comps: &mut HashMap<CompartmentId, CompartmentEntry>,
        op: &PolicyMutation,
        effects: &mut Vec<PolicyOp>,
    ) -> Result<(), WedgeError> {
        match op {
            PolicyMutation::MemAdd {
                caller,
                target,
                tag,
                prot,
            } => self.apply_policy_add(comps, *caller, *target, *tag, *prot, Some(effects)),
            PolicyMutation::MemDel {
                caller,
                target,
                tag,
            } => self.apply_policy_del(comps, *caller, *target, *tag, Some(effects)),
            PolicyMutation::Widen { target, extra } => {
                self.apply_widen_policy(comps, *target, extra, Some(effects));
                Ok(())
            }
            PolicyMutation::Transition {
                caller,
                target,
                uid,
                fs_root,
            } => self.apply_transition_identity(
                comps,
                *caller,
                *target,
                *uid,
                fs_root.as_deref(),
                Some(effects),
            ),
            PolicyMutation::ScrubReset { target, baseline } => {
                self.apply_scrub_reset(comps, *target, baseline, Some(effects))
            }
        }
    }

    /// Change a compartment's uid and filesystem root. Only a caller whose
    /// own uid is root may do this — the idiom used by the OpenSSH
    /// authentication callgates ("the callgate, upon successful
    /// authentication, changes the worker's user ID and filesystem root").
    pub(crate) fn transition_identity(
        &self,
        caller: CompartmentId,
        target: CompartmentId,
        new_uid: Uid,
        new_fs_root: Option<&str>,
    ) -> Result<(), WedgeError> {
        if self.oplog.is_some() {
            return self.combine(PolicyMutation::Transition {
                caller,
                target,
                uid: new_uid,
                fs_root: new_fs_root.map(str::to_string),
            });
        }
        let mut comps = self.compartments.write();
        self.apply_transition_identity(&mut comps, caller, target, new_uid, new_fs_root, None)
    }

    fn apply_transition_identity(
        &self,
        comps: &mut HashMap<CompartmentId, CompartmentEntry>,
        caller: CompartmentId,
        target: CompartmentId,
        new_uid: Uid,
        new_fs_root: Option<&str>,
        effects: Option<&mut Vec<PolicyOp>>,
    ) -> Result<(), WedgeError> {
        let caller_uid = comps
            .get(&caller)
            .ok_or(WedgeError::UnknownCompartment(caller))?
            .policy
            .uid;
        if !caller_uid.is_root() {
            return Err(WedgeError::IdentityDenied(format!(
                "caller uid {} is not root",
                caller_uid.0
            )));
        }
        let target_entry = comps
            .get_mut(&target)
            .ok_or(WedgeError::UnknownCompartment(target))?;
        target_entry.policy.uid = new_uid;
        if let Some(root) = new_fs_root {
            target_entry.policy.fs_root = root.to_string();
        }
        match effects {
            // Identity itself is not replicated (uid checks read the
            // authoritative table), but the snapshot keeps the "once this
            // returns, later reads revalidate" contract uniform across
            // every mutation kind; `publish_batch` bumps after the tail
            // store.
            Some(effects) => effects.push(Kernel::snapshot_of(target, &target_entry.policy)),
            None => target_entry.bump_epoch(),
        }
        Ok(())
    }

    /// The uid a compartment currently runs as.
    pub fn uid_of(&self, id: CompartmentId) -> Result<Uid, WedgeError> {
        Ok(self.policy_of(id)?.uid)
    }

    /// Add a runtime memory grant to `target`'s policy (`policy_add`). The
    /// granter must itself hold a grant that allows delegating `prot` (or
    /// be unconfined), and private tags can never be named in another
    /// compartment's policy. On the op-log kernel the resulting grant is
    /// published to the log before this returns; on the epoch tiers the
    /// target's epoch bump plays that role.
    pub(crate) fn policy_add(
        &self,
        caller: CompartmentId,
        target: CompartmentId,
        tag: Tag,
        prot: MemProt,
    ) -> Result<(), WedgeError> {
        if self.oplog.is_some() {
            return self.combine(PolicyMutation::MemAdd {
                caller,
                target,
                tag,
                prot,
            });
        }
        let mut comps = self.compartments.write();
        self.apply_policy_add(&mut comps, caller, target, tag, prot, None)
    }

    fn apply_policy_add(
        &self,
        comps: &mut HashMap<CompartmentId, CompartmentEntry>,
        caller: CompartmentId,
        target: CompartmentId,
        tag: Tag,
        prot: MemProt,
        effects: Option<&mut Vec<PolicyOp>>,
    ) -> Result<(), WedgeError> {
        let caller_entry = comps
            .get(&caller)
            .ok_or(WedgeError::UnknownCompartment(caller))?;
        if !caller_entry.policy.is_unconfined() {
            match caller_entry.policy.mem_grant(tag) {
                Some(have) if have.allows_delegation_of(prot) => {}
                _ => {
                    return Err(WedgeError::PrivilegeEscalation {
                        detail: format!("runtime grant {tag}:{prot:?} exceeds caller's privileges"),
                    })
                }
            }
        }
        if caller != target {
            if let Some(seg) = self.shard(tag).read().segments.get(&tag) {
                if seg.private {
                    return Err(WedgeError::PrivateTag(tag));
                }
            }
        }
        let target_entry = comps
            .get_mut(&target)
            .ok_or(WedgeError::UnknownCompartment(target))?;
        // With an effects sink the post-publish bump in
        // [`Kernel::publish_batch`] notifies caches (tail first, then
        // cell); bumping here too would be a wasted SeqCst RMW. The
        // epoch tiers (no sink) bump directly.
        let deferred_bump = effects.is_some();
        if !target_entry.policy.is_unconfined() {
            target_entry.policy.sc_mem_add(tag, prot);
            if let Some(effects) = effects {
                // Record the *resulting* grant read back from the table,
                // so replay is apply-only and cannot diverge.
                effects.push(PolicyOp::MemSet {
                    target,
                    tag,
                    prot: target_entry.policy.mem_grant(tag),
                });
            }
        }
        if !deferred_bump {
            target_entry.bump_epoch();
        }
        Ok(())
    }

    /// Revoke a memory grant from `target`'s policy (`policy_del`). Allowed
    /// for the unconfined root, the target's parent, or the target itself.
    /// Once this returns, no access started afterwards can succeed through
    /// a stale cached grant: the revocation's log publication (or, on the
    /// epoch tiers, the epoch bump) happens before the caller is released.
    pub(crate) fn policy_del(
        &self,
        caller: CompartmentId,
        target: CompartmentId,
        tag: Tag,
    ) -> Result<(), WedgeError> {
        if self.oplog.is_some() {
            return self.combine(PolicyMutation::MemDel {
                caller,
                target,
                tag,
            });
        }
        let mut comps = self.compartments.write();
        self.apply_policy_del(&mut comps, caller, target, tag, None)
    }

    fn apply_policy_del(
        &self,
        comps: &mut HashMap<CompartmentId, CompartmentEntry>,
        caller: CompartmentId,
        target: CompartmentId,
        tag: Tag,
        effects: Option<&mut Vec<PolicyOp>>,
    ) -> Result<(), WedgeError> {
        let caller_unconfined = comps
            .get(&caller)
            .ok_or(WedgeError::UnknownCompartment(caller))?
            .policy
            .is_unconfined();
        let target_entry = comps
            .get_mut(&target)
            .ok_or(WedgeError::UnknownCompartment(target))?;
        if !(caller_unconfined || caller == target || target_entry.parent == Some(caller)) {
            return Err(WedgeError::PrivilegeEscalation {
                detail: format!("{caller} may not revoke grants from {target}"),
            });
        }
        target_entry.policy.sc_mem_del(tag);
        match effects {
            Some(effects) => effects.push(PolicyOp::MemSet {
                target,
                tag,
                prot: None,
            }),
            // No effects sink (epoch tiers): bump directly. The op-log
            // path defers to `publish_batch`'s post-publish bump.
            None => target_entry.bump_epoch(),
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Tagged memory
    // ------------------------------------------------------------------

    /// `tag_new()`: create a tag backed by a (possibly recycled) segment and
    /// grant the creating compartment read-write access to it.
    pub(crate) fn tag_new(&self, caller: CompartmentId) -> Result<Tag, WedgeError> {
        self.tag_new_inner(caller, false)
    }

    fn tag_new_inner(&self, caller: CompartmentId, private: bool) -> Result<Tag, WedgeError> {
        let mut comps = self.compartments.write();
        let entry = comps
            .get_mut(&caller)
            .ok_or(WedgeError::UnknownCompartment(caller))?;
        self.tag_new_locked(caller, entry, private)
    }

    /// The body of `tag_new`, for callers already holding the compartments
    /// write lock (`entry` is the caller's table entry). Lock order:
    /// compartments (held) → tag cache / segment shard.
    fn tag_new_locked(
        &self,
        caller: CompartmentId,
        entry: &mut CompartmentEntry,
        private: bool,
    ) -> Result<Tag, WedgeError> {
        let segment = self
            .tag_cache
            .lock()
            .acquire_default()
            .map_err(|e| WedgeError::Alloc(e.to_string()))?;
        let tag = Tag(self.next_tag.fetch_add(1, Ordering::Relaxed));
        self.shard(tag).write().segments.insert(
            tag,
            SegmentEntry {
                segment,
                owner: caller,
                private,
            },
        );
        StatCells::bump(&self.stats.tags_created);
        // The creator implicitly gains read-write access (it created the
        // region, exactly as mmap would map it into the caller). The
        // caller already holds the compartments write lock, so the effect
        // is appended directly — no combiner round-trip.
        if !entry.policy.is_unconfined() {
            entry.policy.sc_mem_add(tag, MemProt::ReadWrite);
            // Tail before bump: a cache that sees the bumped cell must
            // load a tail covering this op (see `publish_batch`).
            self.publish_op(PolicyOp::MemSet {
                target: caller,
                tag,
                prot: Some(MemProt::ReadWrite),
            });
            entry.bump_epoch();
        }
        Ok(tag)
    }

    /// `tag_delete()`: release a tag's segment back to the userland cache.
    pub(crate) fn tag_delete(&self, caller: CompartmentId, tag: Tag) -> Result<(), WedgeError> {
        // The caller's standing is read first (lock order: compartments
        // before segment shards), but reported second, matching the
        // pre-shard error precedence (unknown tag wins).
        let caller_unconfined = self
            .compartments
            .read()
            .get(&caller)
            .map(|c| c.policy.is_unconfined());
        let mut shard = self.shard(tag).write();
        let entry = shard
            .segments
            .get(&tag)
            .ok_or(WedgeError::UnknownTag(tag))?;
        if entry.owner != caller {
            match caller_unconfined {
                None => return Err(WedgeError::UnknownCompartment(caller)),
                Some(false) => {
                    return Err(WedgeError::ProtectionFault {
                        compartment: caller,
                        tag,
                        mode: AccessMode::Write,
                    })
                }
                Some(true) => {}
            }
        }
        let entry = shard.segments.remove(&tag).expect("checked above");
        shard.overlays.retain(|(_, t), _| *t != tag);
        drop(shard);
        self.tag_cache.lock().release(entry.segment);
        StatCells::bump(&self.stats.tags_deleted);
        Ok(())
    }

    /// `smalloc()`: allocate from a tagged segment.
    pub(crate) fn smalloc(
        &self,
        caller: CompartmentId,
        size: usize,
        tag: Tag,
    ) -> Result<SBuf, WedgeError> {
        self.smalloc_cached(caller, size, tag, None)
    }

    pub(crate) fn smalloc_cached(
        &self,
        caller: CompartmentId,
        size: usize,
        tag: Tag,
        cache: Option<&Mutex<PermCache>>,
    ) -> Result<SBuf, WedgeError> {
        let _legacy = self.legacy_section(caller);
        let grant = self.resolve_mem_grant(caller, tag, cache, StatKind::None)?;
        let event = {
            let mut shard = self.shard(tag).write();
            let entry = shard
                .segments
                .get_mut(&tag)
                .ok_or(WedgeError::UnknownTag(tag))?;
            match grant {
                Some(prot) if prot.permits(AccessMode::Write) || prot.permits(AccessMode::Read) => {
                }
                _ => {
                    return Err(WedgeError::ProtectionFault {
                        compartment: caller,
                        tag,
                        mode: AccessMode::Write,
                    })
                }
            }
            let private = entry.private;
            let offset = entry
                .segment
                .arena_mut()
                .alloc(size)
                .map_err(|e| WedgeError::Alloc(e.to_string()))?;
            if private {
                StatCells::bump(&self.stats.private_allocs);
            } else {
                StatCells::bump(&self.stats.smallocs);
            }
            AllocEvent {
                compartment: caller,
                tag,
                alloc_offset: offset,
                size,
                private,
            }
        };
        if let Some(tracer) = self.tracer() {
            tracer.on_alloc(&event);
        }
        Ok(SBuf::new(event.tag, event.alloc_offset, event.size))
    }

    /// Allocate from the caller's private (untagged) segment, creating it on
    /// first use. Private segments can never be granted to other
    /// compartments.
    pub(crate) fn private_alloc(
        &self,
        caller: CompartmentId,
        size: usize,
        cache: Option<&Mutex<PermCache>>,
    ) -> Result<SBuf, WedgeError> {
        // Check-and-create atomically under the compartments write lock:
        // two threads racing the first allocation must not each create a
        // private segment (the loser's would leak, unreachable, until the
        // next scrub).
        let tag = {
            let mut comps = self.compartments.write();
            let entry = comps
                .get_mut(&caller)
                .ok_or(WedgeError::UnknownCompartment(caller))?;
            match entry.private_tag {
                Some(tag) => tag,
                None => {
                    let tag = self.tag_new_locked(caller, entry, true)?;
                    entry.private_tag = Some(tag);
                    tag
                }
            }
        };
        self.smalloc_cached(caller, size, tag, cache)
    }

    /// `sfree()`: free an allocation.
    pub(crate) fn sfree(
        &self,
        caller: CompartmentId,
        buf: &SBuf,
        cache: Option<&Mutex<PermCache>>,
    ) -> Result<(), WedgeError> {
        let grant = self.resolve_mem_grant(caller, buf.tag, cache, StatKind::None)?;
        if grant.is_none() {
            return Err(WedgeError::ProtectionFault {
                compartment: caller,
                tag: buf.tag,
                mode: AccessMode::Write,
            });
        }
        let mut shard = self.shard(buf.tag).write();
        let entry = shard
            .segments
            .get_mut(&buf.tag)
            .ok_or(WedgeError::UnknownTag(buf.tag))?;
        entry
            .segment
            .arena_mut()
            .free(buf.offset)
            .map_err(|e| WedgeError::Alloc(e.to_string()))?;
        Ok(())
    }

    /// Record a violation and decide whether the access proceeds (emulation
    /// mode) or faults. A dangling `CompartmentId` fails loudly with
    /// [`WedgeError::UnknownCompartment`] instead of tracing as `""`.
    fn deny(
        &self,
        caller: CompartmentId,
        region: MemRegion,
        mode: AccessMode,
    ) -> Result<(), WedgeError> {
        let name = self.name_of(caller)?;
        let emulated = self.emulation.load(Ordering::Relaxed);
        self.violations.lock().push(ViolationRecord {
            compartment: caller,
            compartment_name: name.clone(),
            region: region.clone(),
            mode,
            emulated,
        });
        if emulated {
            StatCells::bump(&self.stats.emulated_violations);
        } else {
            StatCells::bump(&self.stats.faults);
        }
        if let Some(telemetry) = self.telemetry.get() {
            telemetry.emit_with(|| TelemetryEvent::Violation {
                compartment: name.clone(),
                emulated,
            });
        }
        if let Some(tracer) = self.tracer() {
            tracer.on_violation(&ViolationEvent {
                compartment: caller,
                compartment_name: name,
                region: region.clone(),
                mode,
                emulated,
            });
        }
        if emulated {
            Ok(())
        } else {
            match region {
                MemRegion::Tagged { tag, .. } => Err(WedgeError::ProtectionFault {
                    compartment: caller,
                    tag,
                    mode,
                }),
                MemRegion::Fd { fd, .. } => Err(WedgeError::FdFault {
                    compartment: caller,
                    fd,
                    mode,
                }),
                MemRegion::Global { .. } => Err(WedgeError::ProtectionFault {
                    compartment: caller,
                    tag: Tag(0),
                    mode,
                }),
            }
        }
    }

    /// Report an access to the tracer. The region (and the caller-name
    /// clone) is only constructed when a tracer is actually installed, so
    /// the untraced fast path allocates nothing here.
    fn emit_access(
        &self,
        caller: CompartmentId,
        region: impl FnOnce() -> MemRegion,
        offset: usize,
        len: usize,
        mode: AccessMode,
        allowed: bool,
    ) {
        let Some(tracer) = self.tracer() else { return };
        // Compartments are never removed from the table (exit only clears
        // `alive`), and every caller of this path has already been
        // validated, so a missing name cannot happen here.
        let Ok(name) = self.name_of(caller) else {
            return;
        };
        tracer.on_access(&MemAccessEvent {
            compartment: caller,
            compartment_name: name,
            region: region(),
            offset,
            len,
            mode,
            allowed,
        });
    }

    /// The shared pre-shard pipeline for tagged accesses: resolve the grant
    /// (through the cache), record/deny violations, and bounds-check the
    /// request against the buffer — emitting an `allowed = false` trace
    /// event on every failing exit. Returns the grant plus whether the
    /// policy permitted the access (`false` only when emulation mode let a
    /// violation proceed). Keeping this single-sourced keeps the trace
    /// contract identical across reads, writes and borrowed guards.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn mem_access_check(
        &self,
        caller: CompartmentId,
        buf: &SBuf,
        offset: usize,
        len: usize,
        mode: AccessMode,
        cache: Option<&Mutex<PermCache>>,
        kind: StatKind,
    ) -> Result<(Option<MemProt>, bool), WedgeError> {
        let region = MemRegion::Tagged {
            tag: buf.tag,
            alloc_offset: buf.offset,
        };
        if self.legacy {
            // The old kernel's per-access segment + overlay lookups were
            // SipHash probes; pay them here since the real tables moved to
            // `IdHashMap`. `black_box` keeps the pure hashes from being
            // optimised away.
            std::hint::black_box(self.legacy_segments_probe.get(&buf.tag));
            std::hint::black_box(self.legacy_overlays_probe.get(&(caller, buf.tag)));
        }
        let grant = self.resolve_mem_grant(caller, buf.tag, cache, kind)?;
        let permitted = grant.map(|g| g.permits(mode)).unwrap_or(false);
        if !permitted {
            if let Err(e) = self.deny(caller, region.clone(), mode) {
                self.emit_access(caller, || region, offset, len, mode, false);
                return Err(e);
            }
        }
        if offset
            .checked_add(len)
            .map(|end| end > buf.len)
            .unwrap_or(true)
        {
            self.emit_access(caller, || region, offset, len, mode, false);
            return Err(WedgeError::OutOfBounds {
                tag: buf.tag,
                offset: buf.offset + offset,
                len,
            });
        }
        Ok((grant, permitted))
    }

    /// The shared permission/bounds pipeline for tagged reads: on success,
    /// `sink` is invoked exactly once with the source bytes, under the
    /// shard's read lock. Denied and out-of-bounds exits always produce a
    /// trace event (allowed = false) before returning the error.
    fn mem_read_core(
        &self,
        caller: CompartmentId,
        buf: &SBuf,
        offset: usize,
        len: usize,
        cache: Option<&Mutex<PermCache>>,
        sink: impl FnOnce(&[u8]),
    ) -> Result<(), WedgeError> {
        let _legacy = self.legacy_section(caller);
        let region = MemRegion::Tagged {
            tag: buf.tag,
            alloc_offset: buf.offset,
        };
        let (_, permitted) = self.mem_access_check(
            caller,
            buf,
            offset,
            len,
            AccessMode::Read,
            cache,
            StatKind::MemRead,
        )?;
        let start = buf.offset + offset;
        {
            let shard = self.shard(buf.tag).read();
            let Some(entry) = shard.segments.get(&buf.tag) else {
                drop(shard);
                self.emit_access(caller, || region, offset, len, AccessMode::Read, false);
                return Err(WedgeError::UnknownTag(buf.tag));
            };
            // One pass validates the allocation is live and yields its bytes.
            let Some(alloc) = entry.segment.arena().live_slice(buf.offset, buf.len) else {
                drop(shard);
                self.emit_access(caller, || region, offset, len, AccessMode::Read, false);
                return Err(WedgeError::OutOfBounds {
                    tag: buf.tag,
                    offset: buf.offset,
                    len: buf.len,
                });
            };
            // Copy-on-write view: if this compartment has a private overlay
            // for the tag, reads come from it. The emptiness check keeps the
            // common no-overlay case free of a second map lookup (the old
            // kernel's unconditional overlay probe is reproduced for the
            // legacy profile in `mem_access_check`).
            let overlay = if shard.overlays.is_empty() {
                None
            } else {
                shard.overlays.get(&(caller, buf.tag))
            };
            if let Some(overlay) = overlay {
                sink(&overlay[start..start + len]);
            } else {
                sink(&alloc[offset..offset + len]);
            }
        }
        self.emit_access(caller, || region, offset, len, AccessMode::Read, permitted);
        Ok(())
    }

    /// Read `len` bytes at `offset` within a tagged buffer.
    #[cfg_attr(not(test), allow(dead_code))] // uncached convenience, exercised by unit tests
    pub(crate) fn mem_read(
        &self,
        caller: CompartmentId,
        buf: &SBuf,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, WedgeError> {
        self.mem_read_vec(caller, buf, offset, len, None)
    }

    /// [`Kernel::mem_read`] through a per-sthread permission cache.
    pub(crate) fn mem_read_vec(
        &self,
        caller: CompartmentId,
        buf: &SBuf,
        offset: usize,
        len: usize,
        cache: Option<&Mutex<PermCache>>,
    ) -> Result<Vec<u8>, WedgeError> {
        let mut out = Vec::new();
        self.mem_read_core(caller, buf, offset, len, cache, |src| {
            out.extend_from_slice(src)
        })?;
        Ok(out)
    }

    /// Zero-copy read: fill `dst` from the tagged buffer. With a warm
    /// permission cache and no tracer installed this performs no heap
    /// allocation at all.
    #[inline]
    pub(crate) fn mem_read_into(
        &self,
        caller: CompartmentId,
        buf: &SBuf,
        offset: usize,
        dst: &mut [u8],
        cache: Option<&Mutex<PermCache>>,
    ) -> Result<(), WedgeError> {
        self.mem_read_core(caller, buf, offset, dst.len(), cache, |src| {
            dst.copy_from_slice(src)
        })
    }

    /// Borrowed zero-copy read: returns a guard dereferencing to the bytes,
    /// holding the segment shard's read lock for its lifetime.
    pub(crate) fn mem_read_guard(
        &self,
        caller: CompartmentId,
        buf: &SBuf,
        offset: usize,
        len: usize,
        cache: Option<&Mutex<PermCache>>,
    ) -> Result<MemReadGuard<'_>, WedgeError> {
        let _legacy = self.legacy_section(caller);
        let region = MemRegion::Tagged {
            tag: buf.tag,
            alloc_offset: buf.offset,
        };
        let (_, permitted) = self.mem_access_check(
            caller,
            buf,
            offset,
            len,
            AccessMode::Read,
            cache,
            StatKind::MemRead,
        )?;
        // Resolve the tracer + name BEFORE taking the shard lock: the lock
        // order is compartments → segment shard, and the event must be
        // emitted while the guard pins the shard.
        let traced = match self.tracer() {
            Some(tracer) => Some((tracer, self.name_of(caller)?)),
            None => None,
        };
        let shard = self.shard(buf.tag).read();
        let live = shard
            .segments
            .get(&buf.tag)
            .map(|e| e.segment.arena().contains_live_range(buf.offset, buf.len));
        match live {
            None => {
                drop(shard);
                self.emit_access(caller, || region, offset, len, AccessMode::Read, false);
                return Err(WedgeError::UnknownTag(buf.tag));
            }
            Some(false) => {
                drop(shard);
                self.emit_access(caller, || region, offset, len, AccessMode::Read, false);
                return Err(WedgeError::OutOfBounds {
                    tag: buf.tag,
                    offset: buf.offset,
                    len: buf.len,
                });
            }
            Some(true) => {}
        }
        let overlay = shard
            .overlays
            .contains_key(&(caller, buf.tag))
            .then_some((caller, buf.tag));
        if let Some((tracer, name)) = traced {
            tracer.on_access(&MemAccessEvent {
                compartment: caller,
                compartment_name: name,
                region,
                offset,
                len,
                mode: AccessMode::Read,
                allowed: permitted,
            });
        }
        Ok(MemReadGuard {
            shard,
            overlay,
            tag: buf.tag,
            start: buf.offset + offset,
            len,
        })
    }

    /// Write `data` at `offset` within a tagged buffer.
    pub(crate) fn mem_write(
        &self,
        caller: CompartmentId,
        buf: &SBuf,
        offset: usize,
        data: &[u8],
    ) -> Result<(), WedgeError> {
        self.mem_write_cached(caller, buf, offset, data, None)
    }

    /// [`Kernel::mem_write`] through a per-sthread permission cache.
    pub(crate) fn mem_write_cached(
        &self,
        caller: CompartmentId,
        buf: &SBuf,
        offset: usize,
        data: &[u8],
        cache: Option<&Mutex<PermCache>>,
    ) -> Result<(), WedgeError> {
        let _legacy = self.legacy_section(caller);
        let region = MemRegion::Tagged {
            tag: buf.tag,
            alloc_offset: buf.offset,
        };
        let (grant, permitted) = self.mem_access_check(
            caller,
            buf,
            offset,
            data.len(),
            AccessMode::Write,
            cache,
            StatKind::MemWrite,
        )?;
        let writes_shared = grant.map(|g| g.writes_shared()).unwrap_or(true);
        let start = buf.offset + offset;
        {
            let mut shard = self.shard(buf.tag).write();
            let SegmentShard { segments, overlays } = &mut *shard;
            let Some(entry) = segments.get_mut(&buf.tag) else {
                drop(shard);
                self.emit_access(
                    caller,
                    || region,
                    offset,
                    data.len(),
                    AccessMode::Write,
                    false,
                );
                return Err(WedgeError::UnknownTag(buf.tag));
            };
            // Liveness covers both branches: a copy-on-write holder must not
            // write through a freed allocation either.
            if !entry
                .segment
                .arena()
                .contains_live_range(buf.offset, buf.len)
            {
                drop(shard);
                self.emit_access(
                    caller,
                    || region,
                    offset,
                    data.len(),
                    AccessMode::Write,
                    false,
                );
                return Err(WedgeError::OutOfBounds {
                    tag: buf.tag,
                    offset: buf.offset,
                    len: buf.len,
                });
            }
            if writes_shared {
                entry.segment.arena_mut().data_mut()[start..start + data.len()]
                    .copy_from_slice(data);
            } else {
                // Copy-on-write: materialise the overlay on first write.
                let overlay = overlays
                    .entry((caller, buf.tag))
                    .or_insert_with(|| entry.segment.arena().data().to_vec());
                overlay[start..start + data.len()].copy_from_slice(data);
            }
        }
        self.emit_access(
            caller,
            || region,
            offset,
            data.len(),
            AccessMode::Write,
            permitted,
        );
        Ok(())
    }

    /// Is the tag private (backing untagged allocations)?
    pub fn is_private_tag(&self, tag: Tag) -> bool {
        self.shard(tag)
            .read()
            .segments
            .get(&tag)
            .map(|s| s.private)
            .unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Globals and boundary variables (the pre-main snapshot)
    // ------------------------------------------------------------------

    /// Register a global variable as part of the pre-`main` snapshot. Every
    /// compartment receives a copy-on-write view of it by default.
    pub fn register_global(&self, name: &str, initial: &[u8]) {
        self.control.lock().globals.insert(
            name.to_string(),
            GlobalVar {
                initial: initial.to_vec(),
                boundary: None,
            },
        );
    }

    /// Declare a global with `BOUNDARY_VAR`: the variable is carved out of
    /// the snapshot and placed in tagged memory shared by all globals with
    /// the same `boundary_id`. Compartments need an explicit grant on the
    /// boundary tag to touch it.
    pub(crate) fn boundary_var(
        &self,
        caller: CompartmentId,
        name: &str,
        initial: &[u8],
        boundary_id: u32,
    ) -> Result<SBuf, WedgeError> {
        let existing = self.control.lock().boundary_tags.get(&boundary_id).copied();
        let tag = match existing {
            Some(tag) => tag,
            None => {
                let tag = self.tag_new(caller)?;
                self.control.lock().boundary_tags.insert(boundary_id, tag);
                tag
            }
        };
        let buf = self.smalloc(caller, initial.len().max(1), tag)?;
        self.mem_write(caller, &buf, 0, initial)?;
        self.control.lock().globals.insert(
            name.to_string(),
            GlobalVar {
                initial: initial.to_vec(),
                boundary: Some((boundary_id, buf)),
            },
        );
        Ok(buf)
    }

    /// `BOUNDARY_TAG`: the tag protecting all globals declared with the
    /// given boundary id.
    pub fn boundary_tag(&self, boundary_id: u32) -> Result<Tag, WedgeError> {
        self.control
            .lock()
            .boundary_tags
            .get(&boundary_id)
            .copied()
            .ok_or_else(|| WedgeError::UnknownGlobal(format!("boundary {boundary_id}")))
    }

    /// The tagged buffer behind a boundary global.
    pub fn boundary_buf(&self, name: &str) -> Result<SBuf, WedgeError> {
        let control = self.control.lock();
        let var = control
            .globals
            .get(name)
            .ok_or_else(|| WedgeError::UnknownGlobal(name.to_string()))?;
        var.boundary
            .map(|(_, buf)| buf)
            .ok_or_else(|| WedgeError::UnknownGlobal(format!("{name} is not a boundary var")))
    }

    /// Read a snapshot global. Ordinary globals are readable by every
    /// compartment (each sees its own COW view); boundary globals must be
    /// read through their tag instead.
    pub(crate) fn global_read(
        &self,
        caller: CompartmentId,
        name: &str,
        cache: Option<&Mutex<PermCache>>,
    ) -> Result<Vec<u8>, WedgeError> {
        // A dangling caller fails loudly instead of tracing as "".
        if !self.compartments.read().contains_key(&caller) {
            return Err(WedgeError::UnknownCompartment(caller));
        }
        let data = {
            let control = self.control.lock();
            let var = control
                .globals
                .get(name)
                .ok_or_else(|| WedgeError::UnknownGlobal(name.to_string()))?;
            if let Some((_, buf)) = var.boundary {
                drop(control);
                return self.mem_read_vec(caller, &buf, 0, buf.len, cache);
            }
            control
                .global_overlays
                .get(&(caller, name.to_string()))
                .cloned()
                .unwrap_or_else(|| var.initial.clone())
        };
        self.emit_access(
            caller,
            || MemRegion::Global {
                name: name.to_string(),
            },
            0,
            data.len(),
            AccessMode::Read,
            true,
        );
        Ok(data)
    }

    /// Write a snapshot global. Writes always go to the calling
    /// compartment's private COW view (the snapshot itself is immutable
    /// after `main` starts).
    pub(crate) fn global_write(
        &self,
        caller: CompartmentId,
        name: &str,
        value: &[u8],
        cache: Option<&Mutex<PermCache>>,
    ) -> Result<(), WedgeError> {
        if !self.compartments.read().contains_key(&caller) {
            return Err(WedgeError::UnknownCompartment(caller));
        }
        {
            let mut control = self.control.lock();
            let var = control
                .globals
                .get(name)
                .ok_or_else(|| WedgeError::UnknownGlobal(name.to_string()))?;
            if let Some((_, buf)) = var.boundary {
                drop(control);
                return self.mem_write_cached(caller, &buf, 0, value, cache);
            }
            control
                .global_overlays
                .insert((caller, name.to_string()), value.to_vec());
        }
        self.emit_access(
            caller,
            || MemRegion::Global {
                name: name.to_string(),
            },
            0,
            value.len(),
            AccessMode::Write,
            true,
        );
        Ok(())
    }

    /// Names of all registered globals (used by Crowbar reports).
    pub fn global_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.control.lock().globals.keys().cloned().collect();
        names.sort();
        names
    }

    // ------------------------------------------------------------------
    // File descriptors
    // ------------------------------------------------------------------

    /// Create a file-backed descriptor and grant the creator read-write
    /// access to it.
    pub(crate) fn fd_create_file(
        &self,
        caller: CompartmentId,
        name: &str,
        data: Vec<u8>,
    ) -> Result<FdId, WedgeError> {
        self.fd_create(caller, FdEntry::file(name, data))
    }

    /// Create a stream-backed descriptor and grant the creator read-write
    /// access to it.
    pub(crate) fn fd_create_stream(
        &self,
        caller: CompartmentId,
        name: &str,
    ) -> Result<FdId, WedgeError> {
        self.fd_create(caller, FdEntry::stream(name))
    }

    fn fd_create(&self, caller: CompartmentId, entry: FdEntry) -> Result<FdId, WedgeError> {
        let mut comps = self.compartments.write();
        let comp = comps
            .get_mut(&caller)
            .ok_or(WedgeError::UnknownCompartment(caller))?;
        let fd = FdId(self.next_fd.fetch_add(1, Ordering::Relaxed));
        self.fds.write().insert(fd, entry);
        self.fd_owners.lock().insert(fd, caller);
        if !comp.policy.is_unconfined() {
            comp.policy.sc_fd_add(fd, FdProt::ReadWrite);
            // Tail before bump, as in `publish_batch`.
            self.publish_op(PolicyOp::FdSet {
                target: caller,
                fd,
                prot: Some(FdProt::ReadWrite),
            });
            comp.bump_epoch();
        }
        Ok(fd)
    }

    /// Read up to `len` bytes from a descriptor.
    #[cfg_attr(not(test), allow(dead_code))] // uncached convenience, exercised by unit tests
    pub(crate) fn fd_read(
        &self,
        caller: CompartmentId,
        fd: FdId,
        len: usize,
    ) -> Result<Vec<u8>, WedgeError> {
        self.fd_read_cached(caller, fd, len, None)
    }

    /// [`Kernel::fd_read`] through a per-sthread permission cache.
    pub(crate) fn fd_read_cached(
        &self,
        caller: CompartmentId,
        fd: FdId,
        len: usize,
        cache: Option<&Mutex<PermCache>>,
    ) -> Result<Vec<u8>, WedgeError> {
        let _legacy = self.legacy_section(caller);
        let grant = self.resolve_fd_grant(caller, fd, cache, StatKind::FdRead)?;
        let entry = self
            .fds
            .read()
            .get(&fd)
            .cloned()
            .ok_or(WedgeError::UnknownFd(fd))?;
        let permitted = grant.map(|g| g.can_read()).unwrap_or(false);
        if !permitted {
            let region = MemRegion::Fd {
                fd,
                name: entry.name(),
            };
            if let Err(e) = self.deny(caller, region.clone(), AccessMode::Read) {
                self.emit_access(caller, || region, 0, len, AccessMode::Read, false);
                return Err(e);
            }
        }
        let data = entry.read(len);
        self.emit_access(
            caller,
            || MemRegion::Fd {
                fd,
                name: entry.name(),
            },
            0,
            data.len(),
            AccessMode::Read,
            permitted,
        );
        Ok(data)
    }

    /// Write bytes to a descriptor.
    #[cfg_attr(not(test), allow(dead_code))] // uncached convenience, exercised by unit tests
    pub(crate) fn fd_write(
        &self,
        caller: CompartmentId,
        fd: FdId,
        data: &[u8],
    ) -> Result<usize, WedgeError> {
        self.fd_write_cached(caller, fd, data, None)
    }

    /// [`Kernel::fd_write`] through a per-sthread permission cache.
    pub(crate) fn fd_write_cached(
        &self,
        caller: CompartmentId,
        fd: FdId,
        data: &[u8],
        cache: Option<&Mutex<PermCache>>,
    ) -> Result<usize, WedgeError> {
        let _legacy = self.legacy_section(caller);
        let grant = self.resolve_fd_grant(caller, fd, cache, StatKind::FdWrite)?;
        let entry = self
            .fds
            .read()
            .get(&fd)
            .cloned()
            .ok_or(WedgeError::UnknownFd(fd))?;
        let permitted = grant.map(|g| g.can_write()).unwrap_or(false);
        if !permitted {
            let region = MemRegion::Fd {
                fd,
                name: entry.name(),
            };
            if let Err(e) = self.deny(caller, region.clone(), AccessMode::Write) {
                self.emit_access(caller, || region, 0, data.len(), AccessMode::Write, false);
                return Err(e);
            }
        }
        let written = entry.write(data);
        self.emit_access(
            caller,
            || MemRegion::Fd {
                fd,
                name: entry.name(),
            },
            0,
            data.len(),
            AccessMode::Write,
            permitted,
        );
        Ok(written)
    }

    /// Peek at a descriptor's full contents without policy checks. Reserved
    /// for experiment harnesses (the "omniscient observer"), never used by
    /// application compartments.
    pub fn fd_peek_unchecked(&self, fd: FdId) -> Result<Vec<u8>, WedgeError> {
        self.fds
            .read()
            .get(&fd)
            .map(|e| e.peek_all())
            .ok_or(WedgeError::UnknownFd(fd))
    }

    // ------------------------------------------------------------------
    // Syscalls
    // ------------------------------------------------------------------

    /// Check a syscall against the caller's allow-list.
    pub(crate) fn syscall_check(
        &self,
        caller: CompartmentId,
        syscall: Syscall,
    ) -> Result<(), WedgeError> {
        let comps = self.compartments.read();
        let policy = &comps
            .get(&caller)
            .ok_or(WedgeError::UnknownCompartment(caller))?
            .policy;
        if policy.is_unconfined() || policy.syscalls.permits(syscall) {
            Ok(())
        } else {
            Err(WedgeError::SyscallDenied {
                compartment: caller,
                syscall,
            })
        }
    }

    // ------------------------------------------------------------------
    // Callgates
    // ------------------------------------------------------------------

    /// Register a callgate entry point (program text). Returns the id used
    /// in `sc_cgate_add` and `cgate`.
    pub fn cgate_register(&self, name: &str, entry: CallgateFn) -> CgEntryId {
        let mut control = self.control.lock();
        let id = CgEntryId(control.next_entry);
        control.next_entry += 1;
        control
            .callgate_entries
            .insert(id, (name.to_string(), entry));
        id
    }

    /// The human-readable name of a callgate entry point.
    pub fn cgate_name(&self, entry: CgEntryId) -> Option<String> {
        self.control
            .lock()
            .callgate_entries
            .get(&entry)
            .map(|(n, _)| n.clone())
    }

    /// Validate an invocation and return what the caller needs to run it:
    /// the entry function, the effective policy (instance policy plus the
    /// caller's extra argument-reading grants), the trusted argument and the
    /// instance creator.
    pub(crate) fn cgate_prepare(
        &self,
        caller: CompartmentId,
        entry: CgEntryId,
        extra: &SecurityPolicy,
        recycled: bool,
    ) -> Result<PreparedCall, WedgeError> {
        let caller_policy = self.policy_of(caller)?;
        let control = self.control.lock();
        let instance = control
            .callgate_instances
            .get(&(caller, entry))
            .cloned()
            .ok_or(WedgeError::CallgateDenied {
                compartment: caller,
                entry,
            })?;
        // The extra, argument-accessing permissions must be a subset of the
        // caller's current permissions (§4.1).
        for (tag, prot) in extra.mem_grants() {
            match caller_policy.mem_grant(*tag) {
                Some(have) if have.allows_delegation_of(*prot) => {}
                _ => {
                    return Err(WedgeError::PrivilegeEscalation {
                        detail: format!("extra grant {tag}:{prot:?} exceeds caller's privileges"),
                    })
                }
            }
        }
        for (fd, prot) in extra.fd_grants() {
            match caller_policy.fd_grant(*fd) {
                Some(have) if have.allows_delegation_of(*prot) => {}
                _ => {
                    return Err(WedgeError::PrivilegeEscalation {
                        detail: format!("extra grant {fd}:{prot:?} exceeds caller's privileges"),
                    })
                }
            }
        }
        let (_, entry_fn) = control
            .callgate_entries
            .get(&entry)
            .cloned()
            .ok_or(WedgeError::UnknownCallgate(entry))?;
        let mut effective = instance.policy.clone();
        effective.merge_grants(extra);
        if recycled {
            StatCells::bump(&self.stats.recycled_invocations);
        }
        Ok(PreparedCall {
            entry_fn,
            policy: effective,
            trusted: instance.trusted.clone(),
            creator: instance.creator,
        })
    }

    /// Zeroize a compartment's per-principal state: **every** segment it
    /// created (its private scratch and any tags it made with `tag_new`) is
    /// wiped and recycled, every descriptor it created is removed from the
    /// fd table, its copy-on-write views of tagged memory and snapshot
    /// globals are dropped, and its policy is reset to `baseline` (the
    /// spawn-time policy), undoing the implicit grants `tag_new` /
    /// `fd_create` accumulate. Used between principals on pooled recycled
    /// workers — the §3.3 residue a reused activation could otherwise leak
    /// to the next caller. The policy reset's log snapshot (epoch bump on
    /// the ablation tiers) invalidates every cached grant the worker
    /// accumulated before the scrub.
    pub(crate) fn scrub_compartment(
        &self,
        id: CompartmentId,
        baseline: &SecurityPolicy,
    ) -> Result<(), WedgeError> {
        if self.oplog.is_some() {
            self.combine(PolicyMutation::ScrubReset {
                target: id,
                baseline: baseline.clone(),
            })?;
        } else {
            let mut comps = self.compartments.write();
            self.apply_scrub_reset(&mut comps, id, baseline, None)?;
        }
        for shard in &self.segment_shards {
            let mut shard = shard.write();
            let owned: Vec<Tag> = shard
                .segments
                .iter()
                .filter(|(_, seg)| seg.owner == id)
                .map(|(tag, _)| *tag)
                .collect();
            for tag in owned {
                if let Some(mut seg) = shard.segments.remove(&tag) {
                    // The tag cache only scrubs on *reuse*; zero eagerly so
                    // the parked segment never holds the previous
                    // principal's bytes.
                    seg.segment.arena_mut().data_mut().fill(0);
                    self.tag_cache.lock().release(seg.segment);
                    StatCells::bump(&self.stats.tags_deleted);
                }
                shard.overlays.retain(|(_, t), _| *t != tag);
            }
            shard.overlays.retain(|(c, _), _| *c != id);
        }
        // Descriptors the principal created go too — their buffered bytes
        // are per-principal state the next checkout must not inherit.
        let owned_fds: Vec<FdId> = {
            let owners = self.fd_owners.lock();
            owners
                .iter()
                .filter(|(_, owner)| **owner == id)
                .map(|(fd, _)| *fd)
                .collect()
        };
        if !owned_fds.is_empty() {
            let mut fds = self.fds.write();
            let mut owners = self.fd_owners.lock();
            for fd in owned_fds {
                fds.remove(&fd);
                owners.remove(&fd);
            }
        }
        self.control
            .lock()
            .global_overlays
            .retain(|(c, _), _| *c != id);
        StatCells::bump(&self.stats.private_scrubs);
        if let Some(telemetry) = self.telemetry.get() {
            telemetry.emit_with(|| TelemetryEvent::Scrub {
                compartment: self.name_of(id).unwrap_or_default(),
            });
        }
        Ok(())
    }

    /// The registered entry function of a callgate (pooled-worker spawning).
    pub(crate) fn cgate_entry_fn(&self, entry: CgEntryId) -> Option<CallgateFn> {
        self.control
            .lock()
            .callgate_entries
            .get(&entry)
            .map(|(_, f)| f.clone())
    }

    /// Count one recycled-callgate invocation (pooled workers invoke without
    /// going through `cgate_prepare`, so they account here instead).
    pub(crate) fn note_recycled_invocation(&self) {
        StatCells::bump(&self.stats.recycled_invocations);
    }

    /// Look up an existing recycled worker for `(caller, entry)`.
    pub(crate) fn recycled_worker(
        &self,
        caller: CompartmentId,
        entry: CgEntryId,
    ) -> Option<Arc<RecycledWorker>> {
        self.control.lock().recycled.get(&(caller, entry)).cloned()
    }

    /// Store a newly created recycled worker.
    pub(crate) fn store_recycled_worker(
        &self,
        caller: CompartmentId,
        entry: CgEntryId,
        worker: Arc<RecycledWorker>,
    ) {
        self.control.lock().recycled.insert((caller, entry), worker);
    }

    /// The policy-reset half of a scrub: drop the private tag, restore the
    /// spawn-time baseline, and invalidate every cached grant the worker
    /// accumulated (log snapshot / epoch bump).
    fn apply_scrub_reset(
        &self,
        comps: &mut HashMap<CompartmentId, CompartmentEntry>,
        id: CompartmentId,
        baseline: &SecurityPolicy,
        effects: Option<&mut Vec<PolicyOp>>,
    ) -> Result<(), WedgeError> {
        let entry = comps
            .get_mut(&id)
            .ok_or(WedgeError::UnknownCompartment(id))?;
        entry.private_tag = None;
        entry.policy = baseline.clone();
        match effects {
            Some(effects) => effects.push(Kernel::snapshot_of(id, &entry.policy)),
            None => entry.bump_epoch(),
        }
        Ok(())
    }

    /// Merge additional grants into an existing compartment's policy (used
    /// by recycled callgates, which trade some isolation for speed).
    pub(crate) fn widen_policy(&self, id: CompartmentId, extra: &SecurityPolicy) {
        if self.oplog.is_some() {
            // An unknown id is silently ignored (matching the epoch-tier
            // behaviour), so the combined result is always Ok.
            let _ = self.combine(PolicyMutation::Widen {
                target: id,
                extra: extra.clone(),
            });
            return;
        }
        let mut comps = self.compartments.write();
        self.apply_widen_policy(&mut comps, id, extra, None);
    }

    fn apply_widen_policy(
        &self,
        comps: &mut HashMap<CompartmentId, CompartmentEntry>,
        id: CompartmentId,
        extra: &SecurityPolicy,
        effects: Option<&mut Vec<PolicyOp>>,
    ) {
        if let Some(c) = comps.get_mut(&id) {
            c.policy.merge_grants(extra);
            match effects {
                Some(effects) => effects.push(Kernel::snapshot_of(id, &c.policy)),
                None => c.bump_epoch(),
            }
        }
    }

    /// Emit a function-boundary event to the tracer (used for Crowbar's
    /// shadow backtraces).
    pub(crate) fn emit_call(&self, compartment: CompartmentId, function: &str, entering: bool) {
        if let Some(tracer) = self.tracer() {
            tracer.on_call(&CallEvent {
                compartment,
                function: function.to_string(),
                entering,
            });
        }
    }

    /// Emit a free event to the tracer.
    pub(crate) fn emit_free(&self, compartment: CompartmentId, tag: Tag, alloc_offset: usize) {
        if let Some(tracer) = self.tracer() {
            tracer.on_free(compartment, tag, alloc_offset);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_and_root() -> (Arc<Kernel>, SthreadCtx) {
        let kernel = Arc::new(Kernel::new());
        let root = kernel.create_root_compartment("root");
        (kernel, root)
    }

    #[test]
    fn tag_new_grants_creator_rw() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        let buf = kernel.smalloc(root.id(), 16, tag).unwrap();
        kernel.mem_write(root.id(), &buf, 0, b"abcd").unwrap();
        assert_eq!(kernel.mem_read(root.id(), &buf, 0, 4).unwrap(), b"abcd");
        assert_eq!(kernel.stats().tags_created, 1);
    }

    #[test]
    fn unknown_tag_is_reported() {
        let (kernel, root) = kernel_and_root();
        assert!(matches!(
            kernel.smalloc(root.id(), 8, Tag(999)),
            Err(WedgeError::UnknownTag(Tag(999)))
        ));
    }

    #[test]
    fn out_of_bounds_reads_rejected() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        let buf = kernel.smalloc(root.id(), 8, tag).unwrap();
        assert!(matches!(
            kernel.mem_read(root.id(), &buf, 4, 8),
            Err(WedgeError::OutOfBounds { .. })
        ));
        assert!(matches!(
            kernel.mem_write(root.id(), &buf, 7, b"toolong"),
            Err(WedgeError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn tag_delete_recycles_segment() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        kernel.tag_delete(root.id(), tag).unwrap();
        assert!(matches!(
            kernel.smalloc(root.id(), 8, tag),
            Err(WedgeError::UnknownTag(_))
        ));
        // A subsequent tag_new reuses the cached segment (generation > 1 is
        // internal, but the stats show no extra mmap).
        let _tag2 = kernel.tag_new(root.id()).unwrap();
        assert_eq!(kernel.stats().tags_created, 2);
        assert_eq!(kernel.stats().tags_deleted, 1);
    }

    #[test]
    fn globals_have_per_compartment_cow_views() {
        let (kernel, root) = kernel_and_root();
        kernel.register_global("config", b"initial");
        assert_eq!(
            kernel.global_read(root.id(), "config", None).unwrap(),
            b"initial"
        );
        kernel
            .global_write(root.id(), "config", b"changed", None)
            .unwrap();
        assert_eq!(
            kernel.global_read(root.id(), "config", None).unwrap(),
            b"changed"
        );

        // A second compartment still sees the pristine snapshot value.
        let child = kernel
            .register_child(
                root.id(),
                "child",
                &SecurityPolicy::deny_all(),
                ChildKind::Sthread,
            )
            .unwrap();
        assert_eq!(
            kernel.global_read(child, "config", None).unwrap(),
            b"initial"
        );
    }

    #[test]
    fn unknown_global_is_an_error() {
        let (kernel, root) = kernel_and_root();
        assert!(matches!(
            kernel.global_read(root.id(), "nope", None),
            Err(WedgeError::UnknownGlobal(_))
        ));
    }

    #[test]
    fn dangling_compartment_fails_loudly_not_as_empty_name() {
        let (kernel, _root) = kernel_and_root();
        kernel.register_global("config", b"x");
        let ghost = CompartmentId(9999);
        assert!(matches!(
            kernel.global_read(ghost, "config", None),
            Err(WedgeError::UnknownCompartment(CompartmentId(9999)))
        ));
        assert!(matches!(
            kernel.global_write(ghost, "config", b"y", None),
            Err(WedgeError::UnknownCompartment(_))
        ));
        let buf = SBuf::new(Tag(1), 0, 4);
        assert!(matches!(
            kernel.mem_read(ghost, &buf, 0, 4),
            Err(WedgeError::UnknownCompartment(_))
        ));
        assert!(matches!(
            kernel.mem_write(ghost, &buf, 0, b"abcd"),
            Err(WedgeError::UnknownCompartment(_))
        ));
        assert!(matches!(
            kernel.fd_read(ghost, FdId(1), 4),
            Err(WedgeError::UnknownCompartment(_))
        ));
        // No "" names leaked into the violation log.
        assert!(kernel
            .violations()
            .iter()
            .all(|v| !v.compartment_name.is_empty()));
    }

    #[test]
    fn fd_permissions_are_enforced() {
        let (kernel, root) = kernel_and_root();
        let fd = kernel
            .fd_create_file(root.id(), "/etc/shadow", b"root:x".to_vec())
            .unwrap();
        // Root (unconfined) may read.
        assert_eq!(kernel.fd_read(root.id(), fd, 4).unwrap(), b"root");

        // A default-deny child may not.
        let child = kernel
            .register_child(
                root.id(),
                "worker",
                &SecurityPolicy::deny_all(),
                ChildKind::Sthread,
            )
            .unwrap();
        assert!(matches!(
            kernel.fd_read(child, fd, 4),
            Err(WedgeError::FdFault { .. })
        ));

        // A child granted read-only access may read but not write.
        let mut policy = SecurityPolicy::deny_all();
        policy.sc_fd_add(fd, FdProt::Read);
        let reader = kernel
            .register_child(root.id(), "reader", &policy, ChildKind::Sthread)
            .unwrap();
        assert_eq!(kernel.fd_read(reader, fd, 2), Ok(b":x".to_vec()));
        assert!(matches!(
            kernel.fd_write(reader, fd, b"evil"),
            Err(WedgeError::FdFault { .. })
        ));
    }

    #[test]
    fn emulation_mode_records_but_allows() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        let buf = kernel.smalloc(root.id(), 8, tag).unwrap();
        kernel.mem_write(root.id(), &buf, 0, b"secret!!").unwrap();

        let child = kernel
            .register_child(
                root.id(),
                "worker",
                &SecurityPolicy::deny_all(),
                ChildKind::Sthread,
            )
            .unwrap();
        // Without emulation: fault.
        assert!(kernel.mem_read(child, &buf, 0, 8).is_err());
        assert_eq!(kernel.stats().faults, 1);

        // With emulation: allowed, recorded.
        kernel.set_emulation(true);
        assert_eq!(kernel.mem_read(child, &buf, 0, 8).unwrap(), b"secret!!");
        let violations = kernel.violations();
        assert_eq!(violations.len(), 2);
        assert!(violations[1].emulated);
        assert_eq!(kernel.stats().emulated_violations, 1);
    }

    #[test]
    fn private_allocations_cannot_be_granted() {
        let (kernel, root) = kernel_and_root();
        let child = kernel
            .register_child(
                root.id(),
                "worker",
                &SecurityPolicy::deny_all(),
                ChildKind::Sthread,
            )
            .unwrap();
        let private = kernel.private_alloc(child, 32, None).unwrap();
        assert!(kernel.is_private_tag(private.tag));

        // Another compartment cannot be granted that tag.
        let mut policy = SecurityPolicy::deny_all();
        policy.sc_mem_add(private.tag, MemProt::Read);
        // The root is unconfined so subset validation passes, but the
        // private-tag check still refuses.
        assert!(matches!(
            kernel.register_child(root.id(), "spy", &policy, ChildKind::Sthread),
            Err(WedgeError::PrivateTag(_))
        ));
    }

    #[test]
    fn subset_violations_surface_as_privilege_escalation() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        let mut parent_policy = SecurityPolicy::deny_all();
        parent_policy.sc_mem_add(tag, MemProt::Read);
        let parent = kernel
            .register_child(root.id(), "parent", &parent_policy, ChildKind::Sthread)
            .unwrap();

        let mut child_policy = SecurityPolicy::deny_all();
        child_policy.sc_mem_add(tag, MemProt::ReadWrite);
        assert!(matches!(
            kernel.register_child(parent, "child", &child_policy, ChildKind::Sthread),
            Err(WedgeError::PrivilegeEscalation { .. })
        ));
    }

    #[test]
    fn identity_transition_requires_root_caller() {
        let (kernel, root) = kernel_and_root();
        let worker = kernel
            .register_child(
                root.id(),
                "worker",
                &SecurityPolicy::deny_all().with_uid(Uid(1000)),
                ChildKind::Sthread,
            )
            .unwrap();
        // Root caller may change the worker's identity.
        kernel
            .transition_identity(root.id(), worker, Uid(42), Some("/home/user"))
            .unwrap();
        assert_eq!(kernel.uid_of(worker).unwrap(), Uid(42));
        assert_eq!(kernel.policy_of(worker).unwrap().fs_root, "/home/user");

        // The (now uid 42) worker cannot change identities itself.
        assert!(kernel
            .transition_identity(worker, worker, Uid(0), None)
            .is_err());
    }

    #[test]
    fn syscall_checks_respect_policy() {
        let (kernel, root) = kernel_and_root();
        let mut policy = SecurityPolicy::deny_all();
        policy.sc_sel_context(crate::syscall::SyscallPolicy::allowing(
            "net_t",
            &[Syscall::Send, Syscall::Recv],
        ));
        // Need a domain transition from the parent's allow-all context.
        kernel.allow_domain_transition("wedge_u:wedge_r:unconfined_t", "net_t");
        let child = kernel
            .register_child(root.id(), "net", &policy, ChildKind::Sthread)
            .unwrap();
        assert!(kernel.syscall_check(child, Syscall::Send).is_ok());
        assert!(matches!(
            kernel.syscall_check(child, Syscall::Open),
            Err(WedgeError::SyscallDenied { .. })
        ));
        assert!(kernel.syscall_check(root.id(), Syscall::Open).is_ok());
    }

    #[test]
    fn boundary_vars_require_grants() {
        let (kernel, root) = kernel_and_root();
        kernel
            .boundary_var(root.id(), "secret_global", b"hunter2", 7)
            .unwrap();
        let tag = kernel.boundary_tag(7).unwrap();
        let buf = kernel.boundary_buf("secret_global").unwrap();
        assert_eq!(buf.tag, tag);

        // Default-deny child cannot read it.
        let child = kernel
            .register_child(
                root.id(),
                "worker",
                &SecurityPolicy::deny_all(),
                ChildKind::Sthread,
            )
            .unwrap();
        assert!(kernel.mem_read(child, &buf, 0, 7).is_err());

        // Ordinary global_read on a boundary var goes through the tag check
        // as well.
        assert!(kernel.global_read(child, "secret_global", None).is_err());

        // A granted child can.
        let mut policy = SecurityPolicy::deny_all();
        policy.sc_mem_add(tag, MemProt::Read);
        let reader = kernel
            .register_child(root.id(), "reader", &policy, ChildKind::Sthread)
            .unwrap();
        assert_eq!(kernel.mem_read(reader, &buf, 0, 7).unwrap(), b"hunter2");
    }

    #[test]
    fn cow_grants_isolate_writes() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        let buf = kernel.smalloc(root.id(), 8, tag).unwrap();
        kernel.mem_write(root.id(), &buf, 0, b"original").unwrap();

        let mut policy = SecurityPolicy::deny_all();
        policy.sc_mem_add(tag, MemProt::CopyOnWrite);
        let child = kernel
            .register_child(root.id(), "cow", &policy, ChildKind::Sthread)
            .unwrap();

        // The child reads the shared value, writes privately.
        assert_eq!(kernel.mem_read(child, &buf, 0, 8).unwrap(), b"original");
        kernel.mem_write(child, &buf, 0, b"mutated!").unwrap();
        assert_eq!(kernel.mem_read(child, &buf, 0, 8).unwrap(), b"mutated!");
        // The shared copy (and the root's view) is untouched.
        assert_eq!(kernel.mem_read(root.id(), &buf, 0, 8).unwrap(), b"original");
    }

    #[test]
    fn cow_writes_through_freed_allocations_are_rejected() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        let buf = kernel.smalloc(root.id(), 8, tag).unwrap();
        let mut policy = SecurityPolicy::deny_all();
        policy.sc_mem_add(tag, MemProt::CopyOnWrite);
        let cow = kernel
            .register_child(root.id(), "cow", &policy, ChildKind::Sthread)
            .unwrap();
        kernel.sfree(root.id(), &buf, None).unwrap();
        // The overlay path must hit the same liveness wall as shared writes.
        assert!(matches!(
            kernel.mem_write(cow, &buf, 0, b"ghost"),
            Err(WedgeError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn permission_cache_hits_and_is_invalidated_by_revocation() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        let buf = kernel.smalloc(root.id(), 8, tag).unwrap();
        kernel.mem_write(root.id(), &buf, 0, b"payload!").unwrap();

        let mut policy = SecurityPolicy::deny_all();
        policy.sc_mem_add(tag, MemProt::Read);
        let reader = kernel
            .register_child(root.id(), "reader", &policy, ChildKind::Sthread)
            .unwrap();

        let cache = Mutex::new(PermCache::new());
        // Warm the cache, then read repeatedly through it.
        for _ in 0..3 {
            assert_eq!(
                kernel
                    .mem_read_vec(reader, &buf, 0, 8, Some(&cache))
                    .unwrap(),
                b"payload!"
            );
        }
        // Revoke: the very next cached read must fault, not serve stale.
        kernel.policy_del(root.id(), reader, tag).unwrap();
        assert!(matches!(
            kernel.mem_read_vec(reader, &buf, 0, 8, Some(&cache)),
            Err(WedgeError::ProtectionFault { .. })
        ));
        // Re-grant: visible again through the same cache.
        kernel
            .policy_add(root.id(), reader, tag, MemProt::Read)
            .unwrap();
        assert_eq!(
            kernel
                .mem_read_vec(reader, &buf, 0, 8, Some(&cache))
                .unwrap(),
            b"payload!"
        );
    }

    #[test]
    fn policy_add_enforces_subset_and_private_tag_rules() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        let mut granter_policy = SecurityPolicy::deny_all();
        granter_policy.sc_mem_add(tag, MemProt::Read);
        let granter = kernel
            .register_child(root.id(), "granter", &granter_policy, ChildKind::Sthread)
            .unwrap();
        let target = kernel
            .register_child(
                root.id(),
                "target",
                &SecurityPolicy::deny_all(),
                ChildKind::Sthread,
            )
            .unwrap();
        // A read-only holder cannot delegate read-write.
        assert!(matches!(
            kernel.policy_add(granter, target, tag, MemProt::ReadWrite),
            Err(WedgeError::PrivilegeEscalation { .. })
        ));
        // Read delegation is fine.
        kernel
            .policy_add(granter, target, tag, MemProt::Read)
            .unwrap();
        let buf = kernel.smalloc(root.id(), 4, tag).unwrap();
        assert!(kernel.mem_read(target, &buf, 0, 4).is_ok());
        // Private tags can never be granted to another compartment.
        let private = kernel.private_alloc(target, 8, None).unwrap();
        assert!(matches!(
            kernel.policy_add(root.id(), granter, private.tag, MemProt::Read),
            Err(WedgeError::PrivateTag(_))
        ));
        // Revocation is refused for unrelated confined compartments.
        assert!(matches!(
            kernel.policy_del(granter, target, tag),
            Err(WedgeError::PrivilegeEscalation { .. })
        ));
    }

    #[test]
    fn denied_and_out_of_bounds_accesses_emit_trace_events() {
        use std::sync::atomic::Ordering as AtomOrd;
        let (kernel, root) = kernel_and_root();
        let sink = Arc::new(crate::trace::CountingSink::default());
        kernel.set_tracer(Some(sink.clone()));
        let tag = kernel.tag_new(root.id()).unwrap();
        let buf = kernel.smalloc(root.id(), 8, tag).unwrap();

        // Out-of-bounds read and write both trace (the pre-refactor kernel
        // silently dropped these).
        let before = sink.accesses.load(AtomOrd::Relaxed);
        assert!(kernel.mem_read(root.id(), &buf, 4, 8).is_err());
        assert!(kernel.mem_write(root.id(), &buf, 7, b"toolong").is_err());
        assert_eq!(sink.accesses.load(AtomOrd::Relaxed), before + 2);

        // A denied read traces an access event (and a violation).
        let child = kernel
            .register_child(
                root.id(),
                "worker",
                &SecurityPolicy::deny_all(),
                ChildKind::Sthread,
            )
            .unwrap();
        let before = sink.accesses.load(AtomOrd::Relaxed);
        assert!(kernel.mem_read(child, &buf, 0, 8).is_err());
        assert_eq!(sink.accesses.load(AtomOrd::Relaxed), before + 1);
        assert_eq!(sink.violations.load(AtomOrd::Relaxed), 1);

        // Unknown-tag exits trace on the write path too (reads and writes
        // share the same always-emit contract).
        kernel.tag_delete(root.id(), tag).unwrap();
        let before = sink.accesses.load(AtomOrd::Relaxed);
        assert!(matches!(
            kernel.mem_write(root.id(), &buf, 0, b"gone"),
            Err(WedgeError::UnknownTag(_))
        ));
        assert!(matches!(
            kernel.mem_read(root.id(), &buf, 0, 4),
            Err(WedgeError::UnknownTag(_))
        ));
        assert_eq!(sink.accesses.load(AtomOrd::Relaxed), before + 2);
    }

    #[test]
    fn read_guard_sees_shared_bytes_and_cow_overlays() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        let buf = kernel.smalloc(root.id(), 8, tag).unwrap();
        kernel.mem_write(root.id(), &buf, 0, b"borrowed").unwrap();
        {
            let guard = kernel.mem_read_guard(root.id(), &buf, 0, 8, None).unwrap();
            assert_eq!(&*guard, b"borrowed");
            assert_eq!(&guard[2..4], b"rr");
        }
        // COW overlay: the guard serves the private view.
        let mut policy = SecurityPolicy::deny_all();
        policy.sc_mem_add(tag, MemProt::CopyOnWrite);
        let child = kernel
            .register_child(root.id(), "cow", &policy, ChildKind::Sthread)
            .unwrap();
        kernel.mem_write(child, &buf, 0, b"private!").unwrap();
        let guard = kernel.mem_read_guard(child, &buf, 0, 8, None).unwrap();
        assert_eq!(&*guard, b"private!");
    }

    #[test]
    fn legacy_baseline_enforces_the_same_policy() {
        let kernel = Arc::new(Kernel::legacy_baseline());
        let root = kernel.create_root_compartment("root");
        let tag = kernel.tag_new(root.id()).unwrap();
        let buf = kernel.smalloc(root.id(), 8, tag).unwrap();
        kernel.mem_write(root.id(), &buf, 0, b"oldpath!").unwrap();
        assert_eq!(kernel.mem_read(root.id(), &buf, 0, 8).unwrap(), b"oldpath!");
        let child = kernel
            .register_child(
                root.id(),
                "worker",
                &SecurityPolicy::deny_all(),
                ChildKind::Sthread,
            )
            .unwrap();
        assert!(matches!(
            kernel.mem_read(child, &buf, 0, 8),
            Err(WedgeError::ProtectionFault { .. })
        ));
        assert_eq!(kernel.stats().mem_reads, 2);
    }

    #[test]
    fn prewarm_parks_segments_for_reuse() {
        let (kernel, root) = kernel_and_root();
        let parked = kernel.prewarm_tag_cache(4);
        assert_eq!(parked, 4);
        // Subsequent tag_new calls recycle the parked segments.
        for _ in 0..4 {
            kernel.tag_new(root.id()).unwrap();
        }
        assert_eq!(kernel.stats().tags_created, 4);
    }
}
