//! The simulated kernel: the trusted arbiter of every Wedge privilege check.
//!
//! The paper implements sthreads and callgates as ~2000 lines of kernel
//! support code in Linux 2.6.19. This module is the reproduction's
//! equivalent: it owns all compartments, tagged segments, callgate entry
//! points and instances, file descriptors and globals, and performs every
//! policy check. Application code never touches segment bytes directly; it
//! holds [`SBuf`] names and goes through a [`crate::SthreadCtx`], which
//! forwards to the methods here.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use wedge_alloc::{Segment, TagCache, TagCacheConfig};

use crate::callgate::{CallgateFn, CgEntryId, TrustedArg};
use crate::error::WedgeError;
use crate::fdtable::{FdEntry, FdId, FdProt};
use crate::memory::SBuf;
use crate::policy::{SecurityPolicy, Uid};
use crate::sthread::SthreadCtx;
use crate::syscall::{DomainTransitions, Syscall};
use crate::tag::{AccessMode, CompartmentId, MemProt, Tag};
use crate::trace::{AccessSink, AllocEvent, CallEvent, MemAccessEvent, MemRegion, ViolationEvent};

/// Counters describing kernel activity, used by tests and by the experiment
/// harnesses (e.g. "each request creates two sthreads and invokes eight
/// callgates", §6).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct KernelStats {
    /// Sthreads created (excluding callgate activations).
    pub sthreads_created: u64,
    /// Standard callgate invocations.
    pub callgate_invocations: u64,
    /// Recycled callgate invocations.
    pub recycled_invocations: u64,
    /// Tags created via `tag_new` (including boundary tags).
    pub tags_created: u64,
    /// Tags deleted.
    pub tags_deleted: u64,
    /// `smalloc` allocations from shared (grantable) tags.
    pub smallocs: u64,
    /// Allocations that went to per-compartment private segments.
    pub private_allocs: u64,
    /// Tagged-memory reads that were checked.
    pub mem_reads: u64,
    /// Tagged-memory writes that were checked.
    pub mem_writes: u64,
    /// Protection faults raised (denied accesses, not counting emulated).
    pub faults: u64,
    /// Violations permitted because emulation mode was active.
    pub emulated_violations: u64,
    /// File-descriptor reads.
    pub fd_reads: u64,
    /// File-descriptor writes.
    pub fd_writes: u64,
    /// Private-scratch scrubs (zeroize-between-principals on pooled
    /// recycled workers; see [`crate::RecycledWorkerHandle::scrub`]).
    pub private_scrubs: u64,
}

impl std::ops::AddAssign<&KernelStats> for KernelStats {
    /// Field-wise accumulation, used to aggregate counters across the
    /// independent kernels of a pooled-instance front-end. The exhaustive
    /// destructuring (no `..`) makes adding a `KernelStats` field without
    /// extending this impl a compile error.
    fn add_assign(&mut self, other: &KernelStats) {
        let KernelStats {
            sthreads_created,
            callgate_invocations,
            recycled_invocations,
            tags_created,
            tags_deleted,
            smallocs,
            private_allocs,
            mem_reads,
            mem_writes,
            faults,
            emulated_violations,
            fd_reads,
            fd_writes,
            private_scrubs,
        } = other;
        self.sthreads_created += sthreads_created;
        self.callgate_invocations += callgate_invocations;
        self.recycled_invocations += recycled_invocations;
        self.tags_created += tags_created;
        self.tags_deleted += tags_deleted;
        self.smallocs += smallocs;
        self.private_allocs += private_allocs;
        self.mem_reads += mem_reads;
        self.mem_writes += mem_writes;
        self.faults += faults;
        self.emulated_violations += emulated_violations;
        self.fd_reads += fd_reads;
        self.fd_writes += fd_writes;
        self.private_scrubs += private_scrubs;
    }
}

/// A recorded protection violation (kept by the kernel so Crowbar's
/// emulation workflow can enumerate every violation after a run, §3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationRecord {
    /// The offending compartment.
    pub compartment: CompartmentId,
    /// Its name.
    pub compartment_name: String,
    /// Where the denied access landed.
    pub region: MemRegion,
    /// The attempted access mode.
    pub mode: AccessMode,
    /// Whether emulation mode let the access proceed.
    pub emulated: bool,
}

/// A registered global variable (part of the pre-`main` snapshot).
#[derive(Debug, Clone)]
struct GlobalVar {
    initial: Vec<u8>,
    /// If the global was declared with `BOUNDARY_VAR`, the tag protecting it.
    boundary: Option<(u32, SBuf)>,
}

/// A segment backing a tag.
struct SegmentEntry {
    segment: Segment,
    /// The compartment that created the tag.
    owner: CompartmentId,
    /// Private segments back untagged allocations; they can never be named
    /// in another compartment's policy.
    private: bool,
}

/// A compartment known to the kernel.
struct CompartmentEntry {
    name: String,
    parent: Option<CompartmentId>,
    policy: SecurityPolicy,
    /// Lazily created private segment for untagged allocations.
    private_tag: Option<Tag>,
    alive: bool,
}

/// A callgate instance: created when a policy containing a
/// [`crate::CallgateGrant`] is bound to a new sthread.
#[derive(Clone)]
struct CallgateInstance {
    policy: SecurityPolicy,
    trusted: Option<TrustedArg>,
    creator: CompartmentId,
}

/// How a new child compartment is created, deciding subset validation and
/// which [`KernelStats`] counter it lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChildKind {
    /// An application sthread: subset-validated, counts `sthreads_created`.
    Sthread,
    /// A callgate activation running an instance policy already validated
    /// against its creator: no subset check, counts `callgate_invocations`.
    Activation,
    /// A pooled recycled worker spawned under an instance policy: no subset
    /// check, but it is a long-lived sthread, so counts `sthreads_created`
    /// (invocations are counted per `invoke`, not at pre-warm).
    PooledWorker,
}

/// Everything the caller needs to actually run a callgate (returned by
/// [`Kernel::cgate_prepare`]; the spawn happens in `SthreadCtx`).
pub(crate) struct PreparedCall {
    pub(crate) entry_fn: CallgateFn,
    pub(crate) policy: SecurityPolicy,
    pub(crate) trusted: Option<TrustedArg>,
    pub(crate) creator: CompartmentId,
}

/// A long-lived worker backing a recycled callgate.
pub(crate) struct RecycledWorker {
    /// Serialises callers of the same recycled gate.
    pub(crate) call_lock: Mutex<()>,
    pub(crate) tx: crossbeam::channel::Sender<crate::callgate::CgInput>,
    pub(crate) rx: crossbeam::channel::Receiver<Result<crate::callgate::CgOutput, WedgeError>>,
    /// The persistent activation compartment.
    pub(crate) activation: CompartmentId,
}

struct KernelState {
    compartments: HashMap<CompartmentId, CompartmentEntry>,
    segments: HashMap<Tag, SegmentEntry>,
    tag_cache: TagCache,
    /// Per-(compartment, tag) copy-on-write overlays.
    cow_overlays: HashMap<(CompartmentId, Tag), Vec<u8>>,
    callgate_entries: HashMap<CgEntryId, (String, CallgateFn)>,
    callgate_instances: HashMap<(CompartmentId, CgEntryId), CallgateInstance>,
    recycled: HashMap<(CompartmentId, CgEntryId), Arc<RecycledWorker>>,
    fds: HashMap<FdId, FdEntry>,
    /// Which compartment created each descriptor (scrub removes a pooled
    /// principal's descriptors on checkin).
    fd_owners: HashMap<FdId, CompartmentId>,
    globals: HashMap<String, GlobalVar>,
    boundary_tags: HashMap<u32, Tag>,
    /// Per-(compartment, global) private copies (the COW snapshot view).
    global_overlays: HashMap<(CompartmentId, String), Vec<u8>>,
    transitions: DomainTransitions,
    emulation: bool,
    violations: Vec<ViolationRecord>,
    stats: KernelStats,
    next_compartment: u64,
    next_tag: u64,
    next_fd: u64,
    next_entry: u64,
}

/// The simulated kernel.
pub struct Kernel {
    state: Mutex<KernelState>,
    tracer: RwLock<Option<Arc<dyn AccessSink>>>,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl Kernel {
    /// Create a fresh kernel with no compartments, tags or globals.
    pub fn new() -> Kernel {
        Kernel {
            state: Mutex::new(KernelState {
                compartments: HashMap::new(),
                segments: HashMap::new(),
                tag_cache: TagCache::new(TagCacheConfig::default()),
                cow_overlays: HashMap::new(),
                callgate_entries: HashMap::new(),
                callgate_instances: HashMap::new(),
                recycled: HashMap::new(),
                fds: HashMap::new(),
                fd_owners: HashMap::new(),
                globals: HashMap::new(),
                boundary_tags: HashMap::new(),
                global_overlays: HashMap::new(),
                transitions: DomainTransitions::new(),
                emulation: false,
                violations: Vec::new(),
                stats: KernelStats::default(),
                next_compartment: 1,
                next_tag: 1,
                next_fd: 1,
                next_entry: 1,
            }),
            tracer: RwLock::new(None),
        }
    }

    // ------------------------------------------------------------------
    // Configuration and inspection
    // ------------------------------------------------------------------

    /// Install (or remove) the instrumentation sink used by Crowbar.
    pub fn set_tracer(&self, tracer: Option<Arc<dyn AccessSink>>) {
        *self.tracer.write() = tracer;
    }

    fn tracer(&self) -> Option<Arc<dyn AccessSink>> {
        self.tracer.read().clone()
    }

    /// Enable or disable emulation mode (§3.4's sthread emulation library):
    /// protection violations are recorded but the access is allowed, so a
    /// whole run can be observed without crashing.
    pub fn set_emulation(&self, enabled: bool) {
        self.state.lock().emulation = enabled;
    }

    /// Is emulation mode active?
    pub fn emulation_enabled(&self) -> bool {
        self.state.lock().emulation
    }

    /// All protection violations recorded so far.
    pub fn violations(&self) -> Vec<ViolationRecord> {
        self.state.lock().violations.clone()
    }

    /// Forget recorded violations.
    pub fn clear_violations(&self) {
        self.state.lock().violations.clear();
    }

    /// Kernel activity counters.
    pub fn stats(&self) -> KernelStats {
        self.state.lock().stats.clone()
    }

    /// Reset kernel activity counters (used between experiment phases).
    pub fn reset_stats(&self) {
        self.state.lock().stats = KernelStats::default();
    }

    /// Permit an SELinux-style domain transition from `from` to `to`.
    pub fn allow_domain_transition(&self, from: &str, to: &str) {
        self.state.lock().transitions.allow(from, to);
    }

    /// Number of live (not yet exited) compartments.
    pub fn live_compartments(&self) -> usize {
        self.state
            .lock()
            .compartments
            .values()
            .filter(|c| c.alive)
            .count()
    }

    /// The stored policy of a compartment.
    pub fn policy_of(&self, id: CompartmentId) -> Result<SecurityPolicy, WedgeError> {
        let st = self.state.lock();
        st.compartments
            .get(&id)
            .map(|c| c.policy.clone())
            .ok_or(WedgeError::UnknownCompartment(id))
    }

    /// The name of a compartment.
    pub fn name_of(&self, id: CompartmentId) -> Result<String, WedgeError> {
        let st = self.state.lock();
        st.compartments
            .get(&id)
            .map(|c| c.name.clone())
            .ok_or(WedgeError::UnknownCompartment(id))
    }

    /// The parent of a compartment (`None` for the root compartment).
    pub fn parent_of(&self, id: CompartmentId) -> Result<Option<CompartmentId>, WedgeError> {
        let st = self.state.lock();
        st.compartments
            .get(&id)
            .map(|c| c.parent)
            .ok_or(WedgeError::UnknownCompartment(id))
    }

    // ------------------------------------------------------------------
    // Compartment lifecycle
    // ------------------------------------------------------------------

    /// Create the unconfined root compartment and return its context.
    pub fn create_root_compartment(self: &Arc<Self>, name: &str) -> SthreadCtx {
        let id = {
            let mut st = self.state.lock();
            let id = CompartmentId(st.next_compartment);
            st.next_compartment += 1;
            st.compartments.insert(
                id,
                CompartmentEntry {
                    name: name.to_string(),
                    parent: None,
                    policy: SecurityPolicy::unconfined(),
                    private_tag: None,
                    alive: true,
                },
            );
            id
        };
        SthreadCtx::new(self.clone(), id, name)
    }

    /// Register a new child compartment. Validates the subset rule and
    /// instantiates the callgate grants carried by `policy`.
    pub(crate) fn register_child(
        &self,
        parent: CompartmentId,
        name: &str,
        policy: &SecurityPolicy,
        kind: ChildKind,
    ) -> Result<CompartmentId, WedgeError> {
        let mut st = self.state.lock();
        let parent_entry = st
            .compartments
            .get(&parent)
            .ok_or(WedgeError::UnknownCompartment(parent))?;
        let parent_policy = parent_entry.policy.clone();

        if kind == ChildKind::Sthread {
            parent_policy
                .validate_child(policy, &st.transitions)
                .map_err(|detail| WedgeError::PrivilegeEscalation { detail })?;
            // Private tags can never be named in a grant.
            for tag in policy.mem_grants().keys() {
                if let Some(seg) = st.segments.get(tag) {
                    if seg.private {
                        return Err(WedgeError::PrivateTag(*tag));
                    }
                }
            }
        }

        // Inherit uid / fs_root from the parent when the child policy kept
        // the defaults (mirrors fork semantics).
        let mut child_policy = policy.clone();
        if child_policy.uid == Uid::ROOT && !parent_policy.uid.is_root() {
            child_policy.uid = parent_policy.uid;
        }
        if child_policy.fs_root == "/" && parent_policy.fs_root != "/" {
            child_policy.fs_root = parent_policy.fs_root.clone();
        }

        let id = CompartmentId(st.next_compartment);
        st.next_compartment += 1;

        // Instantiate callgate grants: the instance's permissions were
        // validated against the *creator* (the parent) above.
        for grant in policy.callgate_grants() {
            if !st.callgate_entries.contains_key(&grant.entry) {
                return Err(WedgeError::UnknownCallgate(grant.entry));
            }
            st.callgate_instances.insert(
                (id, grant.entry),
                CallgateInstance {
                    policy: (*grant.policy).clone(),
                    trusted: grant.trusted.clone(),
                    creator: parent,
                },
            );
        }

        st.compartments.insert(
            id,
            CompartmentEntry {
                name: name.to_string(),
                parent: Some(parent),
                policy: child_policy,
                private_tag: None,
                alive: true,
            },
        );
        match kind {
            ChildKind::Activation => st.stats.callgate_invocations += 1,
            ChildKind::Sthread | ChildKind::PooledWorker => st.stats.sthreads_created += 1,
        }
        Ok(id)
    }

    /// Mark a compartment as exited.
    pub(crate) fn compartment_exited(&self, id: CompartmentId) {
        let mut st = self.state.lock();
        if let Some(c) = st.compartments.get_mut(&id) {
            c.alive = false;
        }
    }

    /// Change a compartment's uid and filesystem root. Only a caller whose
    /// own uid is root may do this — the idiom used by the OpenSSH
    /// authentication callgates ("the callgate, upon successful
    /// authentication, changes the worker's user ID and filesystem root").
    pub(crate) fn transition_identity(
        &self,
        caller: CompartmentId,
        target: CompartmentId,
        new_uid: Uid,
        new_fs_root: Option<&str>,
    ) -> Result<(), WedgeError> {
        let mut st = self.state.lock();
        let caller_uid = st
            .compartments
            .get(&caller)
            .ok_or(WedgeError::UnknownCompartment(caller))?
            .policy
            .uid;
        if !caller_uid.is_root() {
            return Err(WedgeError::IdentityDenied(format!(
                "caller uid {} is not root",
                caller_uid.0
            )));
        }
        let target_entry = st
            .compartments
            .get_mut(&target)
            .ok_or(WedgeError::UnknownCompartment(target))?;
        target_entry.policy.uid = new_uid;
        if let Some(root) = new_fs_root {
            target_entry.policy.fs_root = root.to_string();
        }
        Ok(())
    }

    /// The uid a compartment currently runs as.
    pub fn uid_of(&self, id: CompartmentId) -> Result<Uid, WedgeError> {
        Ok(self.policy_of(id)?.uid)
    }

    // ------------------------------------------------------------------
    // Tagged memory
    // ------------------------------------------------------------------

    fn fresh_tag(st: &mut KernelState) -> Tag {
        let tag = Tag(st.next_tag);
        st.next_tag += 1;
        tag
    }

    /// `tag_new()`: create a tag backed by a (possibly recycled) segment and
    /// grant the creating compartment read-write access to it.
    pub(crate) fn tag_new(&self, caller: CompartmentId) -> Result<Tag, WedgeError> {
        self.tag_new_inner(caller, false)
    }

    fn tag_new_inner(&self, caller: CompartmentId, private: bool) -> Result<Tag, WedgeError> {
        let mut st = self.state.lock();
        if !st.compartments.contains_key(&caller) {
            return Err(WedgeError::UnknownCompartment(caller));
        }
        let segment = st
            .tag_cache
            .acquire_default()
            .map_err(|e| WedgeError::Alloc(e.to_string()))?;
        let tag = Self::fresh_tag(&mut st);
        st.segments.insert(
            tag,
            SegmentEntry {
                segment,
                owner: caller,
                private,
            },
        );
        st.stats.tags_created += 1;
        // The creator implicitly gains read-write access (it created the
        // region, exactly as mmap would map it into the caller).
        if let Some(entry) = st.compartments.get_mut(&caller) {
            if !entry.policy.is_unconfined() {
                entry.policy.sc_mem_add(tag, MemProt::ReadWrite);
            }
        }
        Ok(tag)
    }

    /// `tag_delete()`: release a tag's segment back to the userland cache.
    pub(crate) fn tag_delete(&self, caller: CompartmentId, tag: Tag) -> Result<(), WedgeError> {
        let mut st = self.state.lock();
        let entry = st.segments.get(&tag).ok_or(WedgeError::UnknownTag(tag))?;
        if entry.owner != caller && !Self::policy_of_locked(&st, caller)?.is_unconfined() {
            return Err(WedgeError::ProtectionFault {
                compartment: caller,
                tag,
                mode: AccessMode::Write,
            });
        }
        let entry = st.segments.remove(&tag).expect("checked above");
        st.tag_cache.release(entry.segment);
        st.cow_overlays.retain(|(_, t), _| *t != tag);
        st.stats.tags_deleted += 1;
        Ok(())
    }

    fn policy_of_locked(
        st: &KernelState,
        id: CompartmentId,
    ) -> Result<&SecurityPolicy, WedgeError> {
        st.compartments
            .get(&id)
            .map(|c| &c.policy)
            .ok_or(WedgeError::UnknownCompartment(id))
    }

    /// `smalloc()`: allocate from a tagged segment.
    pub(crate) fn smalloc(
        &self,
        caller: CompartmentId,
        size: usize,
        tag: Tag,
    ) -> Result<SBuf, WedgeError> {
        let event = {
            let mut st = self.state.lock();
            let grant = Self::policy_of_locked(&st, caller)?.mem_grant(tag);
            let seg_exists = st.segments.contains_key(&tag);
            if !seg_exists {
                return Err(WedgeError::UnknownTag(tag));
            }
            match grant {
                Some(prot) if prot.permits(AccessMode::Write) || prot.permits(AccessMode::Read) => {
                }
                _ => {
                    return Err(WedgeError::ProtectionFault {
                        compartment: caller,
                        tag,
                        mode: AccessMode::Write,
                    })
                }
            }
            let private = st.segments.get(&tag).map(|s| s.private).unwrap_or(false);
            let entry = st.segments.get_mut(&tag).expect("checked above");
            let offset = entry
                .segment
                .arena_mut()
                .alloc(size)
                .map_err(|e| WedgeError::Alloc(e.to_string()))?;
            if private {
                st.stats.private_allocs += 1;
            } else {
                st.stats.smallocs += 1;
            }
            AllocEvent {
                compartment: caller,
                tag,
                alloc_offset: offset,
                size,
                private,
            }
        };
        if let Some(tracer) = self.tracer() {
            tracer.on_alloc(&event);
        }
        Ok(SBuf::new(event.tag, event.alloc_offset, event.size))
    }

    /// Allocate from the caller's private (untagged) segment, creating it on
    /// first use. Private segments can never be granted to other
    /// compartments.
    pub(crate) fn private_alloc(
        &self,
        caller: CompartmentId,
        size: usize,
    ) -> Result<SBuf, WedgeError> {
        let existing = {
            let st = self.state.lock();
            st.compartments
                .get(&caller)
                .ok_or(WedgeError::UnknownCompartment(caller))?
                .private_tag
        };
        let tag = match existing {
            Some(tag) => tag,
            None => {
                let tag = self.tag_new_inner(caller, true)?;
                let mut st = self.state.lock();
                if let Some(c) = st.compartments.get_mut(&caller) {
                    c.private_tag = Some(tag);
                }
                tag
            }
        };
        self.smalloc(caller, size, tag)
    }

    /// `sfree()`: free an allocation.
    pub(crate) fn sfree(&self, caller: CompartmentId, buf: &SBuf) -> Result<(), WedgeError> {
        let mut st = self.state.lock();
        let grant = Self::policy_of_locked(&st, caller)?.mem_grant(buf.tag);
        if grant.is_none() {
            return Err(WedgeError::ProtectionFault {
                compartment: caller,
                tag: buf.tag,
                mode: AccessMode::Write,
            });
        }
        let entry = st
            .segments
            .get_mut(&buf.tag)
            .ok_or(WedgeError::UnknownTag(buf.tag))?;
        entry
            .segment
            .arena_mut()
            .free(buf.offset)
            .map_err(|e| WedgeError::Alloc(e.to_string()))?;
        Ok(())
    }

    /// Record a violation and decide whether the access proceeds (emulation
    /// mode) or faults.
    fn deny(
        &self,
        st: &mut KernelState,
        caller: CompartmentId,
        region: MemRegion,
        mode: AccessMode,
    ) -> Result<(), WedgeError> {
        let name = st
            .compartments
            .get(&caller)
            .map(|c| c.name.clone())
            .unwrap_or_else(|| "<unknown>".to_string());
        let emulated = st.emulation;
        st.violations.push(ViolationRecord {
            compartment: caller,
            compartment_name: name.clone(),
            region: region.clone(),
            mode,
            emulated,
        });
        if emulated {
            st.stats.emulated_violations += 1;
        } else {
            st.stats.faults += 1;
        }
        let event = ViolationEvent {
            compartment: caller,
            compartment_name: name,
            region: region.clone(),
            mode,
            emulated,
        };
        if let Some(tracer) = self.tracer() {
            tracer.on_violation(&event);
        }
        if emulated {
            Ok(())
        } else {
            match region {
                MemRegion::Tagged { tag, .. } => Err(WedgeError::ProtectionFault {
                    compartment: caller,
                    tag,
                    mode,
                }),
                MemRegion::Fd { fd, .. } => Err(WedgeError::FdFault {
                    compartment: caller,
                    fd,
                    mode,
                }),
                MemRegion::Global { .. } => Err(WedgeError::ProtectionFault {
                    compartment: caller,
                    tag: Tag(0),
                    mode,
                }),
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_access(
        &self,
        caller: CompartmentId,
        caller_name: &str,
        region: MemRegion,
        offset: usize,
        len: usize,
        mode: AccessMode,
        allowed: bool,
    ) {
        if let Some(tracer) = self.tracer() {
            tracer.on_access(&MemAccessEvent {
                compartment: caller,
                compartment_name: caller_name.to_string(),
                region,
                offset,
                len,
                mode,
                allowed,
            });
        }
    }

    /// Read `len` bytes at `offset` within a tagged buffer.
    pub(crate) fn mem_read(
        &self,
        caller: CompartmentId,
        buf: &SBuf,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, WedgeError> {
        let (result, caller_name, allowed) = {
            let mut st = self.state.lock();
            st.stats.mem_reads += 1;
            let caller_name = st
                .compartments
                .get(&caller)
                .map(|c| c.name.clone())
                .unwrap_or_default();
            let grant = Self::policy_of_locked(&st, caller)?.mem_grant(buf.tag);
            let region = MemRegion::Tagged {
                tag: buf.tag,
                alloc_offset: buf.offset,
            };
            let permitted = grant.map(|g| g.permits(AccessMode::Read)).unwrap_or(false);
            if !permitted {
                let denied = self.deny(&mut st, caller, region.clone(), AccessMode::Read);
                if let Err(e) = denied {
                    self.emit_access(
                        caller,
                        &caller_name,
                        region,
                        offset,
                        len,
                        AccessMode::Read,
                        false,
                    );
                    return Err(e);
                }
            }
            // Bounds checks against the live allocation.
            if offset
                .checked_add(len)
                .map(|end| end > buf.len)
                .unwrap_or(true)
            {
                return Err(WedgeError::OutOfBounds {
                    tag: buf.tag,
                    offset: buf.offset + offset,
                    len,
                });
            }
            let entry = st
                .segments
                .get(&buf.tag)
                .ok_or(WedgeError::UnknownTag(buf.tag))?;
            if !entry
                .segment
                .arena()
                .contains_live_range(buf.offset, buf.len)
            {
                return Err(WedgeError::OutOfBounds {
                    tag: buf.tag,
                    offset: buf.offset,
                    len: buf.len,
                });
            }
            let start = buf.offset + offset;
            // Copy-on-write view: if this compartment has a private overlay
            // for the tag, reads come from it.
            let data = if let Some(overlay) = st.cow_overlays.get(&(caller, buf.tag)) {
                overlay[start..start + len].to_vec()
            } else {
                entry.segment.arena().data()[start..start + len].to_vec()
            };
            (data, caller_name, permitted)
        };
        self.emit_access(
            caller,
            &caller_name,
            MemRegion::Tagged {
                tag: buf.tag,
                alloc_offset: buf.offset,
            },
            offset,
            len,
            AccessMode::Read,
            allowed,
        );
        Ok(result)
    }

    /// Write `data` at `offset` within a tagged buffer.
    pub(crate) fn mem_write(
        &self,
        caller: CompartmentId,
        buf: &SBuf,
        offset: usize,
        data: &[u8],
    ) -> Result<(), WedgeError> {
        let (caller_name, allowed) = {
            let mut st = self.state.lock();
            st.stats.mem_writes += 1;
            let caller_name = st
                .compartments
                .get(&caller)
                .map(|c| c.name.clone())
                .unwrap_or_default();
            let grant = Self::policy_of_locked(&st, caller)?.mem_grant(buf.tag);
            let region = MemRegion::Tagged {
                tag: buf.tag,
                alloc_offset: buf.offset,
            };
            let permitted = grant.map(|g| g.permits(AccessMode::Write)).unwrap_or(false);
            if !permitted {
                let denied = self.deny(&mut st, caller, region.clone(), AccessMode::Write);
                if let Err(e) = denied {
                    self.emit_access(
                        caller,
                        &caller_name,
                        region,
                        offset,
                        data.len(),
                        AccessMode::Write,
                        false,
                    );
                    return Err(e);
                }
            }
            if offset
                .checked_add(data.len())
                .map(|end| end > buf.len)
                .unwrap_or(true)
            {
                return Err(WedgeError::OutOfBounds {
                    tag: buf.tag,
                    offset: buf.offset + offset,
                    len: data.len(),
                });
            }
            let writes_shared = grant.map(|g| g.writes_shared()).unwrap_or(true);
            let start = buf.offset + offset;
            if writes_shared {
                let entry = st
                    .segments
                    .get_mut(&buf.tag)
                    .ok_or(WedgeError::UnknownTag(buf.tag))?;
                if !entry
                    .segment
                    .arena()
                    .contains_live_range(buf.offset, buf.len)
                {
                    return Err(WedgeError::OutOfBounds {
                        tag: buf.tag,
                        offset: buf.offset,
                        len: buf.len,
                    });
                }
                entry.segment.arena_mut().data_mut()[start..start + data.len()]
                    .copy_from_slice(data);
            } else {
                // Copy-on-write: materialise the overlay on first write.
                let base = {
                    let entry = st
                        .segments
                        .get(&buf.tag)
                        .ok_or(WedgeError::UnknownTag(buf.tag))?;
                    entry.segment.arena().data().to_vec()
                };
                let overlay = st.cow_overlays.entry((caller, buf.tag)).or_insert(base);
                overlay[start..start + data.len()].copy_from_slice(data);
            }
            (caller_name, permitted)
        };
        self.emit_access(
            caller,
            &caller_name,
            MemRegion::Tagged {
                tag: buf.tag,
                alloc_offset: buf.offset,
            },
            offset,
            data.len(),
            AccessMode::Write,
            allowed,
        );
        Ok(())
    }

    /// Is the tag private (backing untagged allocations)?
    pub fn is_private_tag(&self, tag: Tag) -> bool {
        self.state
            .lock()
            .segments
            .get(&tag)
            .map(|s| s.private)
            .unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Globals and boundary variables (the pre-main snapshot)
    // ------------------------------------------------------------------

    /// Register a global variable as part of the pre-`main` snapshot. Every
    /// compartment receives a copy-on-write view of it by default.
    pub fn register_global(&self, name: &str, initial: &[u8]) {
        let mut st = self.state.lock();
        st.globals.insert(
            name.to_string(),
            GlobalVar {
                initial: initial.to_vec(),
                boundary: None,
            },
        );
    }

    /// Declare a global with `BOUNDARY_VAR`: the variable is carved out of
    /// the snapshot and placed in tagged memory shared by all globals with
    /// the same `boundary_id`. Compartments need an explicit grant on the
    /// boundary tag to touch it.
    pub(crate) fn boundary_var(
        &self,
        caller: CompartmentId,
        name: &str,
        initial: &[u8],
        boundary_id: u32,
    ) -> Result<SBuf, WedgeError> {
        // Look up the existing tag in its own statement so the state guard is
        // dropped before `tag_new` / the re-lock below (holding it across the
        // `None` arm would self-deadlock).
        let existing = self.state.lock().boundary_tags.get(&boundary_id).copied();
        let tag = match existing {
            Some(tag) => tag,
            None => {
                let tag = self.tag_new(caller)?;
                self.state.lock().boundary_tags.insert(boundary_id, tag);
                tag
            }
        };
        let buf = self.smalloc(caller, initial.len().max(1), tag)?;
        self.mem_write(caller, &buf, 0, initial)?;
        let mut st = self.state.lock();
        st.globals.insert(
            name.to_string(),
            GlobalVar {
                initial: initial.to_vec(),
                boundary: Some((boundary_id, buf)),
            },
        );
        Ok(buf)
    }

    /// `BOUNDARY_TAG`: the tag protecting all globals declared with the
    /// given boundary id.
    pub fn boundary_tag(&self, boundary_id: u32) -> Result<Tag, WedgeError> {
        self.state
            .lock()
            .boundary_tags
            .get(&boundary_id)
            .copied()
            .ok_or_else(|| WedgeError::UnknownGlobal(format!("boundary {boundary_id}")))
    }

    /// The tagged buffer behind a boundary global.
    pub fn boundary_buf(&self, name: &str) -> Result<SBuf, WedgeError> {
        let st = self.state.lock();
        let var = st
            .globals
            .get(name)
            .ok_or_else(|| WedgeError::UnknownGlobal(name.to_string()))?;
        var.boundary
            .map(|(_, buf)| buf)
            .ok_or_else(|| WedgeError::UnknownGlobal(format!("{name} is not a boundary var")))
    }

    /// Read a snapshot global. Ordinary globals are readable by every
    /// compartment (each sees its own COW view); boundary globals must be
    /// read through their tag instead.
    pub(crate) fn global_read(
        &self,
        caller: CompartmentId,
        name: &str,
    ) -> Result<Vec<u8>, WedgeError> {
        let (data, caller_name) = {
            let st = self.state.lock();
            let caller_name = st
                .compartments
                .get(&caller)
                .map(|c| c.name.clone())
                .unwrap_or_default();
            let var = st
                .globals
                .get(name)
                .ok_or_else(|| WedgeError::UnknownGlobal(name.to_string()))?;
            if let Some((_, buf)) = var.boundary {
                drop(st);
                return self.mem_read(caller, &buf, 0, buf.len);
            }
            let data = st
                .global_overlays
                .get(&(caller, name.to_string()))
                .cloned()
                .unwrap_or_else(|| var.initial.clone());
            (data, caller_name)
        };
        self.emit_access(
            caller,
            &caller_name,
            MemRegion::Global {
                name: name.to_string(),
            },
            0,
            data.len(),
            AccessMode::Read,
            true,
        );
        Ok(data)
    }

    /// Write a snapshot global. Writes always go to the calling
    /// compartment's private COW view (the snapshot itself is immutable
    /// after `main` starts).
    pub(crate) fn global_write(
        &self,
        caller: CompartmentId,
        name: &str,
        value: &[u8],
    ) -> Result<(), WedgeError> {
        let caller_name = {
            let mut st = self.state.lock();
            let caller_name = st
                .compartments
                .get(&caller)
                .map(|c| c.name.clone())
                .unwrap_or_default();
            let var = st
                .globals
                .get(name)
                .ok_or_else(|| WedgeError::UnknownGlobal(name.to_string()))?;
            if let Some((_, buf)) = var.boundary {
                drop(st);
                return self.mem_write(caller, &buf, 0, value);
            }
            st.global_overlays
                .insert((caller, name.to_string()), value.to_vec());
            caller_name
        };
        self.emit_access(
            caller,
            &caller_name,
            MemRegion::Global {
                name: name.to_string(),
            },
            0,
            value.len(),
            AccessMode::Write,
            true,
        );
        Ok(())
    }

    /// Names of all registered globals (used by Crowbar reports).
    pub fn global_names(&self) -> Vec<String> {
        let st = self.state.lock();
        let mut names: Vec<String> = st.globals.keys().cloned().collect();
        names.sort();
        names
    }

    // ------------------------------------------------------------------
    // File descriptors
    // ------------------------------------------------------------------

    /// Create a file-backed descriptor and grant the creator read-write
    /// access to it.
    pub(crate) fn fd_create_file(
        &self,
        caller: CompartmentId,
        name: &str,
        data: Vec<u8>,
    ) -> Result<FdId, WedgeError> {
        self.fd_create(caller, FdEntry::file(name, data))
    }

    /// Create a stream-backed descriptor and grant the creator read-write
    /// access to it.
    pub(crate) fn fd_create_stream(
        &self,
        caller: CompartmentId,
        name: &str,
    ) -> Result<FdId, WedgeError> {
        self.fd_create(caller, FdEntry::stream(name))
    }

    fn fd_create(&self, caller: CompartmentId, entry: FdEntry) -> Result<FdId, WedgeError> {
        let mut st = self.state.lock();
        if !st.compartments.contains_key(&caller) {
            return Err(WedgeError::UnknownCompartment(caller));
        }
        let fd = FdId(st.next_fd);
        st.next_fd += 1;
        st.fds.insert(fd, entry);
        st.fd_owners.insert(fd, caller);
        if let Some(c) = st.compartments.get_mut(&caller) {
            if !c.policy.is_unconfined() {
                c.policy.sc_fd_add(fd, FdProt::ReadWrite);
            }
        }
        Ok(fd)
    }

    fn fd_check(
        &self,
        st: &mut KernelState,
        caller: CompartmentId,
        fd: FdId,
        mode: AccessMode,
    ) -> Result<FdEntry, WedgeError> {
        let grant = Self::policy_of_locked(st, caller)?.fd_grant(fd);
        let entry = st.fds.get(&fd).ok_or(WedgeError::UnknownFd(fd))?.clone();
        let permitted = match (grant, mode) {
            (Some(g), AccessMode::Read) => g.can_read(),
            (Some(g), AccessMode::Write) => g.can_write(),
            (None, _) => false,
        };
        if !permitted {
            let region = MemRegion::Fd {
                fd,
                name: entry.name(),
            };
            self.deny(st, caller, region, mode)?;
        }
        Ok(entry)
    }

    /// Read up to `len` bytes from a descriptor.
    pub(crate) fn fd_read(
        &self,
        caller: CompartmentId,
        fd: FdId,
        len: usize,
    ) -> Result<Vec<u8>, WedgeError> {
        let (data, name, caller_name) = {
            let mut st = self.state.lock();
            st.stats.fd_reads += 1;
            let caller_name = st
                .compartments
                .get(&caller)
                .map(|c| c.name.clone())
                .unwrap_or_default();
            let entry = self.fd_check(&mut st, caller, fd, AccessMode::Read)?;
            (entry.read(len), entry.name(), caller_name)
        };
        self.emit_access(
            caller,
            &caller_name,
            MemRegion::Fd { fd, name },
            0,
            data.len(),
            AccessMode::Read,
            true,
        );
        Ok(data)
    }

    /// Write bytes to a descriptor.
    pub(crate) fn fd_write(
        &self,
        caller: CompartmentId,
        fd: FdId,
        data: &[u8],
    ) -> Result<usize, WedgeError> {
        let (written, name, caller_name) = {
            let mut st = self.state.lock();
            st.stats.fd_writes += 1;
            let caller_name = st
                .compartments
                .get(&caller)
                .map(|c| c.name.clone())
                .unwrap_or_default();
            let entry = self.fd_check(&mut st, caller, fd, AccessMode::Write)?;
            (entry.write(data), entry.name(), caller_name)
        };
        self.emit_access(
            caller,
            &caller_name,
            MemRegion::Fd { fd, name },
            0,
            data.len(),
            AccessMode::Write,
            true,
        );
        Ok(written)
    }

    /// Peek at a descriptor's full contents without policy checks. Reserved
    /// for experiment harnesses (the "omniscient observer"), never used by
    /// application compartments.
    pub fn fd_peek_unchecked(&self, fd: FdId) -> Result<Vec<u8>, WedgeError> {
        let st = self.state.lock();
        st.fds
            .get(&fd)
            .map(|e| e.peek_all())
            .ok_or(WedgeError::UnknownFd(fd))
    }

    // ------------------------------------------------------------------
    // Syscalls
    // ------------------------------------------------------------------

    /// Check a syscall against the caller's allow-list.
    pub(crate) fn syscall_check(
        &self,
        caller: CompartmentId,
        syscall: Syscall,
    ) -> Result<(), WedgeError> {
        let st = self.state.lock();
        let policy = Self::policy_of_locked(&st, caller)?;
        if policy.is_unconfined() || policy.syscalls.permits(syscall) {
            Ok(())
        } else {
            Err(WedgeError::SyscallDenied {
                compartment: caller,
                syscall,
            })
        }
    }

    // ------------------------------------------------------------------
    // Callgates
    // ------------------------------------------------------------------

    /// Register a callgate entry point (program text). Returns the id used
    /// in `sc_cgate_add` and `cgate`.
    pub fn cgate_register(&self, name: &str, entry: CallgateFn) -> CgEntryId {
        let mut st = self.state.lock();
        let id = CgEntryId(st.next_entry);
        st.next_entry += 1;
        st.callgate_entries.insert(id, (name.to_string(), entry));
        id
    }

    /// The human-readable name of a callgate entry point.
    pub fn cgate_name(&self, entry: CgEntryId) -> Option<String> {
        self.state
            .lock()
            .callgate_entries
            .get(&entry)
            .map(|(n, _)| n.clone())
    }

    /// Validate an invocation and return what the caller needs to run it:
    /// the entry function, the effective policy (instance policy plus the
    /// caller's extra argument-reading grants), the trusted argument and the
    /// instance creator.
    pub(crate) fn cgate_prepare(
        &self,
        caller: CompartmentId,
        entry: CgEntryId,
        extra: &SecurityPolicy,
        recycled: bool,
    ) -> Result<PreparedCall, WedgeError> {
        let mut st = self.state.lock();
        let caller_policy = Self::policy_of_locked(&st, caller)?.clone();
        let instance = st.callgate_instances.get(&(caller, entry)).cloned().ok_or(
            WedgeError::CallgateDenied {
                compartment: caller,
                entry,
            },
        )?;
        // The extra, argument-accessing permissions must be a subset of the
        // caller's current permissions (§4.1).
        for (tag, prot) in extra.mem_grants() {
            match caller_policy.mem_grant(*tag) {
                Some(have) if have.allows_delegation_of(*prot) => {}
                _ => {
                    return Err(WedgeError::PrivilegeEscalation {
                        detail: format!("extra grant {tag}:{prot:?} exceeds caller's privileges"),
                    })
                }
            }
        }
        for (fd, prot) in extra.fd_grants() {
            match caller_policy.fd_grant(*fd) {
                Some(have) if have.allows_delegation_of(*prot) => {}
                _ => {
                    return Err(WedgeError::PrivilegeEscalation {
                        detail: format!("extra grant {fd}:{prot:?} exceeds caller's privileges"),
                    })
                }
            }
        }
        let (_, entry_fn) = st
            .callgate_entries
            .get(&entry)
            .cloned()
            .ok_or(WedgeError::UnknownCallgate(entry))?;
        let mut effective = instance.policy.clone();
        effective.merge_grants(extra);
        if recycled {
            st.stats.recycled_invocations += 1;
        }
        Ok(PreparedCall {
            entry_fn,
            policy: effective,
            trusted: instance.trusted.clone(),
            creator: instance.creator,
        })
    }

    /// Zeroize a compartment's per-principal state: **every** segment it
    /// created (its private scratch and any tags it made with `tag_new`) is
    /// wiped and recycled, every descriptor it created is removed from the
    /// fd table, its copy-on-write views of tagged memory and snapshot
    /// globals are dropped, and its policy is reset to `baseline` (the
    /// spawn-time policy), undoing the implicit grants `tag_new` /
    /// `fd_create` accumulate. Used between principals on pooled recycled
    /// workers — the §3.3 residue a reused activation could otherwise leak
    /// to the next caller.
    pub(crate) fn scrub_compartment(
        &self,
        id: CompartmentId,
        baseline: &SecurityPolicy,
    ) -> Result<(), WedgeError> {
        let mut st = self.state.lock();
        {
            let entry = st
                .compartments
                .get_mut(&id)
                .ok_or(WedgeError::UnknownCompartment(id))?;
            entry.private_tag = None;
            entry.policy = baseline.clone();
        }
        let owned: Vec<Tag> = st
            .segments
            .iter()
            .filter(|(_, seg)| seg.owner == id)
            .map(|(tag, _)| *tag)
            .collect();
        for tag in owned {
            if let Some(mut seg) = st.segments.remove(&tag) {
                // The tag cache only scrubs on *reuse*; zero eagerly so the
                // parked segment never holds the previous principal's bytes.
                seg.segment.arena_mut().data_mut().fill(0);
                st.tag_cache.release(seg.segment);
                st.stats.tags_deleted += 1;
            }
            st.cow_overlays.retain(|(_, t), _| *t != tag);
        }
        // Descriptors the principal created go too — their buffered bytes
        // are per-principal state the next checkout must not inherit.
        let owned_fds: Vec<FdId> = st
            .fd_owners
            .iter()
            .filter(|(_, owner)| **owner == id)
            .map(|(fd, _)| *fd)
            .collect();
        for fd in owned_fds {
            st.fds.remove(&fd);
            st.fd_owners.remove(&fd);
        }
        st.cow_overlays.retain(|(c, _), _| *c != id);
        st.global_overlays.retain(|(c, _), _| *c != id);
        st.stats.private_scrubs += 1;
        Ok(())
    }

    /// The registered entry function of a callgate (pooled-worker spawning).
    pub(crate) fn cgate_entry_fn(&self, entry: CgEntryId) -> Option<CallgateFn> {
        self.state
            .lock()
            .callgate_entries
            .get(&entry)
            .map(|(_, f)| f.clone())
    }

    /// Count one recycled-callgate invocation (pooled workers invoke without
    /// going through `cgate_prepare`, so they account here instead).
    pub(crate) fn note_recycled_invocation(&self) {
        self.state.lock().stats.recycled_invocations += 1;
    }

    /// Look up an existing recycled worker for `(caller, entry)`.
    pub(crate) fn recycled_worker(
        &self,
        caller: CompartmentId,
        entry: CgEntryId,
    ) -> Option<Arc<RecycledWorker>> {
        self.state.lock().recycled.get(&(caller, entry)).cloned()
    }

    /// Store a newly created recycled worker.
    pub(crate) fn store_recycled_worker(
        &self,
        caller: CompartmentId,
        entry: CgEntryId,
        worker: Arc<RecycledWorker>,
    ) {
        self.state.lock().recycled.insert((caller, entry), worker);
    }

    /// Merge additional grants into an existing compartment's policy (used
    /// by recycled callgates, which trade some isolation for speed).
    pub(crate) fn widen_policy(&self, id: CompartmentId, extra: &SecurityPolicy) {
        let mut st = self.state.lock();
        if let Some(c) = st.compartments.get_mut(&id) {
            c.policy.merge_grants(extra);
        }
    }

    /// Emit a function-boundary event to the tracer (used for Crowbar's
    /// shadow backtraces).
    pub(crate) fn emit_call(&self, compartment: CompartmentId, function: &str, entering: bool) {
        if let Some(tracer) = self.tracer() {
            tracer.on_call(&CallEvent {
                compartment,
                function: function.to_string(),
                entering,
            });
        }
    }

    /// Emit a free event to the tracer.
    pub(crate) fn emit_free(&self, compartment: CompartmentId, tag: Tag, alloc_offset: usize) {
        if let Some(tracer) = self.tracer() {
            tracer.on_free(compartment, tag, alloc_offset);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_and_root() -> (Arc<Kernel>, SthreadCtx) {
        let kernel = Arc::new(Kernel::new());
        let root = kernel.create_root_compartment("root");
        (kernel, root)
    }

    #[test]
    fn tag_new_grants_creator_rw() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        let buf = kernel.smalloc(root.id(), 16, tag).unwrap();
        kernel.mem_write(root.id(), &buf, 0, b"abcd").unwrap();
        assert_eq!(kernel.mem_read(root.id(), &buf, 0, 4).unwrap(), b"abcd");
        assert_eq!(kernel.stats().tags_created, 1);
    }

    #[test]
    fn unknown_tag_is_reported() {
        let (kernel, root) = kernel_and_root();
        assert!(matches!(
            kernel.smalloc(root.id(), 8, Tag(999)),
            Err(WedgeError::UnknownTag(Tag(999)))
        ));
    }

    #[test]
    fn out_of_bounds_reads_rejected() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        let buf = kernel.smalloc(root.id(), 8, tag).unwrap();
        assert!(matches!(
            kernel.mem_read(root.id(), &buf, 4, 8),
            Err(WedgeError::OutOfBounds { .. })
        ));
        assert!(matches!(
            kernel.mem_write(root.id(), &buf, 7, b"toolong"),
            Err(WedgeError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn tag_delete_recycles_segment() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        kernel.tag_delete(root.id(), tag).unwrap();
        assert!(matches!(
            kernel.smalloc(root.id(), 8, tag),
            Err(WedgeError::UnknownTag(_))
        ));
        // A subsequent tag_new reuses the cached segment (generation > 1 is
        // internal, but the stats show no extra mmap).
        let _tag2 = kernel.tag_new(root.id()).unwrap();
        assert_eq!(kernel.stats().tags_created, 2);
        assert_eq!(kernel.stats().tags_deleted, 1);
    }

    #[test]
    fn globals_have_per_compartment_cow_views() {
        let (kernel, root) = kernel_and_root();
        kernel.register_global("config", b"initial");
        assert_eq!(kernel.global_read(root.id(), "config").unwrap(), b"initial");
        kernel
            .global_write(root.id(), "config", b"changed")
            .unwrap();
        assert_eq!(kernel.global_read(root.id(), "config").unwrap(), b"changed");

        // A second compartment still sees the pristine snapshot value.
        let child = kernel
            .register_child(
                root.id(),
                "child",
                &SecurityPolicy::deny_all(),
                ChildKind::Sthread,
            )
            .unwrap();
        assert_eq!(kernel.global_read(child, "config").unwrap(), b"initial");
    }

    #[test]
    fn unknown_global_is_an_error() {
        let (kernel, root) = kernel_and_root();
        assert!(matches!(
            kernel.global_read(root.id(), "nope"),
            Err(WedgeError::UnknownGlobal(_))
        ));
    }

    #[test]
    fn fd_permissions_are_enforced() {
        let (kernel, root) = kernel_and_root();
        let fd = kernel
            .fd_create_file(root.id(), "/etc/shadow", b"root:x".to_vec())
            .unwrap();
        // Root (unconfined) may read.
        assert_eq!(kernel.fd_read(root.id(), fd, 4).unwrap(), b"root");

        // A default-deny child may not.
        let child = kernel
            .register_child(
                root.id(),
                "worker",
                &SecurityPolicy::deny_all(),
                ChildKind::Sthread,
            )
            .unwrap();
        assert!(matches!(
            kernel.fd_read(child, fd, 4),
            Err(WedgeError::FdFault { .. })
        ));

        // A child granted read-only access may read but not write.
        let mut policy = SecurityPolicy::deny_all();
        policy.sc_fd_add(fd, FdProt::Read);
        let reader = kernel
            .register_child(root.id(), "reader", &policy, ChildKind::Sthread)
            .unwrap();
        assert_eq!(kernel.fd_read(reader, fd, 2), Ok(b":x".to_vec()));
        assert!(matches!(
            kernel.fd_write(reader, fd, b"evil"),
            Err(WedgeError::FdFault { .. })
        ));
    }

    #[test]
    fn emulation_mode_records_but_allows() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        let buf = kernel.smalloc(root.id(), 8, tag).unwrap();
        kernel.mem_write(root.id(), &buf, 0, b"secret!!").unwrap();

        let child = kernel
            .register_child(
                root.id(),
                "worker",
                &SecurityPolicy::deny_all(),
                ChildKind::Sthread,
            )
            .unwrap();
        // Without emulation: fault.
        assert!(kernel.mem_read(child, &buf, 0, 8).is_err());
        assert_eq!(kernel.stats().faults, 1);

        // With emulation: allowed, recorded.
        kernel.set_emulation(true);
        assert_eq!(kernel.mem_read(child, &buf, 0, 8).unwrap(), b"secret!!");
        let violations = kernel.violations();
        assert_eq!(violations.len(), 2);
        assert!(violations[1].emulated);
        assert_eq!(kernel.stats().emulated_violations, 1);
    }

    #[test]
    fn private_allocations_cannot_be_granted() {
        let (kernel, root) = kernel_and_root();
        let child = kernel
            .register_child(
                root.id(),
                "worker",
                &SecurityPolicy::deny_all(),
                ChildKind::Sthread,
            )
            .unwrap();
        let private = kernel.private_alloc(child, 32).unwrap();
        assert!(kernel.is_private_tag(private.tag));

        // Another compartment cannot be granted that tag.
        let mut policy = SecurityPolicy::deny_all();
        policy.sc_mem_add(private.tag, MemProt::Read);
        // The root is unconfined so subset validation passes, but the
        // private-tag check still refuses.
        assert!(matches!(
            kernel.register_child(root.id(), "spy", &policy, ChildKind::Sthread),
            Err(WedgeError::PrivateTag(_))
        ));
    }

    #[test]
    fn subset_violations_surface_as_privilege_escalation() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        let mut parent_policy = SecurityPolicy::deny_all();
        parent_policy.sc_mem_add(tag, MemProt::Read);
        let parent = kernel
            .register_child(root.id(), "parent", &parent_policy, ChildKind::Sthread)
            .unwrap();

        let mut child_policy = SecurityPolicy::deny_all();
        child_policy.sc_mem_add(tag, MemProt::ReadWrite);
        assert!(matches!(
            kernel.register_child(parent, "child", &child_policy, ChildKind::Sthread),
            Err(WedgeError::PrivilegeEscalation { .. })
        ));
    }

    #[test]
    fn identity_transition_requires_root_caller() {
        let (kernel, root) = kernel_and_root();
        let worker = kernel
            .register_child(
                root.id(),
                "worker",
                &SecurityPolicy::deny_all().with_uid(Uid(1000)),
                ChildKind::Sthread,
            )
            .unwrap();
        // Root caller may change the worker's identity.
        kernel
            .transition_identity(root.id(), worker, Uid(42), Some("/home/user"))
            .unwrap();
        assert_eq!(kernel.uid_of(worker).unwrap(), Uid(42));
        assert_eq!(kernel.policy_of(worker).unwrap().fs_root, "/home/user");

        // The (now uid 42) worker cannot change identities itself.
        assert!(kernel
            .transition_identity(worker, worker, Uid(0), None)
            .is_err());
    }

    #[test]
    fn syscall_checks_respect_policy() {
        let (kernel, root) = kernel_and_root();
        let mut policy = SecurityPolicy::deny_all();
        policy.sc_sel_context(crate::syscall::SyscallPolicy::allowing(
            "net_t",
            &[Syscall::Send, Syscall::Recv],
        ));
        // Need a domain transition from the parent's allow-all context.
        kernel.allow_domain_transition("wedge_u:wedge_r:unconfined_t", "net_t");
        let child = kernel
            .register_child(root.id(), "net", &policy, ChildKind::Sthread)
            .unwrap();
        assert!(kernel.syscall_check(child, Syscall::Send).is_ok());
        assert!(matches!(
            kernel.syscall_check(child, Syscall::Open),
            Err(WedgeError::SyscallDenied { .. })
        ));
        assert!(kernel.syscall_check(root.id(), Syscall::Open).is_ok());
    }

    #[test]
    fn boundary_vars_require_grants() {
        let (kernel, root) = kernel_and_root();
        kernel
            .boundary_var(root.id(), "secret_global", b"hunter2", 7)
            .unwrap();
        let tag = kernel.boundary_tag(7).unwrap();
        let buf = kernel.boundary_buf("secret_global").unwrap();
        assert_eq!(buf.tag, tag);

        // Default-deny child cannot read it.
        let child = kernel
            .register_child(
                root.id(),
                "worker",
                &SecurityPolicy::deny_all(),
                ChildKind::Sthread,
            )
            .unwrap();
        assert!(kernel.mem_read(child, &buf, 0, 7).is_err());

        // Ordinary global_read on a boundary var goes through the tag check
        // as well.
        assert!(kernel.global_read(child, "secret_global").is_err());

        // A granted child can.
        let mut policy = SecurityPolicy::deny_all();
        policy.sc_mem_add(tag, MemProt::Read);
        let reader = kernel
            .register_child(root.id(), "reader", &policy, ChildKind::Sthread)
            .unwrap();
        assert_eq!(kernel.mem_read(reader, &buf, 0, 7).unwrap(), b"hunter2");
    }

    #[test]
    fn cow_grants_isolate_writes() {
        let (kernel, root) = kernel_and_root();
        let tag = kernel.tag_new(root.id()).unwrap();
        let buf = kernel.smalloc(root.id(), 8, tag).unwrap();
        kernel.mem_write(root.id(), &buf, 0, b"original").unwrap();

        let mut policy = SecurityPolicy::deny_all();
        policy.sc_mem_add(tag, MemProt::CopyOnWrite);
        let child = kernel
            .register_child(root.id(), "cow", &policy, ChildKind::Sthread)
            .unwrap();

        // The child reads the shared value, writes privately.
        assert_eq!(kernel.mem_read(child, &buf, 0, 8).unwrap(), b"original");
        kernel.mem_write(child, &buf, 0, b"mutated!").unwrap();
        assert_eq!(kernel.mem_read(child, &buf, 0, 8).unwrap(), b"mutated!");
        // The shared copy (and the root's view) is untouched.
        assert_eq!(kernel.mem_read(root.id(), &buf, 0, 8).unwrap(), b"original");
    }
}
