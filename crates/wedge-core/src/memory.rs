//! Tagged-memory handles.
//!
//! An [`SBuf`] names a buffer returned by `smalloc`: the tag it was
//! allocated under, its payload offset within the tag's segment, and its
//! length. An `SBuf` is only a *name* — possessing one conveys no access;
//! every read or write goes through a [`crate::SthreadCtx`], which asks the
//! simulated kernel to check the calling compartment's policy. This mirrors
//! the paper, where a pointer into tagged memory is meaningless to an
//! sthread whose page tables do not map the tag's pages.

use crate::tag::Tag;

/// A handle to a buffer allocated from a tagged segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SBuf {
    /// The tag of the segment the buffer lives in.
    pub tag: Tag,
    /// Payload offset of the buffer within the segment.
    pub offset: usize,
    /// Length of the buffer in bytes.
    pub len: usize,
}

impl SBuf {
    /// Construct a handle (normally done by the kernel's `smalloc`).
    pub fn new(tag: Tag, offset: usize, len: usize) -> Self {
        SBuf { tag, offset, len }
    }

    /// Length of the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the buffer zero-length?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-range of this buffer (relative offset), if it fits.
    pub fn slice(&self, offset: usize, len: usize) -> Option<SBuf> {
        if offset.checked_add(len)? <= self.len {
            Some(SBuf {
                tag: self.tag,
                offset: self.offset + offset,
                len,
            })
        } else {
            None
        }
    }
}

impl std::fmt::Display for SBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}+{}..{}",
            self.tag,
            self.offset,
            self.offset + self.len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_within_bounds() {
        let b = SBuf::new(Tag(1), 100, 50);
        let s = b.slice(10, 20).unwrap();
        assert_eq!(s.tag, Tag(1));
        assert_eq!(s.offset, 110);
        assert_eq!(s.len, 20);
    }

    #[test]
    fn slice_out_of_bounds_rejected() {
        let b = SBuf::new(Tag(1), 0, 10);
        assert!(b.slice(5, 6).is_none());
        assert!(b.slice(11, 0).is_none());
        assert!(b.slice(usize::MAX, 1).is_none());
    }

    #[test]
    fn empty_and_len() {
        assert!(SBuf::new(Tag(1), 0, 0).is_empty());
        assert_eq!(SBuf::new(Tag(1), 0, 5).len(), 5);
    }

    #[test]
    fn display_mentions_tag_and_range() {
        assert_eq!(SBuf::new(Tag(2), 16, 8).to_string(), "tag2+16..24");
    }
}
