//! The simulated kernel's file-descriptor table.
//!
//! Sthread policies list "the file descriptors the sthread may access, and
//! the permissions for each (read, write, read-write)" (§3.1). The
//! reproduction keeps descriptors in the kernel; each descriptor is backed
//! by an in-memory object (a file image or a byte stream), and every
//! `fd_read` / `fd_write` through a [`crate::SthreadCtx`] is checked against
//! the caller's policy.

use std::sync::Arc;

use parking_lot::Mutex;

/// A file-descriptor identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FdId(pub u64);

impl std::fmt::Display for FdId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// Permissions grantable on a file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FdProt {
    /// May read only.
    Read,
    /// May write only.
    Write,
    /// May read and write.
    ReadWrite,
}

impl FdProt {
    /// Does this grant allow reading?
    pub fn can_read(self) -> bool {
        matches!(self, FdProt::Read | FdProt::ReadWrite)
    }

    /// Does this grant allow writing?
    pub fn can_write(self) -> bool {
        matches!(self, FdProt::Write | FdProt::ReadWrite)
    }

    /// May a holder of `self` delegate `child` to a new sthread?
    pub fn allows_delegation_of(self, child: FdProt) -> bool {
        match self {
            FdProt::ReadWrite => true,
            FdProt::Read => matches!(child, FdProt::Read),
            FdProt::Write => matches!(child, FdProt::Write),
        }
    }
}

/// The object a descriptor refers to.
#[derive(Debug)]
pub enum FdBacking {
    /// An in-memory file image with a read cursor. Writes append.
    File {
        /// File name (for diagnostics and Crowbar traces).
        name: String,
        /// Current contents.
        data: Vec<u8>,
        /// Read cursor.
        pos: usize,
    },
    /// A unidirectional byte stream (pipe-like): writes push to the buffer,
    /// reads drain from the front.
    Stream {
        /// Stream name.
        name: String,
        /// Buffered, not-yet-read bytes.
        buffer: Vec<u8>,
    },
}

impl FdBacking {
    /// Human-readable name of the backing object.
    pub fn name(&self) -> &str {
        match self {
            FdBacking::File { name, .. } | FdBacking::Stream { name, .. } => name,
        }
    }
}

/// A descriptor table entry (shared so that duplicated descriptors alias).
#[derive(Debug, Clone)]
pub struct FdEntry {
    backing: Arc<Mutex<FdBacking>>,
}

impl FdEntry {
    /// Create a file-backed descriptor with initial contents.
    pub fn file(name: &str, data: Vec<u8>) -> Self {
        FdEntry {
            backing: Arc::new(Mutex::new(FdBacking::File {
                name: name.to_string(),
                data,
                pos: 0,
            })),
        }
    }

    /// Create a stream-backed descriptor.
    pub fn stream(name: &str) -> Self {
        FdEntry {
            backing: Arc::new(Mutex::new(FdBacking::Stream {
                name: name.to_string(),
                buffer: Vec::new(),
            })),
        }
    }

    /// Name of the backing object.
    pub fn name(&self) -> String {
        self.backing.lock().name().to_string()
    }

    /// Read up to `len` bytes.
    pub fn read(&self, len: usize) -> Vec<u8> {
        let mut backing = self.backing.lock();
        match &mut *backing {
            FdBacking::File { data, pos, .. } => {
                let end = (*pos + len).min(data.len());
                let out = data[*pos..end].to_vec();
                *pos = end;
                out
            }
            FdBacking::Stream { buffer, .. } => {
                let take = len.min(buffer.len());
                buffer.drain(..take).collect()
            }
        }
    }

    /// Read everything remaining.
    pub fn read_all(&self) -> Vec<u8> {
        self.read(usize::MAX / 2)
    }

    /// Write (append) bytes; returns the number written.
    pub fn write(&self, bytes: &[u8]) -> usize {
        let mut backing = self.backing.lock();
        match &mut *backing {
            FdBacking::File { data, .. } => {
                data.extend_from_slice(bytes);
                bytes.len()
            }
            FdBacking::Stream { buffer, .. } => {
                buffer.extend_from_slice(bytes);
                bytes.len()
            }
        }
    }

    /// Current size of the backing contents (file length or buffered bytes).
    pub fn len(&self) -> usize {
        let backing = self.backing.lock();
        match &*backing {
            FdBacking::File { data, .. } => data.len(),
            FdBacking::Stream { buffer, .. } => buffer.len(),
        }
    }

    /// Is the backing object empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the full contents without consuming them (files only
    /// return their entire image; streams return the unread buffer).
    pub fn peek_all(&self) -> Vec<u8> {
        let backing = self.backing.lock();
        match &*backing {
            FdBacking::File { data, .. } => data.clone(),
            FdBacking::Stream { buffer, .. } => buffer.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdprot_capabilities() {
        assert!(FdProt::Read.can_read() && !FdProt::Read.can_write());
        assert!(!FdProt::Write.can_read() && FdProt::Write.can_write());
        assert!(FdProt::ReadWrite.can_read() && FdProt::ReadWrite.can_write());
    }

    #[test]
    fn fdprot_delegation() {
        assert!(FdProt::ReadWrite.allows_delegation_of(FdProt::Read));
        assert!(FdProt::ReadWrite.allows_delegation_of(FdProt::Write));
        assert!(!FdProt::Read.allows_delegation_of(FdProt::Write));
        assert!(!FdProt::Write.allows_delegation_of(FdProt::ReadWrite));
        assert!(FdProt::Read.allows_delegation_of(FdProt::Read));
    }

    #[test]
    fn file_reads_advance_cursor_and_writes_append() {
        let fd = FdEntry::file("/etc/shadow", b"root:hash".to_vec());
        assert_eq!(fd.read(4), b"root");
        assert_eq!(fd.read(100), b":hash");
        assert_eq!(fd.read(10), b"");
        fd.write(b"\nuser:x");
        assert_eq!(fd.len(), b"root:hash\nuser:x".len());
        assert_eq!(fd.peek_all(), b"root:hash\nuser:x");
    }

    #[test]
    fn stream_is_fifo_and_draining() {
        let fd = FdEntry::stream("conn");
        fd.write(b"abc");
        fd.write(b"def");
        assert_eq!(fd.read(4), b"abcd");
        assert_eq!(fd.read_all(), b"ef");
        assert!(fd.is_empty());
    }

    #[test]
    fn cloned_entries_alias_the_same_backing() {
        let fd = FdEntry::stream("pipe");
        let dup = fd.clone();
        fd.write(b"xyz");
        assert_eq!(dup.read_all(), b"xyz");
    }
}
