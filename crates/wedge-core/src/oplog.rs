//! The shared policy operation log and per-shard kernel replicas.
//!
//! This is the node-replication (NR / "op-log") design applied to the
//! kernel's policy state: every policy mutation — runtime grants and
//! revocations, widenings, identity transitions, scrub resets, the
//! implicit grants `tag_new`/`fd_create` add, and compartment creation
//! itself — becomes a typed [`PolicyOp`] appended to one shared,
//! monotonically versioned [`OpLog`]. Readers never consult the
//! authoritative compartment table on the data path; instead each
//! [`KernelReplica`] lazily **replays** the log up to the published tail
//! and serves permission-cache refills from replica-local state.
//!
//! Three properties carry the design:
//!
//! * **Effects, not requests.** Ops are recorded *post-validation*: a
//!   [`PolicyOp::MemSet`] carries the resulting grant (or its absence),
//!   a [`PolicyOp::Snapshot`] carries a compartment's whole replicated
//!   view. Replay is therefore trivially deterministic — a replica
//!   applies exactly what the authoritative table did, in log order.
//! * **One tail, published with `Release`.** Appenders push entries and
//!   then store the new tail with `Release` *before* any completion is
//!   signalled; readers load it with `Acquire`. Once a mutation returns
//!   to its caller, every later-starting read observes a tail at or past
//!   it — the revoke-linearization point.
//! * **Version-precise invalidation.** A per-sthread permission cache
//!   remembers the tail version it last saw and, on change, scans only
//!   the new suffix for ops naming *its* compartment. Mutations aimed at
//!   other compartments cost a cached reader nothing — unlike the
//!   pre-refactor global-epoch scheme, which flushed every cache on any
//!   policy change.
//!
//! The flat-combining appender that batches concurrent mutators lives in
//! [`crate::kernel`] (it needs the compartments table); this module owns
//! the log, the replicas, and their counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use wedge_telemetry::trace::{self, SpanKind};
use wedge_telemetry::Histogram;

use crate::fdtable::{FdId, FdProt};
use crate::tag::{CompartmentId, IdHashMap, MemProt, Tag};

/// One replicated policy mutation, recorded *after* validation against
/// the authoritative table — replaying an op can never fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyOp {
    /// Set (or, with `prot: None`, clear) one compartment's memory grant
    /// for a tag. Emitted by `policy_add`, `policy_del` and the implicit
    /// creator grant of `tag_new`.
    MemSet {
        /// The compartment whose policy changed.
        target: CompartmentId,
        /// The tag the grant names.
        tag: Tag,
        /// The resulting grant; `None` means revoked.
        prot: Option<MemProt>,
    },
    /// Set (or clear) one compartment's descriptor grant. Emitted by the
    /// implicit creator grant of `fd_create`.
    FdSet {
        /// The compartment whose policy changed.
        target: CompartmentId,
        /// The descriptor the grant names.
        fd: FdId,
        /// The resulting grant; `None` means revoked.
        prot: Option<FdProt>,
    },
    /// Replace a compartment's whole replicated view. Emitted on
    /// compartment creation, `widen_policy` merges, scrub resets and
    /// identity transitions — the rare, coarse mutations where a full
    /// snapshot is cheaper than a diff and obviously correct.
    Snapshot {
        /// The compartment whose policy changed.
        target: CompartmentId,
        /// The replacement view. Boxed so the rare, large snapshot does
        /// not inflate the enum the common grant/revoke ops are stored
        /// as — log appends move `PolicyOp` by value.
        view: Box<SnapshotView>,
    },
}

/// The payload of a [`PolicyOp::Snapshot`]: one compartment's complete
/// replicated policy view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotView {
    /// Whether the resulting policy is unconfined.
    pub unconfined: bool,
    /// The complete set of memory grants after the mutation.
    pub mem: Vec<(Tag, MemProt)>,
    /// The complete set of descriptor grants after the mutation.
    pub fds: Vec<(FdId, FdProt)>,
}

impl PolicyOp {
    /// The compartment this op mutates.
    pub fn target(&self) -> CompartmentId {
        match self {
            PolicyOp::MemSet { target, .. }
            | PolicyOp::FdSet { target, .. }
            | PolicyOp::Snapshot { target, .. } => *target,
        }
    }

    /// The op's serialized wire size in bytes (tag byte + fixed fields +
    /// grant entries). This is what a replay-based shard boot ships in
    /// place of an address-space image, so boot cost scales with logged
    /// operations rather than image size.
    pub fn encoded_len(&self) -> usize {
        match self {
            PolicyOp::MemSet { .. } => 1 + 8 + 8 + 2,
            PolicyOp::FdSet { .. } => 1 + 8 + 8 + 2,
            PolicyOp::Snapshot { view, .. } => {
                1 + 8 + 1 + 4 + 10 * (view.mem.len() + view.fds.len())
            }
        }
    }
}

/// A point-in-time view of the log's counters (see [`OpLog::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpLogStats {
    /// Published log length (the current tail version).
    pub tail: u64,
    /// Total ops appended (direct appends and combined batches alike).
    pub appended: u64,
    /// Flat-combined batches drained (each covers one or more mutators'
    /// ops under a single tail acquisition).
    pub combined_batches: u64,
    /// Mutations that travelled through a combined batch.
    pub combined_ops: u64,
    /// Replica replay passes (a replica catching up to the tail).
    pub replays: u64,
    /// Ops applied across all replay passes.
    pub replayed_ops: u64,
}

/// The shared, monotonically versioned operation log.
///
/// Appends happen under the kernel's compartments write lock, so total
/// log order equals that lock's acquisition order; the tail is published
/// with `Release` after the entries are in place and read with `Acquire`
/// by every cache revalidation.
pub struct OpLog {
    entries: RwLock<Vec<PolicyOp>>,
    tail: AtomicU64,
    appended: AtomicU64,
    combined_batches: AtomicU64,
    combined_ops: AtomicU64,
    replays: AtomicU64,
    replayed_ops: AtomicU64,
    /// Live replay-latency histogram, bound by `Kernel::instrument`.
    replay_hist: std::sync::OnceLock<Histogram>,
}

impl Default for OpLog {
    fn default() -> Self {
        OpLog::new()
    }
}

impl OpLog {
    /// An empty log at version 0.
    pub fn new() -> OpLog {
        OpLog {
            entries: RwLock::new(Vec::new()),
            tail: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            combined_batches: AtomicU64::new(0),
            combined_ops: AtomicU64::new(0),
            replays: AtomicU64::new(0),
            replayed_ops: AtomicU64::new(0),
            replay_hist: std::sync::OnceLock::new(),
        }
    }

    /// The published tail version (`Acquire`: a reader that sees version
    /// `v` also sees every entry below `v`).
    #[inline]
    pub fn tail(&self) -> u64 {
        self.tail.load(Ordering::Acquire)
    }

    /// Append `ops` and publish the new tail. The caller must hold the
    /// kernel's compartments write lock (the appender serialisation
    /// point), and must signal any completion only *after* this returns —
    /// the `Release` store here is what makes a finished mutation visible
    /// to every later-starting read.
    pub fn publish(&self, ops: Vec<PolicyOp>) -> u64 {
        if ops.is_empty() {
            return self.tail.load(Ordering::Relaxed);
        }
        let count = ops.len() as u64;
        // One relaxed load when the appending thread carries no trace;
        // otherwise the apply lands in the caller's request trace.
        let _span = trace::span(SpanKind::KernelApply, count as u32);
        let new_tail = {
            let mut entries = self.entries.write();
            entries.extend(ops);
            entries.len() as u64
        };
        self.appended.fetch_add(count, Ordering::Relaxed);
        self.tail.store(new_tail, Ordering::Release);
        new_tail
    }

    /// [`OpLog::publish`], but draining a reusable buffer instead of
    /// consuming a `Vec` — the flat combiner's allocation-free append
    /// path (the buffer keeps its capacity for the next batch). The
    /// one-op case (an uncontended grant or revoke) skips the drain
    /// iterator entirely.
    pub fn publish_from(&self, ops: &mut Vec<PolicyOp>) -> u64 {
        let count = ops.len() as u64;
        if count == 0 {
            return self.tail.load(Ordering::Relaxed);
        }
        let _span = trace::span(SpanKind::KernelApply, count as u32);
        let new_tail = {
            let mut entries = self.entries.write();
            if count == 1 {
                entries.push(ops.pop().expect("len checked"));
            } else {
                entries.extend(ops.drain(..));
            }
            entries.len() as u64
        };
        self.appended.fetch_add(count, Ordering::Relaxed);
        self.tail.store(new_tail, Ordering::Release);
        new_tail
    }

    /// Record that one flat-combined batch of `ops` mutations was drained
    /// under a single tail acquisition.
    pub fn note_combined(&self, ops: usize) {
        self.combined_batches.fetch_add(1, Ordering::Relaxed);
        self.combined_ops.fetch_add(ops as u64, Ordering::Relaxed);
    }

    /// Visit the half-open version range `[from, to)` in log order.
    pub fn scan(&self, from: u64, to: u64, mut visit: impl FnMut(&PolicyOp)) {
        if from >= to {
            return;
        }
        let entries = self.entries.read();
        let to = (to as usize).min(entries.len());
        for op in &entries[from as usize..to] {
            visit(op);
        }
    }

    /// Total serialized size of the log — the control block a
    /// replay-based shard boot ships instead of an address-space image.
    pub fn encoded_bytes(&self) -> usize {
        self.entries.read().iter().map(PolicyOp::encoded_len).sum()
    }

    /// Bind the live replay-latency histogram (idempotent; the first
    /// telemetry registration wins).
    pub fn bind_replay_histogram(&self, hist: Histogram) {
        let _ = self.replay_hist.set(hist);
    }

    fn note_replay(&self, elapsed: Duration, ops: u64) {
        self.replays.fetch_add(1, Ordering::Relaxed);
        self.replayed_ops.fetch_add(ops, Ordering::Relaxed);
        if let Some(hist) = self.replay_hist.get() {
            hist.record_duration(elapsed);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> OpLogStats {
        OpLogStats {
            tail: self.tail.load(Ordering::Acquire),
            appended: self.appended.load(Ordering::Relaxed),
            combined_batches: self.combined_batches.load(Ordering::Relaxed),
            combined_ops: self.combined_ops.load(Ordering::Relaxed),
            replays: self.replays.load(Ordering::Relaxed),
            replayed_ops: self.replayed_ops.load(Ordering::Relaxed),
        }
    }
}

/// A compartment's replicated policy view: exactly the state the
/// permission-cache refill path needs, nothing more.
#[derive(Debug, Default, Clone)]
struct ReplicaPolicy {
    unconfined: bool,
    mem: IdHashMap<Tag, MemProt>,
    fds: IdHashMap<FdId, FdProt>,
}

struct ReplicaState {
    /// Log version this replica has applied up to.
    applied: u64,
    comps: IdHashMap<CompartmentId, ReplicaPolicy>,
}

impl ReplicaState {
    fn apply(&mut self, op: &PolicyOp) {
        match op {
            PolicyOp::MemSet { target, tag, prot } => {
                let entry = self.comps.entry(*target).or_default();
                match prot {
                    Some(prot) => {
                        entry.mem.insert(*tag, *prot);
                    }
                    None => {
                        entry.mem.remove(tag);
                    }
                }
            }
            PolicyOp::FdSet { target, fd, prot } => {
                let entry = self.comps.entry(*target).or_default();
                match prot {
                    Some(prot) => {
                        entry.fds.insert(*fd, *prot);
                    }
                    None => {
                        entry.fds.remove(fd);
                    }
                }
            }
            PolicyOp::Snapshot { target, view } => {
                let mut policy = ReplicaPolicy {
                    unconfined: view.unconfined,
                    ..ReplicaPolicy::default()
                };
                policy.mem.extend(view.mem.iter().copied());
                policy.fds.extend(view.fds.iter().copied());
                self.comps.insert(*target, policy);
            }
        }
    }
}

/// One kernel replica: a worker-shard-local copy of every compartment's
/// policy view, advanced by replaying the shared log. Reads (cache
/// refills) lock only this replica — never the authoritative table — so
/// the read majority carries zero cross-shard lock traffic.
pub struct KernelReplica {
    state: Mutex<ReplicaState>,
    /// Lock-free mirror of `state.applied` for the lag gauge.
    applied_hint: AtomicU64,
}

impl Default for KernelReplica {
    fn default() -> Self {
        KernelReplica::new()
    }
}

impl KernelReplica {
    /// A fresh replica at version 0 (it catches up on first use).
    pub fn new() -> KernelReplica {
        KernelReplica {
            state: Mutex::new(ReplicaState {
                applied: 0,
                comps: IdHashMap::default(),
            }),
            applied_hint: AtomicU64::new(0),
        }
    }

    /// The log version this replica has applied (lock-free; may lag the
    /// locked truth by one in-progress replay).
    pub fn applied(&self) -> u64 {
        self.applied_hint.load(Ordering::Relaxed)
    }

    /// Replay the log forward until this replica has applied at least
    /// `target`. No-op when already caught up; otherwise one locked pass
    /// over the new suffix, recorded in the replay-latency histogram.
    pub fn sync_to(&self, log: &OpLog, target: u64) {
        let mut state = self.state.lock();
        if state.applied >= target {
            return;
        }
        let started = Instant::now();
        let from = state.applied;
        let _span = trace::span(SpanKind::KernelReplay, (target - from) as u32);
        let st = &mut *state;
        log.scan(from, target, |op| st.apply(op));
        state.applied = target;
        self.applied_hint.store(target, Ordering::Relaxed);
        log.note_replay(started.elapsed(), target - from);
    }

    /// Is `comp` known to this replica (i.e. was its creation replayed)?
    pub fn contains(&self, comp: CompartmentId) -> bool {
        self.state.lock().comps.contains_key(&comp)
    }

    /// Whether `comp`'s replicated policy is unconfined, or `None` when
    /// the compartment is unknown at this replica's applied version.
    pub fn unconfined(&self, comp: CompartmentId) -> Option<bool> {
        self.state.lock().comps.get(&comp).map(|c| c.unconfined)
    }

    /// `comp`'s replicated memory grant for `tag`. Outer `None` means the
    /// compartment itself is unknown.
    pub fn mem_grant(&self, comp: CompartmentId, tag: Tag) -> Option<Option<MemProt>> {
        let state = self.state.lock();
        let view = state.comps.get(&comp)?;
        if view.unconfined {
            return Some(Some(MemProt::ReadWrite));
        }
        Some(view.mem.get(&tag).copied())
    }

    /// `comp`'s replicated descriptor grant for `fd`. Outer `None` means
    /// the compartment itself is unknown.
    pub fn fd_grant(&self, comp: CompartmentId, fd: FdId) -> Option<Option<FdProt>> {
        let state = self.state.lock();
        let view = state.comps.get(&comp)?;
        if view.unconfined {
            return Some(Some(FdProt::ReadWrite));
        }
        Some(view.fds.get(&fd).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: CompartmentId = CompartmentId(1);
    const C2: CompartmentId = CompartmentId(2);

    #[test]
    fn publish_advances_the_tail_and_counts() {
        let log = OpLog::new();
        assert_eq!(log.tail(), 0);
        log.publish(vec![PolicyOp::MemSet {
            target: C1,
            tag: Tag(7),
            prot: Some(MemProt::Read),
        }]);
        assert_eq!(log.tail(), 1);
        assert_eq!(log.publish(Vec::new()), 1, "empty publish is a no-op");
        let stats = log.stats();
        assert_eq!(stats.appended, 1);
        assert_eq!(stats.tail, 1);
    }

    #[test]
    fn replica_replays_grants_revokes_and_snapshots() {
        let log = OpLog::new();
        let replica = KernelReplica::new();
        log.publish(vec![
            PolicyOp::Snapshot {
                target: C1,
                view: Box::new(SnapshotView {
                    unconfined: false,
                    mem: vec![(Tag(1), MemProt::Read)],
                    fds: vec![(FdId(4), FdProt::Write)],
                }),
            },
            PolicyOp::MemSet {
                target: C1,
                tag: Tag(2),
                prot: Some(MemProt::ReadWrite),
            },
        ]);
        replica.sync_to(&log, log.tail());
        assert_eq!(replica.mem_grant(C1, Tag(1)), Some(Some(MemProt::Read)));
        assert_eq!(
            replica.mem_grant(C1, Tag(2)),
            Some(Some(MemProt::ReadWrite))
        );
        assert_eq!(replica.fd_grant(C1, FdId(4)), Some(Some(FdProt::Write)));
        assert_eq!(replica.mem_grant(C2, Tag(1)), None, "unknown compartment");

        // A revoke replayed later removes the grant; the snapshot reset
        // drops everything the diff ops accumulated.
        log.publish(vec![PolicyOp::MemSet {
            target: C1,
            tag: Tag(2),
            prot: None,
        }]);
        replica.sync_to(&log, log.tail());
        assert_eq!(replica.mem_grant(C1, Tag(2)), Some(None));
        log.publish(vec![PolicyOp::Snapshot {
            target: C1,
            view: Box::new(SnapshotView {
                unconfined: false,
                mem: Vec::new(),
                fds: Vec::new(),
            }),
        }]);
        replica.sync_to(&log, log.tail());
        assert_eq!(replica.mem_grant(C1, Tag(1)), Some(None));
        assert_eq!(replica.applied(), log.tail());
        assert_eq!(log.stats().replays, 3);
    }

    #[test]
    fn sync_to_is_idempotent_and_lag_is_visible() {
        let log = OpLog::new();
        let replica = KernelReplica::new();
        log.publish(vec![PolicyOp::MemSet {
            target: C1,
            tag: Tag(1),
            prot: Some(MemProt::Read),
        }]);
        assert_eq!(replica.applied(), 0, "lazy: nothing applied yet");
        replica.sync_to(&log, log.tail());
        replica.sync_to(&log, log.tail());
        assert_eq!(log.stats().replays, 1, "caught-up sync is free");
    }

    #[test]
    fn unconfined_snapshot_grants_everything() {
        let log = OpLog::new();
        let replica = KernelReplica::new();
        log.publish(vec![PolicyOp::Snapshot {
            target: C1,
            view: Box::new(SnapshotView {
                unconfined: true,
                mem: Vec::new(),
                fds: Vec::new(),
            }),
        }]);
        replica.sync_to(&log, log.tail());
        assert_eq!(
            replica.mem_grant(C1, Tag(99)),
            Some(Some(MemProt::ReadWrite))
        );
        assert_eq!(
            replica.fd_grant(C1, FdId(99)),
            Some(Some(FdProt::ReadWrite))
        );
        assert_eq!(replica.unconfined(C1), Some(true));
        assert!(replica.contains(C1));
    }

    #[test]
    fn encoded_bytes_scale_with_ops_not_address_space() {
        let log = OpLog::new();
        for i in 0..100u64 {
            log.publish(vec![PolicyOp::MemSet {
                target: C1,
                tag: Tag(i),
                prot: Some(MemProt::Read),
            }]);
        }
        let bytes = log.encoded_bytes();
        assert!(bytes > 0 && bytes < 16 * 1024, "compact: {bytes} bytes");
    }
}
