//! Per-compartment resource quotas — the DoS mitigation the paper leaves as
//! an open limitation.
//!
//! §7 of the paper is explicit: *"Wedge provides no direct mechanism to
//! prevent DoS attacks, either; an exploited sthread may maliciously consume
//! CPU and memory."* This module is an **extension** beyond the published
//! system that closes that gap in the reproduction's simulated kernel: a
//! [`ResourceLimits`] quota set can be attached to a compartment by wrapping
//! its [`SthreadCtx`] in a [`LimitedCtx`]. Every quota-relevant operation
//! performed through the wrapper (tag creation, tagged allocation, sthread
//! spawning, callgate invocation, and a voluntary CPU-tick account) is
//! charged against the quota; exceeding it fails with
//! [`WedgeError::ResourceExhausted`] instead of silently consuming the
//! machine.
//!
//! Children spawned through [`LimitedCtx::sthread_create`] share their
//! parent's accountant, so a compartment cannot escape its budget by
//! fork-bombing: the whole subtree draws from one allowance, mirroring how a
//! kernel cgroup would account a process subtree.
//!
//! The wrapper is deliberately *cooperative* on the CPU axis (code must call
//! [`LimitedCtx::charge_ticks`] or route reads/writes through the wrapper,
//! which charges one tick per byte moved): without kernel preemption a
//! userspace library can meter work but not interrupt it. The memory, tag,
//! sthread and callgate axes are enforced unconditionally because all of
//! those operations already go through the simulated kernel.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::callgate::{CgEntryId, CgInput, CgOutput};
use crate::error::WedgeError;
use crate::memory::SBuf;
use crate::policy::SecurityPolicy;
use crate::sthread::{SthreadCtx, SthreadHandle};
use crate::tag::Tag;

/// The resource classes a quota can bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Bytes of live tagged (and private) memory allocated via the wrapper.
    TaggedBytes,
    /// Number of live tags created via the wrapper.
    Tags,
    /// Number of sthreads spawned via the wrapper (cumulative).
    Sthreads,
    /// Number of callgate invocations made via the wrapper (cumulative).
    CallgateInvocations,
    /// Voluntarily accounted CPU ticks (one tick per byte moved by wrapped
    /// reads/writes, plus explicit [`LimitedCtx::charge_ticks`] calls).
    CpuTicks,
}

impl ResourceKind {
    /// Human-readable name used in error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            ResourceKind::TaggedBytes => "tagged-memory bytes",
            ResourceKind::Tags => "memory tags",
            ResourceKind::Sthreads => "sthread spawns",
            ResourceKind::CallgateInvocations => "callgate invocations",
            ResourceKind::CpuTicks => "cpu ticks",
        }
    }
}

/// A quota set. `None` on an axis means unlimited.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Maximum live tagged bytes.
    pub max_tagged_bytes: Option<u64>,
    /// Maximum live tags.
    pub max_tags: Option<u64>,
    /// Maximum cumulative sthread spawns.
    pub max_sthreads: Option<u64>,
    /// Maximum cumulative callgate invocations.
    pub max_callgate_invocations: Option<u64>,
    /// Maximum accounted CPU ticks.
    pub max_cpu_ticks: Option<u64>,
}

impl ResourceLimits {
    /// No limits on any axis (the behaviour of the published system).
    pub fn unlimited() -> ResourceLimits {
        ResourceLimits::default()
    }

    /// Bound live tagged memory.
    pub fn with_tagged_bytes(mut self, max: u64) -> Self {
        self.max_tagged_bytes = Some(max);
        self
    }

    /// Bound live tag count.
    pub fn with_tags(mut self, max: u64) -> Self {
        self.max_tags = Some(max);
        self
    }

    /// Bound cumulative sthread spawns.
    pub fn with_sthreads(mut self, max: u64) -> Self {
        self.max_sthreads = Some(max);
        self
    }

    /// Bound cumulative callgate invocations.
    pub fn with_callgate_invocations(mut self, max: u64) -> Self {
        self.max_callgate_invocations = Some(max);
        self
    }

    /// Bound accounted CPU ticks.
    pub fn with_cpu_ticks(mut self, max: u64) -> Self {
        self.max_cpu_ticks = Some(max);
        self
    }

    /// The limit configured for `kind`, if any.
    pub fn limit(&self, kind: ResourceKind) -> Option<u64> {
        match kind {
            ResourceKind::TaggedBytes => self.max_tagged_bytes,
            ResourceKind::Tags => self.max_tags,
            ResourceKind::Sthreads => self.max_sthreads,
            ResourceKind::CallgateInvocations => self.max_callgate_invocations,
            ResourceKind::CpuTicks => self.max_cpu_ticks,
        }
    }
}

/// A snapshot of current usage under an accountant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Live tagged bytes.
    pub tagged_bytes: u64,
    /// Live tags.
    pub tags: u64,
    /// Cumulative sthread spawns.
    pub sthreads: u64,
    /// Cumulative callgate invocations.
    pub callgate_invocations: u64,
    /// Accounted CPU ticks.
    pub cpu_ticks: u64,
}

impl ResourceUsage {
    /// Current usage on the given axis.
    pub fn get(&self, kind: ResourceKind) -> u64 {
        match kind {
            ResourceKind::TaggedBytes => self.tagged_bytes,
            ResourceKind::Tags => self.tags,
            ResourceKind::Sthreads => self.sthreads,
            ResourceKind::CallgateInvocations => self.callgate_invocations,
            ResourceKind::CpuTicks => self.cpu_ticks,
        }
    }

    fn get_mut(&mut self, kind: ResourceKind) -> &mut u64 {
        match kind {
            ResourceKind::TaggedBytes => &mut self.tagged_bytes,
            ResourceKind::Tags => &mut self.tags,
            ResourceKind::Sthreads => &mut self.sthreads,
            ResourceKind::CallgateInvocations => &mut self.callgate_invocations,
            ResourceKind::CpuTicks => &mut self.cpu_ticks,
        }
    }
}

/// The shared accounting state: one per quota domain, shared by every
/// [`LimitedCtx`] in the subtree.
#[derive(Debug)]
pub struct ResourceAccountant {
    limits: ResourceLimits,
    usage: Mutex<ResourceUsage>,
}

impl ResourceAccountant {
    /// Create an accountant with the given quota set.
    pub fn new(limits: ResourceLimits) -> Arc<ResourceAccountant> {
        Arc::new(ResourceAccountant {
            limits,
            usage: Mutex::new(ResourceUsage::default()),
        })
    }

    /// The configured limits.
    pub fn limits(&self) -> &ResourceLimits {
        &self.limits
    }

    /// A snapshot of current usage.
    pub fn usage(&self) -> ResourceUsage {
        *self.usage.lock()
    }

    /// How much headroom remains on an axis (`u64::MAX` when unlimited).
    pub fn remaining(&self, kind: ResourceKind) -> u64 {
        match self.limits.limit(kind) {
            None => u64::MAX,
            Some(limit) => limit.saturating_sub(self.usage().get(kind)),
        }
    }

    /// Charge `amount` on `kind`, failing without recording anything if the
    /// charge would exceed the configured limit.
    pub fn charge(&self, kind: ResourceKind, amount: u64) -> Result<(), WedgeError> {
        let mut usage = self.usage.lock();
        let current = usage.get(kind);
        let attempted = current.saturating_add(amount);
        if let Some(limit) = self.limits.limit(kind) {
            if attempted > limit {
                return Err(WedgeError::ResourceExhausted {
                    resource: kind.as_str().to_string(),
                    limit,
                    attempted,
                });
            }
        }
        *usage.get_mut(kind) = attempted;
        Ok(())
    }

    /// Credit `amount` back on `kind` (used when memory is freed or a tag is
    /// deleted). Never goes below zero.
    pub fn release(&self, kind: ResourceKind, amount: u64) {
        let mut usage = self.usage.lock();
        let current = usage.get(kind);
        *usage.get_mut(kind) = current.saturating_sub(amount);
    }
}

/// A quota-enforcing wrapper around an [`SthreadCtx`].
///
/// Operations not exposed by the wrapper can still be reached through
/// [`LimitedCtx::ctx`]; that escape hatch is intentional — the wrapper
/// meters the *resource-consuming* surface, it is not a second isolation
/// boundary (isolation is still the kernel's policy checks).
#[derive(Clone)]
pub struct LimitedCtx {
    inner: SthreadCtx,
    accountant: Arc<ResourceAccountant>,
}

impl LimitedCtx {
    /// Attach a fresh quota domain to `ctx`.
    pub fn new(ctx: SthreadCtx, limits: ResourceLimits) -> LimitedCtx {
        LimitedCtx {
            inner: ctx,
            accountant: ResourceAccountant::new(limits),
        }
    }

    /// Attach an existing (shared) accountant to `ctx`.
    pub fn with_accountant(ctx: SthreadCtx, accountant: Arc<ResourceAccountant>) -> LimitedCtx {
        LimitedCtx {
            inner: ctx,
            accountant,
        }
    }

    /// The wrapped context.
    pub fn ctx(&self) -> &SthreadCtx {
        &self.inner
    }

    /// The accountant shared by this quota domain.
    pub fn accountant(&self) -> &Arc<ResourceAccountant> {
        &self.accountant
    }

    /// Current usage in this quota domain.
    pub fn usage(&self) -> ResourceUsage {
        self.accountant.usage()
    }

    /// Remaining headroom on an axis.
    pub fn remaining(&self, kind: ResourceKind) -> u64 {
        self.accountant.remaining(kind)
    }

    /// Voluntarily account `ticks` of computation.
    pub fn charge_ticks(&self, ticks: u64) -> Result<(), WedgeError> {
        self.accountant.charge(ResourceKind::CpuTicks, ticks)
    }

    /// Quota-charged `tag_new`.
    pub fn tag_new(&self) -> Result<Tag, WedgeError> {
        self.accountant.charge(ResourceKind::Tags, 1)?;
        match self.inner.tag_new() {
            Ok(tag) => Ok(tag),
            Err(e) => {
                self.accountant.release(ResourceKind::Tags, 1);
                Err(e)
            }
        }
    }

    /// Quota-credited `tag_delete`.
    pub fn tag_delete(&self, tag: Tag) -> Result<(), WedgeError> {
        self.inner.tag_delete(tag)?;
        self.accountant.release(ResourceKind::Tags, 1);
        Ok(())
    }

    /// Quota-charged `smalloc`.
    pub fn smalloc(&self, size: usize, tag: Tag) -> Result<SBuf, WedgeError> {
        self.accountant
            .charge(ResourceKind::TaggedBytes, size as u64)?;
        match self.inner.smalloc(size, tag) {
            Ok(buf) => Ok(buf),
            Err(e) => {
                self.accountant
                    .release(ResourceKind::TaggedBytes, size as u64);
                Err(e)
            }
        }
    }

    /// Quota-charged `smalloc` + initialising write.
    pub fn smalloc_init(&self, tag: Tag, data: &[u8]) -> Result<SBuf, WedgeError> {
        let buf = self.smalloc(data.len().max(1), tag)?;
        if !data.is_empty() {
            self.write(&buf, 0, data)?;
        }
        Ok(buf)
    }

    /// Quota-charged `malloc` (private or redirected allocation).
    pub fn malloc(&self, size: usize) -> Result<SBuf, WedgeError> {
        self.accountant
            .charge(ResourceKind::TaggedBytes, size as u64)?;
        match self.inner.malloc(size) {
            Ok(buf) => Ok(buf),
            Err(e) => {
                self.accountant
                    .release(ResourceKind::TaggedBytes, size as u64);
                Err(e)
            }
        }
    }

    /// Quota-credited `sfree`.
    pub fn sfree(&self, buf: &SBuf) -> Result<(), WedgeError> {
        self.inner.sfree(buf)?;
        self.accountant
            .release(ResourceKind::TaggedBytes, buf.len as u64);
        Ok(())
    }

    /// Read through the wrapper, charging one CPU tick per byte.
    pub fn read(&self, buf: &SBuf, offset: usize, len: usize) -> Result<Vec<u8>, WedgeError> {
        self.accountant.charge(ResourceKind::CpuTicks, len as u64)?;
        self.inner.read(buf, offset, len)
    }

    /// Write through the wrapper, charging one CPU tick per byte.
    pub fn write(&self, buf: &SBuf, offset: usize, data: &[u8]) -> Result<(), WedgeError> {
        self.accountant
            .charge(ResourceKind::CpuTicks, data.len() as u64)?;
        self.inner.write(buf, offset, data)
    }

    /// Quota-charged sthread creation. The child's body receives a
    /// [`LimitedCtx`] sharing this quota domain, so the whole compartment
    /// subtree draws from one allowance.
    pub fn sthread_create<R, F>(
        &self,
        name: &str,
        policy: &SecurityPolicy,
        body: F,
    ) -> Result<SthreadHandle<R>, WedgeError>
    where
        R: Send + 'static,
        F: FnOnce(&LimitedCtx) -> R + Send + 'static,
    {
        self.accountant.charge(ResourceKind::Sthreads, 1)?;
        let accountant = self.accountant.clone();
        let result = self.inner.sthread_create(name, policy, move |ctx| {
            let limited = LimitedCtx::with_accountant(ctx.clone(), accountant);
            body(&limited)
        });
        if result.is_err() {
            self.accountant.release(ResourceKind::Sthreads, 1);
        }
        result
    }

    /// Quota-charged callgate invocation.
    pub fn cgate(
        &self,
        entry: CgEntryId,
        extra: &SecurityPolicy,
        input: CgInput,
    ) -> Result<CgOutput, WedgeError> {
        self.accountant
            .charge(ResourceKind::CallgateInvocations, 1)?;
        self.inner.cgate(entry, extra, input)
    }

    /// Quota-charged recycled-callgate invocation.
    pub fn cgate_recycled(
        &self,
        entry: CgEntryId,
        extra: &SecurityPolicy,
        input: CgInput,
    ) -> Result<CgOutput, WedgeError> {
        self.accountant
            .charge(ResourceKind::CallgateInvocations, 1)?;
        self.inner.cgate_recycled(entry, extra, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgate::typed_entry;
    use crate::tag::MemProt;
    use crate::Wedge;

    fn exhausted(err: &WedgeError) -> bool {
        matches!(err, WedgeError::ResourceExhausted { .. })
    }

    #[test]
    fn unlimited_never_refuses() {
        let wedge = Wedge::init();
        let limited = LimitedCtx::new(wedge.root(), ResourceLimits::unlimited());
        for _ in 0..32 {
            let tag = limited.tag_new().unwrap();
            let buf = limited.smalloc(4096, tag).unwrap();
            limited.write(&buf, 0, &[0xAA; 4096]).unwrap();
        }
        assert_eq!(limited.remaining(ResourceKind::TaggedBytes), u64::MAX);
    }

    #[test]
    fn tagged_byte_quota_is_enforced_and_credited_on_free() {
        let wedge = Wedge::init();
        let limited = LimitedCtx::new(
            wedge.root(),
            ResourceLimits::unlimited().with_tagged_bytes(1024),
        );
        let tag = limited.tag_new().unwrap();
        let a = limited.smalloc(600, tag).unwrap();
        let err = limited.smalloc(600, tag).unwrap_err();
        assert!(exhausted(&err), "{err}");
        assert_eq!(limited.usage().tagged_bytes, 600);

        limited.sfree(&a).unwrap();
        assert_eq!(limited.usage().tagged_bytes, 0);
        assert!(limited.smalloc(600, tag).is_ok());
    }

    #[test]
    fn failed_underlying_allocation_is_not_charged() {
        let wedge = Wedge::init();
        let limited = LimitedCtx::new(
            wedge.root(),
            ResourceLimits::unlimited().with_tagged_bytes(1 << 20),
        );
        // Tag never created: the kernel refuses, and the quota must roll back.
        let err = limited.smalloc(512, Tag(999_999)).unwrap_err();
        assert!(!exhausted(&err));
        assert_eq!(limited.usage().tagged_bytes, 0);
    }

    #[test]
    fn tag_quota_is_enforced_and_credited_on_delete() {
        let wedge = Wedge::init();
        let limited = LimitedCtx::new(wedge.root(), ResourceLimits::unlimited().with_tags(2));
        let t1 = limited.tag_new().unwrap();
        let _t2 = limited.tag_new().unwrap();
        assert!(exhausted(&limited.tag_new().unwrap_err()));
        limited.tag_delete(t1).unwrap();
        assert!(limited.tag_new().is_ok());
    }

    #[test]
    fn cpu_tick_quota_meters_reads_writes_and_explicit_charges() {
        let wedge = Wedge::init();
        let limited = LimitedCtx::new(
            wedge.root(),
            ResourceLimits::unlimited().with_cpu_ticks(100),
        );
        let tag = limited.tag_new().unwrap();
        let buf = limited.smalloc(64, tag).unwrap();
        limited.write(&buf, 0, &[1u8; 60]).unwrap(); // 60 ticks
        limited.charge_ticks(30).unwrap(); // 90 ticks
        let err = limited.read(&buf, 0, 20).unwrap_err(); // would be 110
        assert!(exhausted(&err));
        assert_eq!(limited.usage().cpu_ticks, 90);
        // A smaller read still fits.
        assert!(limited.read(&buf, 0, 10).is_ok());
    }

    #[test]
    fn sthread_quota_bounds_the_whole_subtree() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let limited = LimitedCtx::new(root, ResourceLimits::unlimited().with_sthreads(3));

        // A "fork bomb": each child tries to spawn two more children.
        fn bomb(ctx: &LimitedCtx, depth: usize) -> u64 {
            if depth == 0 {
                return 0;
            }
            let mut spawned = 0;
            for i in 0..2 {
                let child = ctx.sthread_create(
                    &format!("bomb-{depth}-{i}"),
                    &SecurityPolicy::deny_all(),
                    move |child_ctx| bomb(child_ctx, depth - 1),
                );
                match child {
                    Ok(handle) => {
                        spawned += 1 + handle.join().unwrap_or(0);
                    }
                    Err(e) => {
                        assert!(matches!(e, WedgeError::ResourceExhausted { .. }));
                        break;
                    }
                }
            }
            spawned
        }

        let total = bomb(&limited, 4);
        assert!(total <= 3, "quota capped the subtree at 3, got {total}");
        assert_eq!(limited.usage().sthreads, 3);
    }

    #[test]
    fn callgate_quota_is_enforced() {
        let wedge = Wedge::init();
        let root = wedge.root();
        let entry = wedge
            .kernel()
            .cgate_register("noop", typed_entry(|_ctx, _trusted, x: u32| Ok(x + 1)));

        let secret_tag = root.tag_new().unwrap();
        let mut worker_policy = SecurityPolicy::deny_all();
        worker_policy.sc_mem_add(secret_tag, MemProt::Read);
        worker_policy.sc_cgate_add(entry, SecurityPolicy::deny_all(), None);

        let limits = ResourceLimits::unlimited().with_callgate_invocations(2);
        let handle = root
            .sthread_create("worker", &worker_policy, move |ctx| {
                let limited = LimitedCtx::new(ctx.clone(), limits);
                let mut results = Vec::new();
                for _ in 0..3 {
                    results.push(limited.cgate(entry, &SecurityPolicy::deny_all(), Box::new(1u32)));
                }
                results
            })
            .unwrap();
        let results = handle.join().unwrap();
        assert!(results[0].is_ok());
        assert!(results[1].is_ok());
        assert!(exhausted(results[2].as_ref().unwrap_err()));
    }

    #[test]
    fn remaining_and_usage_reporting() {
        let wedge = Wedge::init();
        let limited = LimitedCtx::new(
            wedge.root(),
            ResourceLimits::unlimited()
                .with_tagged_bytes(1000)
                .with_tags(10),
        );
        let tag = limited.tag_new().unwrap();
        limited.smalloc(100, tag).unwrap();
        assert_eq!(limited.remaining(ResourceKind::TaggedBytes), 900);
        assert_eq!(limited.remaining(ResourceKind::Tags), 9);
        assert_eq!(limited.remaining(ResourceKind::Sthreads), u64::MAX);
        let usage = limited.usage();
        assert_eq!(usage.get(ResourceKind::TaggedBytes), 100);
        assert_eq!(usage.get(ResourceKind::Tags), 1);
    }

    #[test]
    fn resource_exhausted_error_is_not_an_access_denial() {
        let err = WedgeError::ResourceExhausted {
            resource: "cpu ticks".to_string(),
            limit: 10,
            attempted: 11,
        };
        assert!(!err.is_access_denial());
        let msg = err.to_string();
        assert!(msg.contains("cpu ticks"));
        assert!(msg.contains("10"));
        assert!(msg.contains("11"));
    }

    #[test]
    fn limits_builder_and_accessors() {
        let limits = ResourceLimits::unlimited()
            .with_tagged_bytes(1)
            .with_tags(2)
            .with_sthreads(3)
            .with_callgate_invocations(4)
            .with_cpu_ticks(5);
        assert_eq!(limits.limit(ResourceKind::TaggedBytes), Some(1));
        assert_eq!(limits.limit(ResourceKind::Tags), Some(2));
        assert_eq!(limits.limit(ResourceKind::Sthreads), Some(3));
        assert_eq!(limits.limit(ResourceKind::CallgateInvocations), Some(4));
        assert_eq!(limits.limit(ResourceKind::CpuTicks), Some(5));
        assert_eq!(
            ResourceLimits::unlimited().limit(ResourceKind::CpuTicks),
            None
        );
    }
}
