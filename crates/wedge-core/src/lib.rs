//! # wedge-core — the Wedge isolation primitives
//!
//! This crate is the Rust reproduction of the Wedge programming model
//! (Bittau et al., NSDI 2008): **sthreads** (default-deny compartments),
//! **tagged memory** (privileges granted per allocation tag), and
//! **callgates** (code that runs with different privileges than its caller),
//! together with the supporting pieces the paper's implementation relies on
//! (security policies with subset-only delegation, a file-descriptor table
//! with per-descriptor grants, an SELinux-style syscall allow-list, the
//! pre-`main` snapshot of globals, and the sthread *emulation* mode used by
//! Crowbar).
//!
//! ## The simulated kernel
//!
//! The paper enforces compartment boundaries with hardware page protection
//! inside a patched Linux 2.6.19 kernel. A portable Rust library cannot
//! patch the kernel, so enforcement here is performed by a **simulated
//! kernel** ([`Kernel`]): all tagged memory lives in kernel-owned segments,
//! and every access by application code goes through a [`SthreadCtx`] handle
//! that names the *current compartment*. The kernel checks the compartment's
//! [`SecurityPolicy`] on every access and raises a
//! [`WedgeError::ProtectionFault`] on denial — the analogue of the SIGSEGV a
//! real sthread would receive. The **policy semantics** (default-deny,
//! per-tag grants, copy-on-write views, subset-only delegation, callgate
//! mediation, trusted arguments held by the kernel) follow the paper
//! exactly; only the trap mechanism differs. See DESIGN.md §2 for the full
//! substitution table.
//!
//! ## Quick tour
//!
//! ```
//! use wedge_core::{MemProt, SecurityPolicy, Wedge};
//!
//! // Initialise the Wedge runtime; `root` is the unconfined first
//! // compartment (the application before it starts partitioning itself).
//! let wedge = Wedge::init();
//! let root = wedge.root();
//!
//! // Allocate secret data in tagged memory.
//! let secret_tag = root.tag_new().unwrap();
//! let secret = root.smalloc(32, secret_tag).unwrap();
//! root.write(&secret, 0, b"top secret").unwrap();
//!
//! // Spawn a default-deny sthread: without a grant it cannot read the tag.
//! let child_policy = SecurityPolicy::deny_all();
//! let handle = root
//!     .sthread_create("worker", &child_policy, {
//!         let secret = secret;
//!         move |ctx| ctx.read(&secret, 0, 10)
//!     })
//!     .unwrap();
//! assert!(handle.join().unwrap().is_err(), "default-deny blocks the read");
//!
//! // Spawn another sthread with an explicit read grant.
//! let mut reader_policy = SecurityPolicy::deny_all();
//! reader_policy.sc_mem_add(secret_tag, MemProt::Read);
//! let handle = root
//!     .sthread_create("reader", &reader_policy, move |ctx| ctx.read(&secret, 0, 10))
//!     .unwrap();
//! assert_eq!(handle.join().unwrap().unwrap(), b"top secret");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod callgate;
pub mod error;
pub mod exploit;
pub mod fdtable;
pub mod kernel;
pub mod memory;
pub mod oplog;
pub mod policy;
pub mod procsim;
pub mod resource;
pub mod sthread;
pub mod syscall;
pub mod tag;
pub mod trace;

pub use callgate::{CallgateFn, CgEntryId, CgInput, CgOutput, TrustedArg};
pub use error::WedgeError;
pub use exploit::Exploit;
pub use fdtable::{FdId, FdProt};
pub use kernel::{Kernel, KernelStats, MemReadGuard, ViolationRecord, SEGMENT_SHARDS};
pub use memory::SBuf;
pub use oplog::{KernelReplica, OpLog, OpLogStats, PolicyOp, SnapshotView};
pub use policy::{CallgateGrant, SecurityPolicy, Uid};
pub use resource::{LimitedCtx, ResourceKind, ResourceLimits, ResourceUsage};
pub use sthread::{panic_message, RecycledWorkerHandle, SthreadCtx, SthreadHandle};
pub use syscall::{Syscall, SyscallPolicy};
pub use tag::{AccessMode, CompartmentId, MemProt, Tag};
pub use trace::{AccessSink, AllocEvent, CallEvent, MemAccessEvent, MemRegion, ViolationEvent};

use std::sync::Arc;

/// The Wedge runtime: a simulated kernel plus the root compartment.
///
/// `Wedge::init()` corresponds to the state of a Wedge process just before
/// `main` runs: the kernel snapshot of globals is empty, the root
/// compartment is unconfined, and no tags or callgates exist yet.
#[derive(Clone)]
pub struct Wedge {
    kernel: Arc<Kernel>,
    root: SthreadCtx,
}

impl Wedge {
    /// Initialise the runtime with a fresh kernel and an unconfined root
    /// compartment.
    pub fn init() -> Wedge {
        let kernel = Arc::new(Kernel::new());
        let root = kernel.create_root_compartment("root");
        Wedge { kernel, root }
    }

    /// The root compartment's context (unconfined; analogous to the
    /// pre-partitioning process).
    pub fn root(&self) -> SthreadCtx {
        self.root.clone()
    }

    /// The simulated kernel.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }
}

impl Default for Wedge {
    fn default() -> Self {
        Wedge::init()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_creates_unconfined_root() {
        let wedge = Wedge::init();
        let root = wedge.root();
        assert!(root.policy().is_unconfined());
        let tag = root.tag_new().unwrap();
        let buf = root.smalloc(16, tag).unwrap();
        root.write(&buf, 0, b"hello").unwrap();
        assert_eq!(root.read(&buf, 0, 5).unwrap(), b"hello");
    }

    #[test]
    fn runtimes_have_independent_tag_namespaces() {
        let w1 = Wedge::init();
        let w2 = Wedge::init();
        let t1 = w1.root().tag_new().unwrap();
        let t2 = w2.root().tag_new().unwrap();
        assert!(w1.root().smalloc(8, t1).is_ok());
        assert!(w2.root().smalloc(8, t2).is_ok());
    }
}
