//! SELinux-style syscall allow-lists.
//!
//! An sthread's security policy includes "an SELinux policy, which limits
//! the system calls that may be invoked" (§3.1). The paper delegates the
//! actual mechanism to SELinux; the reproduction models it as an explicit
//! allow-list over the syscall surface the simulated kernel exposes, plus a
//! system-wide table of permitted *domain transitions* (a child may only
//! move to a different syscall policy if the transition is declared, §3.1).

use std::collections::BTreeSet;

/// The system calls the simulated kernel mediates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Syscall {
    /// Open a file.
    Open,
    /// Read from a file descriptor.
    Read,
    /// Write to a file descriptor.
    Write,
    /// Create a socket / accept a connection.
    Socket,
    /// Send on a socket.
    Send,
    /// Receive on a socket.
    Recv,
    /// Change user id.
    Setuid,
    /// Change filesystem root.
    Chroot,
    /// Execute a new program image.
    Exec,
    /// Create a new compartment (sthread or callgate activation).
    SthreadCreate,
    /// Create or delete a memory tag.
    TagControl,
    /// Exit the compartment.
    Exit,
}

/// All syscalls, for building "allow everything" policies.
pub const ALL_SYSCALLS: [Syscall; 12] = [
    Syscall::Open,
    Syscall::Read,
    Syscall::Write,
    Syscall::Socket,
    Syscall::Send,
    Syscall::Recv,
    Syscall::Setuid,
    Syscall::Chroot,
    Syscall::Exec,
    Syscall::SthreadCreate,
    Syscall::TagControl,
    Syscall::Exit,
];

/// A named allow-list of system calls — the reproduction's stand-in for an
/// SELinux security context (`user:role:type`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallPolicy {
    /// The SELinux-style context name attached via `sc_sel_context`.
    pub context: String,
    allowed: BTreeSet<Syscall>,
}

impl SyscallPolicy {
    /// Allow every syscall (the paper's applications attach such a policy
    /// because the evaluation focuses on memory privileges, §5).
    pub fn allow_all() -> Self {
        SyscallPolicy {
            context: "wedge_u:wedge_r:unconfined_t".to_string(),
            allowed: ALL_SYSCALLS.iter().copied().collect(),
        }
    }

    /// Deny every syscall.
    pub fn deny_all() -> Self {
        SyscallPolicy {
            context: "wedge_u:wedge_r:deny_t".to_string(),
            allowed: BTreeSet::new(),
        }
    }

    /// Build a policy from an explicit list.
    pub fn allowing(context: &str, syscalls: &[Syscall]) -> Self {
        SyscallPolicy {
            context: context.to_string(),
            allowed: syscalls.iter().copied().collect(),
        }
    }

    /// Is `syscall` permitted?
    pub fn permits(&self, syscall: Syscall) -> bool {
        self.allowed.contains(&syscall)
    }

    /// Add a syscall to the allow-list.
    pub fn allow(&mut self, syscall: Syscall) -> &mut Self {
        self.allowed.insert(syscall);
        self
    }

    /// Remove a syscall from the allow-list.
    pub fn deny(&mut self, syscall: Syscall) -> &mut Self {
        self.allowed.remove(&syscall);
        self
    }

    /// Is this policy a subset of `other` (i.e. every call we allow, the
    /// other also allows)?
    pub fn is_subset_of(&self, other: &SyscallPolicy) -> bool {
        self.allowed.is_subset(&other.allowed)
    }

    /// Number of allowed syscalls.
    pub fn allowed_count(&self) -> usize {
        self.allowed.len()
    }
}

impl Default for SyscallPolicy {
    fn default() -> Self {
        SyscallPolicy::allow_all()
    }
}

/// The system-wide table of permitted domain transitions: `(from-context,
/// to-context)` pairs a child sthread may move between even though the
/// target policy is not a subset of the parent's.
#[derive(Debug, Default, Clone)]
pub struct DomainTransitions {
    allowed: BTreeSet<(String, String)>,
}

impl DomainTransitions {
    /// An empty transition table (no cross-domain moves allowed).
    pub fn new() -> Self {
        DomainTransitions::default()
    }

    /// Permit transitions from `from` to `to`.
    pub fn allow(&mut self, from: &str, to: &str) {
        self.allowed.insert((from.to_string(), to.to_string()));
    }

    /// Is the transition permitted?
    pub fn permits(&self, from: &str, to: &str) -> bool {
        from == to || self.allowed.contains(&(from.to_string(), to.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_all_permits_everything() {
        let p = SyscallPolicy::allow_all();
        for s in ALL_SYSCALLS {
            assert!(p.permits(s));
        }
    }

    #[test]
    fn deny_all_permits_nothing() {
        let p = SyscallPolicy::deny_all();
        for s in ALL_SYSCALLS {
            assert!(!p.permits(s));
        }
    }

    #[test]
    fn explicit_list_and_mutation() {
        let mut p = SyscallPolicy::allowing("net_t", &[Syscall::Send, Syscall::Recv]);
        assert!(p.permits(Syscall::Send));
        assert!(!p.permits(Syscall::Open));
        p.allow(Syscall::Open).deny(Syscall::Send);
        assert!(p.permits(Syscall::Open));
        assert!(!p.permits(Syscall::Send));
    }

    #[test]
    fn subset_relation() {
        let small = SyscallPolicy::allowing("a", &[Syscall::Read]);
        let big = SyscallPolicy::allowing("b", &[Syscall::Read, Syscall::Write]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_subset_of(&SyscallPolicy::allow_all()));
        assert!(SyscallPolicy::deny_all().is_subset_of(&small));
    }

    #[test]
    fn domain_transitions() {
        let mut dt = DomainTransitions::new();
        assert!(
            dt.permits("worker_t", "worker_t"),
            "same domain always allowed"
        );
        assert!(!dt.permits("worker_t", "auth_t"));
        dt.allow("worker_t", "auth_t");
        assert!(dt.permits("worker_t", "auth_t"));
        assert!(
            !dt.permits("auth_t", "worker_t"),
            "transitions are directional"
        );
    }
}
