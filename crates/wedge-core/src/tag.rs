//! Core identifier and permission types: memory tags, compartment ids and
//! memory protection modes — plus the cheap integer hasher the kernel's
//! hot-path tables are keyed with.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A multiplicative (Fibonacci) hasher for the kernel's dense integer keys
/// — tags, compartment ids, descriptor ids and tuples of them. These ids
/// are small sequential counters, so SipHash's DoS resistance buys nothing
/// here while costing a large share of each permission-cache and
/// segment-shard lookup on the tagged-memory fast path.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdHasher {
    state: u64,
}

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        // The multiply concentrates entropy in the high bits; fold them
        // down for the table's bucket-index (low-bit) use.
        self.state ^ (self.state >> 32)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.state = (self.state ^ value).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_u32(&mut self, value: u32) {
        self.write_u64(u64::from(value));
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

/// `BuildHasher` for [`IdHasher`].
pub type IdHashBuilder = BuildHasherDefault<IdHasher>;

/// A `HashMap` keyed with [`IdHasher`] — the kernel's hot-path table type.
pub type IdHashMap<K, V> = HashMap<K, V, IdHashBuilder>;

/// A memory tag: the name under which privileges for a tagged segment are
//  granted. The tag namespace is flat — privileges for one tag never imply
/// privileges for another (§3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u64);

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// Identifier of a compartment (an sthread or a callgate activation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompartmentId(pub u64);

impl std::fmt::Display for CompartmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Memory protection modes grantable for a tag.
///
/// The paper grants read, read-write, or copy-on-write; write-only is
/// deliberately not offered because commodity MMUs cannot express it
/// (§3.1), and we keep that restriction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemProt {
    /// The compartment may read memory with this tag.
    Read,
    /// The compartment may read and write memory with this tag.
    ReadWrite,
    /// The compartment sees the tag's contents but its writes go to a
    /// private copy, invisible to other compartments.
    CopyOnWrite,
}

impl MemProt {
    /// May a holder of `self` perform `mode` on the *shared* contents?
    /// Copy-on-write holders may read and (privately) write.
    pub fn permits(self, mode: AccessMode) -> bool {
        match (self, mode) {
            (_, AccessMode::Read) => true,
            (MemProt::ReadWrite, AccessMode::Write) => true,
            (MemProt::CopyOnWrite, AccessMode::Write) => true,
            (MemProt::Read, AccessMode::Write) => false,
        }
    }

    /// Does a write under this protection modify the shared segment (true)
    /// or a private overlay (false)?
    pub fn writes_shared(self) -> bool {
        matches!(self, MemProt::ReadWrite)
    }

    /// May a parent holding `self` grant `child` to a new sthread?
    ///
    /// Read-write dominates everything; read and copy-on-write can only
    /// delegate non-shared-writable views.
    pub fn allows_delegation_of(self, child: MemProt) -> bool {
        match self {
            MemProt::ReadWrite => true,
            MemProt::Read | MemProt::CopyOnWrite => {
                matches!(child, MemProt::Read | MemProt::CopyOnWrite)
            }
        }
    }
}

/// The two access modes checked at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

impl std::fmt::Display for AccessMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessMode::Read => write!(f, "read"),
            AccessMode::Write => write!(f, "write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_protection_blocks_writes() {
        assert!(MemProt::Read.permits(AccessMode::Read));
        assert!(!MemProt::Read.permits(AccessMode::Write));
    }

    #[test]
    fn read_write_permits_everything_shared() {
        assert!(MemProt::ReadWrite.permits(AccessMode::Read));
        assert!(MemProt::ReadWrite.permits(AccessMode::Write));
        assert!(MemProt::ReadWrite.writes_shared());
    }

    #[test]
    fn cow_permits_private_writes_only() {
        assert!(MemProt::CopyOnWrite.permits(AccessMode::Write));
        assert!(!MemProt::CopyOnWrite.writes_shared());
    }

    #[test]
    fn delegation_lattice() {
        // RW can delegate anything.
        for child in [MemProt::Read, MemProt::ReadWrite, MemProt::CopyOnWrite] {
            assert!(MemProt::ReadWrite.allows_delegation_of(child));
        }
        // Read and COW can never delegate shared-writable access.
        assert!(!MemProt::Read.allows_delegation_of(MemProt::ReadWrite));
        assert!(!MemProt::CopyOnWrite.allows_delegation_of(MemProt::ReadWrite));
        assert!(MemProt::Read.allows_delegation_of(MemProt::Read));
        assert!(MemProt::Read.allows_delegation_of(MemProt::CopyOnWrite));
        assert!(MemProt::CopyOnWrite.allows_delegation_of(MemProt::Read));
    }

    #[test]
    fn id_hash_map_distinguishes_keys() {
        let mut map: IdHashMap<Tag, u32> = IdHashMap::default();
        for i in 0..1000 {
            map.insert(Tag(i), i as u32);
        }
        for i in 0..1000 {
            assert_eq!(map.get(&Tag(i)), Some(&(i as u32)));
        }
        assert_eq!(map.get(&Tag(1000)), None);

        let mut tuples: IdHashMap<(CompartmentId, Tag), u8> = IdHashMap::default();
        tuples.insert((CompartmentId(1), Tag(2)), 1);
        tuples.insert((CompartmentId(2), Tag(1)), 2);
        assert_eq!(tuples.get(&(CompartmentId(1), Tag(2))), Some(&1));
        assert_eq!(tuples.get(&(CompartmentId(2), Tag(1))), Some(&2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Tag(3).to_string(), "tag3");
        assert_eq!(CompartmentId(5).to_string(), "c5");
        assert_eq!(AccessMode::Read.to_string(), "read");
        assert_eq!(AccessMode::Write.to_string(), "write");
    }
}
