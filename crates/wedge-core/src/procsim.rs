//! Baseline concurrency/isolation primitives for the Figure 7 comparison.
//!
//! Figure 7 of the paper compares the creation/invocation latency of
//! pthreads, recycled callgates, sthreads, callgates and `fork`. The Wedge
//! primitives are measured directly from `wedge-core`; this module provides
//! the two familiar baselines:
//!
//! * [`PthreadSim`] — a bare OS thread spawn/join, the cheapest primitive.
//! * [`ForkSim`] — a fork-like primitive that, in addition to spawning a
//!   thread, duplicates the parent's entire address-space image and
//!   descriptor table, which is exactly the cost `fork` pays and an sthread
//!   avoids ("only those entries of the page table and those file
//!   descriptors specified in the security policy are copied", §6).

use std::thread;
use std::time::{Duration, Instant};

/// A bare thread spawn/join — the pthread baseline.
pub struct PthreadSim;

impl PthreadSim {
    /// Spawn `body` on a new thread and wait for it (mirrors the
    /// microbenchmark's "create a pthread whose code immediately exits").
    pub fn spawn_and_join<R, F>(body: F) -> R
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        thread::spawn(body).join().expect("pthread body panicked")
    }
}

/// A fork-like primitive: the parent owns an address-space image that is
/// copied in full for every child.
pub struct ForkSim {
    /// The parent's memory image (page-table + data pages stand-in).
    image: Vec<u8>,
    /// The parent's descriptor table (names only; contents are irrelevant
    /// to the cost model).
    fd_table: Vec<String>,
}

impl ForkSim {
    /// Create a parent with an `image_bytes`-sized address space and
    /// `fd_count` open descriptors.
    pub fn new(image_bytes: usize, fd_count: usize) -> Self {
        ForkSim {
            image: vec![0xABu8; image_bytes],
            fd_table: (0..fd_count).map(|i| format!("fd{i}")).collect(),
        }
    }

    /// Size of the parent's image in bytes.
    pub fn image_size(&self) -> usize {
        self.image.len()
    }

    /// Fork: duplicate the full image and fd table, run `body` in the child
    /// "process" (a thread given the copies), and wait for it.
    pub fn fork_and_wait<R, F>(&self, body: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&[u8], &[String]) -> R + Send + 'static,
    {
        self.fork_and_wait_timed(body).0
    }

    /// [`ForkSim::fork_and_wait`], also reporting the wall-clock cost of the
    /// fork (image + descriptor copy, child spawn) plus the child body.
    /// Callers that pay fork once at boot and amortise it over a long-lived
    /// child (shard prewarm) use this to account what they paid.
    pub fn fork_and_wait_timed<R, F>(&self, body: F) -> (R, Duration)
    where
        R: Send + 'static,
        F: FnOnce(&[u8], &[String]) -> R + Send + 'static,
    {
        let started = Instant::now();
        // The defining cost of fork: the child starts from a copy of
        // everything, whether or not it needs it.
        let image_copy = self.image.clone();
        let fd_copy = self.fd_table.clone();
        let out = thread::spawn(move || body(&image_copy, &fd_copy))
            .join()
            .expect("forked child panicked");
        (out, started.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pthread_sim_runs_the_body() {
        let out = PthreadSim::spawn_and_join(|| 21 * 2);
        assert_eq!(out, 42);
    }

    #[test]
    fn fork_sim_copies_the_whole_image() {
        let parent = ForkSim::new(1 << 16, 8);
        assert_eq!(parent.image_size(), 1 << 16);
        let (len, fds) = parent.fork_and_wait(|image, fds| (image.len(), fds.len()));
        assert_eq!(len, 1 << 16);
        assert_eq!(fds, 8);
    }

    #[test]
    fn timed_fork_reports_a_cost_and_the_same_result() {
        let parent = ForkSim::new(1 << 12, 4);
        let (fds, cost) = parent.fork_and_wait_timed(|_image, fds| fds.len());
        assert_eq!(fds, 4);
        assert!(cost > Duration::ZERO);
    }

    #[test]
    fn fork_child_modifications_do_not_affect_parent() {
        let parent = ForkSim::new(1024, 2);
        let child_first_byte = parent.fork_and_wait(|image, _| {
            let mut own = image.to_vec();
            own[0] = 0x00;
            own[0]
        });
        assert_eq!(child_first_byte, 0x00);
        assert_eq!(parent.image[0], 0xAB);
    }
}
