//! Security policies (`sc_t` in the paper's API) and the subset-only
//! delegation rule.
//!
//! A policy specifies the memory tags an sthread may access (and how), the
//! file descriptors it may use, the callgates it may invoke, and its UNIX
//! identity (user id, filesystem root) and syscall policy (§3.1). A parent
//! "can only grant a child access to subsets of its memory tags, file
//! descriptors, and authorized callgates"; uid and root may only change
//! according to UNIX semantics (only a root-uid parent may change them),
//! and syscall-policy changes must be permitted by the system-wide domain
//! transition table.

use std::collections::HashMap;

use crate::callgate::{CgEntryId, TrustedArg};
use crate::fdtable::{FdId, FdProt};
use crate::syscall::{DomainTransitions, SyscallPolicy};
use crate::tag::{MemProt, Tag};

/// A UNIX user id. Uid 0 is the superuser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uid(pub u32);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);

    /// Is this the superuser?
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

/// Permission to invoke a callgate, attached to a policy by `sc_cgate_add`.
///
/// The callgate instance is implicitly created when the policy is bound to
/// a newly created sthread; its permissions must be a subset of the
/// *creator's* (not the eventual caller's) privileges.
#[derive(Debug, Clone)]
pub struct CallgateGrant {
    /// The entry point the grant refers to.
    pub entry: CgEntryId,
    /// The permissions the callgate will run with.
    pub policy: Box<SecurityPolicy>,
    /// The kernel-held trusted argument, if any.
    pub trusted: Option<TrustedArg>,
}

/// An sthread security policy.
#[derive(Debug, Clone)]
pub struct SecurityPolicy {
    /// Unconfined policies (the root compartment) pass every check. All
    /// other policies are default-deny.
    unconfined: bool,
    /// Memory grants, per tag.
    mem: HashMap<Tag, MemProt>,
    /// File-descriptor grants.
    fds: HashMap<FdId, FdProt>,
    /// Callgates this sthread may invoke (instantiated at bind time).
    callgates: Vec<CallgateGrant>,
    /// UNIX user id the sthread runs as.
    pub uid: Uid,
    /// Filesystem root directory of the sthread.
    pub fs_root: String,
    /// Syscall allow-list (the SELinux stand-in).
    pub syscalls: SyscallPolicy,
}

impl SecurityPolicy {
    /// The default-deny policy: no memory tags, no descriptors, no
    /// callgates; uid and filesystem root inherited at bind time; all
    /// syscalls allowed (matching §5: "we specify SELinux policies for all
    /// sthreads that explicitly grant access to all system calls").
    pub fn deny_all() -> Self {
        SecurityPolicy {
            unconfined: false,
            mem: HashMap::new(),
            fds: HashMap::new(),
            callgates: Vec::new(),
            uid: Uid::ROOT,
            fs_root: "/".to_string(),
            syscalls: SyscallPolicy::allow_all(),
        }
    }

    /// The unconfined policy used only for the root compartment.
    pub fn unconfined() -> Self {
        SecurityPolicy {
            unconfined: true,
            ..SecurityPolicy::deny_all()
        }
    }

    /// Is this the unconfined (root) policy?
    pub fn is_unconfined(&self) -> bool {
        self.unconfined
    }

    /// Grant access to memory tagged `tag` with protection `prot`
    /// (`sc_mem_add`).
    pub fn sc_mem_add(&mut self, tag: Tag, prot: MemProt) -> &mut Self {
        self.mem.insert(tag, prot);
        self
    }

    /// Grant access to file descriptor `fd` with permission `prot`
    /// (`sc_fd_add`).
    pub fn sc_fd_add(&mut self, fd: FdId, prot: FdProt) -> &mut Self {
        self.fds.insert(fd, prot);
        self
    }

    /// Remove the memory grant for `tag` (`sc_mem_del`), returning the
    /// revoked protection if one was held. Used by the kernel's runtime
    /// `policy_del`; the kernel bumps the compartment epoch so per-sthread
    /// permission caches drop the stale entry.
    pub fn sc_mem_del(&mut self, tag: Tag) -> Option<MemProt> {
        self.mem.remove(&tag)
    }

    /// Remove the descriptor grant for `fd` (`sc_fd_del`).
    pub fn sc_fd_del(&mut self, fd: FdId) -> Option<FdProt> {
        self.fds.remove(&fd)
    }

    /// Attach an SELinux-style syscall policy (`sc_sel_context`).
    pub fn sc_sel_context(&mut self, syscalls: SyscallPolicy) -> &mut Self {
        self.syscalls = syscalls;
        self
    }

    /// Grant permission to invoke the callgate at `entry`, to be
    /// instantiated with permissions `policy` and trusted argument
    /// `trusted` when this security policy is bound to a new sthread
    /// (`sc_cgate_add`).
    pub fn sc_cgate_add(
        &mut self,
        entry: CgEntryId,
        policy: SecurityPolicy,
        trusted: Option<TrustedArg>,
    ) -> &mut Self {
        self.callgates.push(CallgateGrant {
            entry,
            policy: Box::new(policy),
            trusted,
        });
        self
    }

    /// Set the uid the sthread will run as.
    pub fn with_uid(mut self, uid: Uid) -> Self {
        self.uid = uid;
        self
    }

    /// Set the filesystem root the sthread will run with.
    pub fn with_fs_root(mut self, root: &str) -> Self {
        self.fs_root = root.to_string();
        self
    }

    /// The memory grant for `tag`, if any.
    pub fn mem_grant(&self, tag: Tag) -> Option<MemProt> {
        if self.unconfined {
            Some(MemProt::ReadWrite)
        } else {
            self.mem.get(&tag).copied()
        }
    }

    /// The descriptor grant for `fd`, if any.
    pub fn fd_grant(&self, fd: FdId) -> Option<FdProt> {
        if self.unconfined {
            Some(FdProt::ReadWrite)
        } else {
            self.fds.get(&fd).copied()
        }
    }

    /// All memory grants (empty for unconfined policies, which implicitly
    /// hold everything).
    pub fn mem_grants(&self) -> &HashMap<Tag, MemProt> {
        &self.mem
    }

    /// All descriptor grants.
    pub fn fd_grants(&self) -> &HashMap<FdId, FdProt> {
        &self.fds
    }

    /// Callgate grants attached to this policy.
    pub fn callgate_grants(&self) -> &[CallgateGrant] {
        &self.callgates
    }

    /// Merge extra memory/fd grants into this policy (used when a caller
    /// passes additional argument-reading permissions to a callgate).
    pub fn merge_grants(&mut self, extra: &SecurityPolicy) {
        for (tag, prot) in &extra.mem {
            self.mem.insert(*tag, *prot);
        }
        for (fd, prot) in &extra.fds {
            self.fds.insert(*fd, *prot);
        }
    }

    /// Validate that `child` does not exceed `self` when `self`'s holder
    /// creates an sthread bound to `child`. Returns a human-readable
    /// description of the first excess grant found.
    pub fn validate_child(
        &self,
        child: &SecurityPolicy,
        transitions: &DomainTransitions,
    ) -> Result<(), String> {
        if self.unconfined {
            return Ok(());
        }
        if child.unconfined {
            return Err("child policy may not be unconfined".to_string());
        }
        for (tag, child_prot) in &child.mem {
            match self.mem.get(tag) {
                Some(parent_prot) if parent_prot.allows_delegation_of(*child_prot) => {}
                Some(_) => {
                    return Err(format!(
                        "memory grant {tag}:{child_prot:?} exceeds parent grant"
                    ))
                }
                None => return Err(format!("parent holds no grant for {tag}")),
            }
        }
        for (fd, child_prot) in &child.fds {
            match self.fds.get(fd) {
                Some(parent_prot) if parent_prot.allows_delegation_of(*child_prot) => {}
                Some(_) => {
                    return Err(format!("fd grant {fd}:{child_prot:?} exceeds parent grant"))
                }
                None => return Err(format!("parent holds no grant for {fd}")),
            }
        }
        // Callgate instances the child may invoke must each run with a
        // subset of the *creator's* (i.e. self's) privileges.
        for grant in &child.callgates {
            self.validate_child(&grant.policy, transitions)
                .map_err(|e| {
                    format!("callgate {} permissions exceed creator's: {e}", grant.entry)
                })?;
        }
        // UNIX semantics for uid / root changes: only a superuser parent may
        // change them.
        if child.uid != self.uid && !self.uid.is_root() {
            return Err(format!(
                "non-root parent (uid {}) cannot set child uid {}",
                self.uid.0, child.uid.0
            ));
        }
        if child.fs_root != self.fs_root && !self.uid.is_root() {
            return Err(format!(
                "non-root parent cannot change filesystem root to {}",
                child.fs_root
            ));
        }
        // Syscall policy: subset, or an explicitly allowed domain transition.
        if !child.syscalls.is_subset_of(&self.syscalls)
            && !transitions.permits(&self.syscalls.context, &child.syscalls.context)
        {
            return Err(format!(
                "syscall policy '{}' is neither a subset of '{}' nor an allowed domain transition",
                child.syscalls.context, self.syscalls.context
            ));
        }
        Ok(())
    }
}

impl Default for SecurityPolicy {
    fn default() -> Self {
        SecurityPolicy::deny_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscall::Syscall;

    fn dt() -> DomainTransitions {
        DomainTransitions::new()
    }

    #[test]
    fn deny_all_has_no_grants() {
        let p = SecurityPolicy::deny_all();
        assert!(!p.is_unconfined());
        assert_eq!(p.mem_grant(Tag(1)), None);
        assert_eq!(p.fd_grant(FdId(1)), None);
        assert!(p.callgate_grants().is_empty());
    }

    #[test]
    fn unconfined_grants_everything() {
        let p = SecurityPolicy::unconfined();
        assert_eq!(p.mem_grant(Tag(99)), Some(MemProt::ReadWrite));
        assert_eq!(p.fd_grant(FdId(99)), Some(FdProt::ReadWrite));
    }

    #[test]
    fn builder_methods_accumulate() {
        let mut p = SecurityPolicy::deny_all();
        p.sc_mem_add(Tag(1), MemProt::Read)
            .sc_mem_add(Tag(2), MemProt::ReadWrite)
            .sc_fd_add(FdId(3), FdProt::Write);
        assert_eq!(p.mem_grant(Tag(1)), Some(MemProt::Read));
        assert_eq!(p.mem_grant(Tag(2)), Some(MemProt::ReadWrite));
        assert_eq!(p.fd_grant(FdId(3)), Some(FdProt::Write));
    }

    #[test]
    fn revocation_removes_grants() {
        let mut p = SecurityPolicy::deny_all();
        p.sc_mem_add(Tag(1), MemProt::Read)
            .sc_fd_add(FdId(2), FdProt::Write);
        assert_eq!(p.sc_mem_del(Tag(1)), Some(MemProt::Read));
        assert_eq!(p.mem_grant(Tag(1)), None);
        assert_eq!(p.sc_mem_del(Tag(1)), None);
        assert_eq!(p.sc_fd_del(FdId(2)), Some(FdProt::Write));
        assert_eq!(p.fd_grant(FdId(2)), None);
    }

    #[test]
    fn unconfined_parent_may_grant_anything() {
        let parent = SecurityPolicy::unconfined();
        let mut child = SecurityPolicy::deny_all();
        child.sc_mem_add(Tag(5), MemProt::ReadWrite);
        assert!(parent.validate_child(&child, &dt()).is_ok());
    }

    #[test]
    fn child_cannot_be_unconfined_under_confined_parent() {
        let mut parent = SecurityPolicy::deny_all();
        parent.sc_mem_add(Tag(1), MemProt::ReadWrite);
        let child = SecurityPolicy::unconfined();
        assert!(parent.validate_child(&child, &dt()).is_err());
    }

    #[test]
    fn subset_rule_for_memory() {
        let mut parent = SecurityPolicy::deny_all();
        parent.sc_mem_add(Tag(1), MemProt::Read);
        parent.sc_mem_add(Tag(2), MemProt::ReadWrite);

        // Equal or lesser grants are fine.
        let mut ok_child = SecurityPolicy::deny_all();
        ok_child.sc_mem_add(Tag(1), MemProt::Read);
        ok_child.sc_mem_add(Tag(2), MemProt::Read);
        assert!(parent.validate_child(&ok_child, &dt()).is_ok());

        // Escalating read to read-write is refused.
        let mut bad_child = SecurityPolicy::deny_all();
        bad_child.sc_mem_add(Tag(1), MemProt::ReadWrite);
        assert!(parent.validate_child(&bad_child, &dt()).is_err());

        // Granting a tag the parent does not hold is refused.
        let mut bad_child2 = SecurityPolicy::deny_all();
        bad_child2.sc_mem_add(Tag(3), MemProt::Read);
        assert!(parent.validate_child(&bad_child2, &dt()).is_err());
    }

    #[test]
    fn subset_rule_for_fds() {
        let mut parent = SecurityPolicy::deny_all();
        parent.sc_fd_add(FdId(1), FdProt::Read);
        let mut bad = SecurityPolicy::deny_all();
        bad.sc_fd_add(FdId(1), FdProt::ReadWrite);
        assert!(parent.validate_child(&bad, &dt()).is_err());
        let mut ok = SecurityPolicy::deny_all();
        ok.sc_fd_add(FdId(1), FdProt::Read);
        assert!(parent.validate_child(&ok, &dt()).is_ok());
    }

    #[test]
    fn callgate_permissions_checked_against_creator() {
        let mut parent = SecurityPolicy::deny_all();
        parent.sc_mem_add(Tag(1), MemProt::Read);

        // Callgate wants RW on tag 1: more than the creator holds.
        let mut cg_policy = SecurityPolicy::deny_all();
        cg_policy.sc_mem_add(Tag(1), MemProt::ReadWrite);
        let mut child = SecurityPolicy::deny_all();
        child.sc_cgate_add(CgEntryId(1), cg_policy, None);
        assert!(parent.validate_child(&child, &dt()).is_err());

        // Within the creator's privileges it is accepted.
        let mut cg_ok = SecurityPolicy::deny_all();
        cg_ok.sc_mem_add(Tag(1), MemProt::Read);
        let mut child_ok = SecurityPolicy::deny_all();
        child_ok.sc_cgate_add(CgEntryId(1), cg_ok, None);
        assert!(parent.validate_child(&child_ok, &dt()).is_ok());
    }

    #[test]
    fn uid_and_root_changes_require_superuser_parent() {
        let parent_nonroot = SecurityPolicy::deny_all().with_uid(Uid(1000));
        let child_other_uid = SecurityPolicy::deny_all().with_uid(Uid(1001));
        assert!(parent_nonroot
            .validate_child(&child_other_uid, &dt())
            .is_err());

        let parent_root = SecurityPolicy::deny_all().with_uid(Uid::ROOT);
        let child = SecurityPolicy::deny_all()
            .with_uid(Uid(1001))
            .with_fs_root("/var/empty");
        assert!(parent_root.validate_child(&child, &dt()).is_ok());

        let child_chroot = SecurityPolicy::deny_all()
            .with_uid(Uid(1000))
            .with_fs_root("/jail");
        assert!(parent_nonroot.validate_child(&child_chroot, &dt()).is_err());
    }

    #[test]
    fn syscall_policy_requires_subset_or_transition() {
        let mut parent = SecurityPolicy::deny_all();
        parent.sc_sel_context(SyscallPolicy::allowing("parent_t", &[Syscall::Read]));
        let mut child = SecurityPolicy::deny_all();
        child.sc_sel_context(SyscallPolicy::allowing(
            "child_t",
            &[Syscall::Read, Syscall::Write],
        ));
        assert!(parent.validate_child(&child, &dt()).is_err());

        let mut transitions = DomainTransitions::new();
        transitions.allow("parent_t", "child_t");
        assert!(parent.validate_child(&child, &transitions).is_ok());
    }

    #[test]
    fn merge_grants_unions_permissions() {
        let mut base = SecurityPolicy::deny_all();
        base.sc_mem_add(Tag(1), MemProt::Read);
        let mut extra = SecurityPolicy::deny_all();
        extra.sc_mem_add(Tag(2), MemProt::ReadWrite);
        extra.sc_fd_add(FdId(7), FdProt::Read);
        base.merge_grants(&extra);
        assert_eq!(base.mem_grant(Tag(1)), Some(MemProt::Read));
        assert_eq!(base.mem_grant(Tag(2)), Some(MemProt::ReadWrite));
        assert_eq!(base.fd_grant(FdId(7)), Some(FdProt::Read));
    }

    #[test]
    fn uid_root_helper() {
        assert!(Uid::ROOT.is_root());
        assert!(!Uid(1000).is_root());
    }
}
