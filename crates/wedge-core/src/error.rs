//! The error type shared by all Wedge operations.

use crate::callgate::CgEntryId;
use crate::fdtable::FdId;
use crate::syscall::Syscall;
use crate::tag::{AccessMode, CompartmentId, Tag};

/// Errors raised by the simulated kernel and the Wedge primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WedgeError {
    /// A compartment touched tagged memory its policy does not allow — the
    /// analogue of the SIGSEGV a real sthread would receive.
    ProtectionFault {
        /// The faulting compartment.
        compartment: CompartmentId,
        /// The tag that was touched.
        tag: Tag,
        /// The access mode that was attempted.
        mode: AccessMode,
    },
    /// A compartment used a file descriptor without the required permission.
    FdFault {
        /// The faulting compartment.
        compartment: CompartmentId,
        /// The descriptor that was touched.
        fd: FdId,
        /// The access mode that was attempted.
        mode: AccessMode,
    },
    /// A compartment invoked a system call outside its allow-list.
    SyscallDenied {
        /// The faulting compartment.
        compartment: CompartmentId,
        /// The denied call.
        syscall: Syscall,
    },
    /// A compartment invoked a callgate it has not been granted.
    CallgateDenied {
        /// The faulting compartment.
        compartment: CompartmentId,
        /// The callgate entry point.
        entry: CgEntryId,
    },
    /// A parent tried to grant a child privileges exceeding its own
    /// (violates the subset-only delegation rule of §3.1).
    PrivilegeEscalation {
        /// Human-readable description of the excess grant.
        detail: String,
    },
    /// The named tag does not exist (never created, or already deleted).
    UnknownTag(Tag),
    /// The named compartment does not exist or has exited.
    UnknownCompartment(CompartmentId),
    /// The named file descriptor does not exist.
    UnknownFd(FdId),
    /// The named callgate entry point was never registered.
    UnknownCallgate(CgEntryId),
    /// The named global variable was never registered.
    UnknownGlobal(String),
    /// A tagged-memory access fell outside any live allocation.
    OutOfBounds {
        /// The tag being accessed.
        tag: Tag,
        /// Offset of the failed access within the segment.
        offset: usize,
        /// Length of the failed access.
        len: usize,
    },
    /// The underlying allocator refused the request.
    Alloc(String),
    /// A tag cannot be granted or delegated because it is private to a
    /// compartment (untagged allocations "cannot even be named in a
    /// security policy").
    PrivateTag(Tag),
    /// The sthread body panicked.
    SthreadPanicked(String),
    /// A callgate returned a value of an unexpected type.
    BadCallgateValue,
    /// Identity change (uid / filesystem root) refused.
    IdentityDenied(String),
    /// The operation is not valid in the current state (e.g. joining twice).
    InvalidOperation(String),
    /// A resource quota attached to a compartment was exhausted (the DoS
    /// mitigation extension of `crate::resource`; the paper notes Wedge
    /// itself "provides no direct mechanism to prevent DoS attacks", §7).
    ResourceExhausted {
        /// The resource class that hit its quota.
        resource: String,
        /// The configured limit.
        limit: u64,
        /// The usage the refused operation would have reached.
        attempted: u64,
    },
}

impl std::fmt::Display for WedgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WedgeError::ProtectionFault {
                compartment,
                tag,
                mode,
            } => {
                write!(
                    f,
                    "protection fault: {compartment} attempted {mode} on {tag}"
                )
            }
            WedgeError::FdFault {
                compartment,
                fd,
                mode,
            } => {
                write!(f, "fd fault: {compartment} attempted {mode} on fd{}", fd.0)
            }
            WedgeError::SyscallDenied {
                compartment,
                syscall,
            } => {
                write!(f, "syscall denied: {compartment} attempted {syscall:?}")
            }
            WedgeError::CallgateDenied { compartment, entry } => {
                write!(
                    f,
                    "callgate denied: {compartment} attempted to invoke entry {}",
                    entry.0
                )
            }
            WedgeError::PrivilegeEscalation { detail } => {
                write!(f, "privilege escalation refused: {detail}")
            }
            WedgeError::UnknownTag(t) => write!(f, "unknown {t}"),
            WedgeError::UnknownCompartment(c) => write!(f, "unknown compartment {c}"),
            WedgeError::UnknownFd(fd) => write!(f, "unknown fd{}", fd.0),
            WedgeError::UnknownCallgate(e) => write!(f, "unknown callgate entry {}", e.0),
            WedgeError::UnknownGlobal(name) => write!(f, "unknown global '{name}'"),
            WedgeError::OutOfBounds { tag, offset, len } => {
                write!(
                    f,
                    "out-of-bounds access on {tag}: offset {offset}, len {len}"
                )
            }
            WedgeError::Alloc(msg) => write!(f, "allocation failure: {msg}"),
            WedgeError::PrivateTag(t) => write!(f, "{t} is private and cannot be granted"),
            WedgeError::SthreadPanicked(msg) => write!(f, "sthread panicked: {msg}"),
            WedgeError::BadCallgateValue => {
                write!(f, "callgate returned a value of unexpected type")
            }
            WedgeError::IdentityDenied(msg) => write!(f, "identity change denied: {msg}"),
            WedgeError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
            WedgeError::ResourceExhausted {
                resource,
                limit,
                attempted,
            } => write!(
                f,
                "resource quota exhausted: {resource} limit {limit}, attempted {attempted}"
            ),
        }
    }
}

impl std::error::Error for WedgeError {}

impl WedgeError {
    /// Is this error a policy-enforcement fault (as opposed to a programming
    /// or resource error)? Used by tests asserting that an attack was
    /// stopped by the isolation primitives rather than by accident.
    pub fn is_access_denial(&self) -> bool {
        matches!(
            self,
            WedgeError::ProtectionFault { .. }
                | WedgeError::FdFault { .. }
                | WedgeError::SyscallDenied { .. }
                | WedgeError::CallgateDenied { .. }
                | WedgeError::PrivilegeEscalation { .. }
                | WedgeError::PrivateTag(_)
                | WedgeError::IdentityDenied(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::{AccessMode, CompartmentId, Tag};

    #[test]
    fn display_is_informative() {
        let e = WedgeError::ProtectionFault {
            compartment: CompartmentId(3),
            tag: Tag(7),
            mode: AccessMode::Write,
        };
        let s = e.to_string();
        assert!(s.contains("c3"));
        assert!(s.contains("tag7"));
        assert!(s.contains("write"));
    }

    #[test]
    fn access_denial_classification() {
        assert!(WedgeError::ProtectionFault {
            compartment: CompartmentId(1),
            tag: Tag(1),
            mode: AccessMode::Read
        }
        .is_access_denial());
        assert!(WedgeError::PrivilegeEscalation { detail: "x".into() }.is_access_denial());
        assert!(!WedgeError::UnknownTag(Tag(1)).is_access_denial());
        assert!(!WedgeError::Alloc("oom".into()).is_access_denial());
    }
}
