//! Property tests for the static-analysis extension (paper §7).
//!
//! The central claim the paper makes about static analysis — that it yields
//! a *superset* of the permissions any dynamic run requires — is checked
//! here for arbitrary program models and arbitrary partial executions of
//! those models.

use std::collections::HashMap;

use proptest::prelude::*;

use crowbar::static_analysis::ProgramModel;
use crowbar::{ItemKey, Trace, TraceRecord};
use wedge_core::{AccessMode, CompartmentId, FdId, MemRegion, Tag};

const PROC_NAMES: [&str; 6] = ["root", "parse", "auth", "retr", "log", "helper"];
const GLOBAL_NAMES: [&str; 4] = ["passwd_db", "uid", "config", "session_key"];

fn arb_item() -> impl Strategy<Value = ItemKey> {
    prop_oneof![
        (0u64..4, prop_oneof![Just(0usize), Just(16), Just(32)]).prop_map(|(t, off)| {
            ItemKey::Alloc {
                tag: Tag(t),
                alloc_offset: off,
            }
        }),
        (0usize..GLOBAL_NAMES.len()).prop_map(|i| ItemKey::Global(GLOBAL_NAMES[i].to_string())),
        (0usize..3).prop_map(|i| ItemKey::Fd(format!("fd{i}"))),
    ]
}

fn arb_mode() -> impl Strategy<Value = AccessMode> {
    prop_oneof![Just(AccessMode::Read), Just(AccessMode::Write)]
}

/// A randomly shaped program: call edges between a fixed set of procedure
/// names plus per-procedure access sites (some conditional).
#[derive(Debug, Clone)]
struct ModelSpec {
    edges: Vec<(usize, usize)>,
    accesses: Vec<(usize, ItemKey, AccessMode, bool)>,
}

fn arb_model_spec() -> impl Strategy<Value = ModelSpec> {
    let edges = prop::collection::vec((0usize..PROC_NAMES.len(), 0usize..PROC_NAMES.len()), 0..12);
    let accesses = prop::collection::vec(
        (
            0usize..PROC_NAMES.len(),
            arb_item(),
            arb_mode(),
            any::<bool>(),
        ),
        1..20,
    );
    (edges, accesses).prop_map(|(edges, accesses)| ModelSpec { edges, accesses })
}

fn build_model(spec: &ModelSpec) -> ProgramModel {
    let mut model = ProgramModel::new();
    for name in PROC_NAMES {
        model.procedure(name);
    }
    for (from, to) in &spec.edges {
        model.procedure(PROC_NAMES[*from]).calls(PROC_NAMES[*to]);
    }
    for (proc_idx, item, mode, conditional) in &spec.accesses {
        let builder = model.procedure(PROC_NAMES[*proc_idx]);
        match (mode, conditional) {
            (AccessMode::Read, false) => builder.reads(item.clone()),
            (AccessMode::Read, true) => builder.reads_if(item.clone()),
            (AccessMode::Write, false) => builder.writes(item.clone()),
            (AccessMode::Write, true) => builder.writes_if(item.clone()),
        };
    }
    model
}

fn record_for(root: &str, procedure: &str, item: &ItemKey, mode: AccessMode) -> TraceRecord {
    let region = match item {
        ItemKey::Alloc { tag, alloc_offset } => MemRegion::Tagged {
            tag: *tag,
            alloc_offset: *alloc_offset,
        },
        ItemKey::Global(name) => MemRegion::Global { name: name.clone() },
        ItemKey::Fd(name) => MemRegion::Fd {
            fd: FdId(1),
            name: name.clone(),
        },
    };
    let backtrace = if procedure == root {
        vec![root.to_string()]
    } else {
        vec![root.to_string(), procedure.to_string()]
    };
    TraceRecord {
        compartment: CompartmentId(1),
        compartment_name: "worker".to_string(),
        region,
        offset: 0,
        len: 1,
        mode,
        allowed: true,
        backtrace,
    }
}

/// Build a dynamic trace that executes an arbitrary subset of the model's
/// access sites, restricted to procedures reachable from `root` (a dynamic
/// run can only execute code the root actually reaches).
fn execute_subset(model: &ProgramModel, spec: &ModelSpec, root: &str, selector: &[bool]) -> Trace {
    let reachable = model.reachable_from(root);
    let mut records = Vec::new();
    for (i, (proc_idx, item, mode, _conditional)) in spec.accesses.iter().enumerate() {
        let name = PROC_NAMES[*proc_idx];
        if !reachable.contains(name) {
            continue;
        }
        if !selector.get(i).copied().unwrap_or(false) {
            continue;
        }
        records.push(record_for(root, name, item, *mode));
    }
    Trace::from_parts(records, HashMap::new(), Vec::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// §7: the static footprint is a superset of what any partial execution
    /// of the modelled program touches.
    #[test]
    fn static_footprint_is_superset_of_any_execution(
        spec in arb_model_spec(),
        root_idx in 0usize..PROC_NAMES.len(),
        selector in prop::collection::vec(any::<bool>(), 20),
    ) {
        let model = build_model(&spec);
        let root = PROC_NAMES[root_idx];
        let trace = execute_subset(&model, &spec, root, &selector);
        let cmp = model.compare_with_trace(root, &trace);
        prop_assert!(cmp.is_superset(),
            "static analysis missed dynamically touched items: {:?}", cmp.dynamic_only);
    }

    /// A model inferred from a trace always covers that trace.
    #[test]
    fn inferred_model_covers_its_own_trace(
        spec in arb_model_spec(),
        root_idx in 0usize..PROC_NAMES.len(),
        selector in prop::collection::vec(any::<bool>(), 20),
    ) {
        let model = build_model(&spec);
        let root = PROC_NAMES[root_idx];
        let trace = execute_subset(&model, &spec, root, &selector);
        let inferred = ProgramModel::from_trace(&trace);
        let cmp = inferred.compare_with_trace(root, &trace);
        prop_assert!(cmp.is_superset());
        prop_assert_eq!(cmp.excess_ratio(), 0.0,
            "a model inferred from exactly one trace should not over-approximate it");
    }

    /// Merging models only ever widens the static footprint, and merging is
    /// idempotent.
    #[test]
    fn merge_widens_and_is_idempotent(
        spec_a in arb_model_spec(),
        spec_b in arb_model_spec(),
        root_idx in 0usize..PROC_NAMES.len(),
    ) {
        let a = build_model(&spec_a);
        let b = build_model(&spec_b);
        let root = PROC_NAMES[root_idx];

        let mut merged = a.clone();
        merged.merge(&b);

        let items = |m: &ProgramModel| -> std::collections::BTreeSet<ItemKey> {
            m.static_footprint(root).into_iter().map(|e| e.item).collect()
        };
        let merged_items = items(&merged);
        for item in items(&a) {
            prop_assert!(merged_items.contains(&item));
        }
        for item in items(&b) {
            prop_assert!(merged_items.contains(&item));
        }

        let mut merged_twice = merged.clone();
        merged_twice.merge(&b);
        prop_assert_eq!(items(&merged_twice), merged_items);
    }

    /// The excess-sensitive report never invents items: everything it flags
    /// is both statically granted and absent from the dynamic run.
    #[test]
    fn excess_sensitive_is_sound(
        spec in arb_model_spec(),
        root_idx in 0usize..PROC_NAMES.len(),
        selector in prop::collection::vec(any::<bool>(), 20),
        sensitive in prop::collection::vec(arb_item(), 0..6),
    ) {
        let model = build_model(&spec);
        let root = PROC_NAMES[root_idx];
        let trace = execute_subset(&model, &spec, root, &selector);
        let cmp = model.compare_with_trace(root, &trace);
        for item in cmp.excess_sensitive(&sensitive) {
            prop_assert!(sensitive.contains(&item));
            prop_assert!(cmp.static_items.contains(&item));
            prop_assert!(!cmp.dynamic_items.contains(&item));
        }
    }
}
