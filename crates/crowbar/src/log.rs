//! `cb-log`: record every memory access with its backtrace and allocation
//! site.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::ThreadId;

use parking_lot::Mutex;

use wedge_core::{
    AccessMode, AccessSink, AllocEvent, CallEvent, CompartmentId, Kernel, MemAccessEvent,
    MemRegion, Tag, ViolationEvent,
};

/// Where a heap item was first allocated: the paper's cb-log stores "a full
/// backtrace for the original malloc where the accessed memory was first
/// allocated".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationSite {
    /// The compartment that allocated.
    pub compartment: CompartmentId,
    /// The tag allocated from.
    pub tag: Tag,
    /// Payload offset within the tag's segment.
    pub alloc_offset: usize,
    /// Requested size.
    pub size: usize,
    /// Shadow backtrace at allocation time (innermost last).
    pub backtrace: Vec<String>,
    /// Whether the allocation went to the compartment's private segment
    /// (i.e. an untagged legacy `malloc`).
    pub private: bool,
}

impl AllocationSite {
    /// A human-readable allocation-site label, e.g.
    /// `"handle_request > parse_headers"`.
    pub fn site_label(&self) -> String {
        if self.backtrace.is_empty() {
            "<no backtrace>".to_string()
        } else {
            self.backtrace.join(" > ")
        }
    }
}

/// One recorded memory/global/descriptor access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The accessing compartment.
    pub compartment: CompartmentId,
    /// Its human-readable name.
    pub compartment_name: String,
    /// Where the access landed.
    pub region: MemRegion,
    /// Offset within the item.
    pub offset: usize,
    /// Access length in bytes.
    pub len: usize,
    /// Read or write.
    pub mode: AccessMode,
    /// Whether the kernel allowed it.
    pub allowed: bool,
    /// Shadow backtrace at access time (outermost first).
    pub backtrace: Vec<String>,
}

#[derive(Default)]
struct CbLogState {
    records: Vec<TraceRecord>,
    allocations: HashMap<(Tag, usize), AllocationSite>,
    frees: Vec<(CompartmentId, Tag, usize)>,
    violations: Vec<ViolationEvent>,
    call_stacks: HashMap<ThreadId, Vec<String>>,
    call_events: u64,
}

/// The cb-log tracer. Install it on a kernel with [`CbLog::install`]; every
/// access made while it is installed is recorded.
#[derive(Default)]
pub struct CbLog {
    state: Mutex<CbLogState>,
}

impl CbLog {
    /// Create an empty log.
    pub fn new() -> Arc<CbLog> {
        Arc::new(CbLog::default())
    }

    /// Install this log as the kernel's tracer.
    pub fn install(self: &Arc<Self>, kernel: &Kernel) {
        kernel.set_tracer(Some(self.clone() as Arc<dyn AccessSink>));
    }

    /// Remove any tracer from the kernel.
    pub fn uninstall(kernel: &Kernel) {
        kernel.set_tracer(None);
    }

    fn current_backtrace(state: &CbLogState) -> Vec<String> {
        state
            .call_stacks
            .get(&std::thread::current().id())
            .cloned()
            .unwrap_or_default()
    }

    /// All access records captured so far.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.state.lock().records.clone()
    }

    /// All allocation sites captured so far.
    pub fn allocation_sites(&self) -> Vec<AllocationSite> {
        self.state.lock().allocations.values().cloned().collect()
    }

    /// The allocation site (if known) for a given tag + allocation offset.
    pub fn site_for(&self, tag: Tag, alloc_offset: usize) -> Option<AllocationSite> {
        self.state
            .lock()
            .allocations
            .get(&(tag, alloc_offset))
            .cloned()
    }

    /// All violations observed (both denied and emulation-permitted).
    pub fn violations(&self) -> Vec<ViolationEvent> {
        self.state.lock().violations.clone()
    }

    /// Number of access records.
    pub fn record_count(&self) -> usize {
        self.state.lock().records.len()
    }

    /// Number of function-boundary events observed (used by the Figure 9
    /// harness as a proxy for "basic blocks instrumented").
    pub fn call_event_count(&self) -> u64 {
        self.state.lock().call_events
    }

    /// Forget everything recorded so far (e.g. between workloads).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.records.clear();
        st.allocations.clear();
        st.frees.clear();
        st.violations.clear();
        st.call_events = 0;
        // Keep live call stacks: threads may still be inside functions.
    }

    /// Snapshot the log into an immutable, queryable [`crate::Trace`].
    pub fn snapshot(&self) -> crate::analyze::Trace {
        let st = self.state.lock();
        crate::analyze::Trace::from_parts(
            st.records.clone(),
            st.allocations.clone(),
            st.violations.clone(),
        )
    }
}

impl AccessSink for CbLog {
    fn on_access(&self, event: &MemAccessEvent) {
        let mut st = self.state.lock();
        let backtrace = Self::current_backtrace(&st);
        st.records.push(TraceRecord {
            compartment: event.compartment,
            compartment_name: event.compartment_name.clone(),
            region: event.region.clone(),
            offset: event.offset,
            len: event.len,
            mode: event.mode,
            allowed: event.allowed,
            backtrace,
        });
    }

    fn on_alloc(&self, event: &AllocEvent) {
        let mut st = self.state.lock();
        let backtrace = Self::current_backtrace(&st);
        st.allocations.insert(
            (event.tag, event.alloc_offset),
            AllocationSite {
                compartment: event.compartment,
                tag: event.tag,
                alloc_offset: event.alloc_offset,
                size: event.size,
                backtrace,
                private: event.private,
            },
        );
    }

    fn on_free(&self, compartment: CompartmentId, tag: Tag, alloc_offset: usize) {
        let mut st = self.state.lock();
        st.frees.push((compartment, tag, alloc_offset));
    }

    fn on_call(&self, event: &CallEvent) {
        let mut st = self.state.lock();
        st.call_events += 1;
        let stack = st
            .call_stacks
            .entry(std::thread::current().id())
            .or_default();
        if event.entering {
            stack.push(event.function.clone());
        } else {
            // Pop the innermost matching frame; tolerate unbalanced exits.
            if let Some(pos) = stack.iter().rposition(|f| f == &event.function) {
                stack.remove(pos);
            }
        }
    }

    fn on_violation(&self, event: &ViolationEvent) {
        self.state.lock().violations.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_core::{MemProt, SecurityPolicy, Wedge};

    #[test]
    fn records_accesses_with_backtraces() {
        let wedge = Wedge::init();
        let log = CbLog::new();
        log.install(wedge.kernel());
        let root = wedge.root();
        let tag = root.tag_new().unwrap();
        let buf = {
            let _f = root.trace_fn("setup_session");
            let _g = root.trace_fn("alloc_state");
            root.smalloc_init(tag, b"state").unwrap()
        };
        {
            let _f = root.trace_fn("handle_request");
            root.read_all(&buf).unwrap();
        }

        let records = log.records();
        // smalloc_init performs one write, handle_request one read.
        let read = records
            .iter()
            .find(|r| r.mode == AccessMode::Read)
            .expect("read record");
        assert_eq!(read.backtrace, vec!["handle_request".to_string()]);
        let write = records
            .iter()
            .find(|r| r.mode == AccessMode::Write)
            .expect("write record");
        assert_eq!(
            write.backtrace,
            vec!["setup_session".to_string(), "alloc_state".to_string()]
        );

        let site = log.site_for(buf.tag, buf.offset).expect("allocation site");
        assert_eq!(site.size, 5);
        assert_eq!(site.site_label(), "setup_session > alloc_state");
    }

    #[test]
    fn violations_are_captured() {
        let wedge = Wedge::init();
        let log = CbLog::new();
        log.install(wedge.kernel());
        let root = wedge.root();
        let tag = root.tag_new().unwrap();
        let secret = root.smalloc_init(tag, b"secret").unwrap();
        let handle = root
            .sthread_create("worker", &SecurityPolicy::deny_all(), move |ctx| {
                let _ = ctx.read_all(&secret);
            })
            .unwrap();
        handle.join().unwrap();
        let violations = log.violations();
        assert_eq!(violations.len(), 1);
        assert!(!violations[0].emulated);
        assert_eq!(violations[0].compartment_name, "worker");
    }

    #[test]
    fn clear_resets_counts() {
        let wedge = Wedge::init();
        let log = CbLog::new();
        log.install(wedge.kernel());
        let root = wedge.root();
        let tag = root.tag_new().unwrap();
        root.smalloc_init(tag, b"x").unwrap();
        assert!(log.record_count() > 0);
        log.clear();
        assert_eq!(log.record_count(), 0);
        assert!(log.allocation_sites().is_empty());
    }

    #[test]
    fn distinguishes_granted_read_only_access() {
        let wedge = Wedge::init();
        let log = CbLog::new();
        log.install(wedge.kernel());
        let root = wedge.root();
        let tag = root.tag_new().unwrap();
        let buf = root.smalloc_init(tag, b"shared").unwrap();
        let mut policy = SecurityPolicy::deny_all();
        policy.sc_mem_add(tag, MemProt::Read);
        let handle = root
            .sthread_create("reader", &policy, move |ctx| {
                let _f = ctx.trace_fn("reader_main");
                ctx.read_all(&buf).unwrap();
            })
            .unwrap();
        handle.join().unwrap();
        let reader_records: Vec<_> = log
            .records()
            .into_iter()
            .filter(|r| r.compartment_name == "reader")
            .collect();
        assert_eq!(reader_records.len(), 1);
        assert!(reader_records[0].allowed);
        assert_eq!(reader_records[0].backtrace, vec!["reader_main".to_string()]);
    }
}
